//! # NADA — Designing Network Algorithms via Large Language Models
//!
//! A full Rust reproduction of the HotNets 2024 paper *"Designing Network
//! Algorithms via Large Language Models"* (He et al., arXiv:2404.01617):
//! an autonomous pipeline that asks an LLM for alternative designs of a
//! network algorithm's components — here, the Pensieve ABR algorithm's RL
//! state representation and actor-critic architecture — then filters the
//! candidates cheaply (compilation check, fuzzing-based normalization
//! check, learned early stopping) and trains only the promising ones.
//!
//! The pipeline is **workload-generic**: the same loop that redesigns
//! Pensieve's state also redesigns a congestion-control (CWND) policy over
//! the same trace datasets (mirroring the authors' follow-up,
//! arXiv:2508.16074). See [`core`]'s `workload` module.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`traces`] | synthetic FCC/Starlink/4G/5G trace datasets + Mahimahi I/O |
//! | [`sim`] | environments behind the `NetEnv` trait: ABR simulator/emulator, congestion control, QoE, baselines |
//! | [`nn`] | from-scratch NN library (dense/conv1d/RNN/LSTM, Adam, A2C) |
//! | [`dsl`] | the design DSL: state & architecture "code blocks", per-workload schemas |
//! | [`llm`] | `LlmClient` trait, workload-parameterized §2.1 prompts, Table 2-calibrated `MockLlm`, on-disk cassettes |
//! | [`llm_http`] | dependency-free HTTP/1.1 chat-completions backend + loopback test server |
//! | [`earlystop`] | §2.2/§3.4 early-stopping classifiers |
//! | [`exec`] | deterministic order-preserving parallel map |
//! | [`obs`] | process-wide telemetry: atomic counters/gauges/histograms, span timers, Prometheus-style exposition |
//! | [`core`] | the NADA pipeline: `Workload` trait, generate → filter → train → rank |
//! | [`serve`] | multi-tenant search daemon: wire protocol, job scheduler, spool, cross-tenant score cache |
//!
//! ## Quickstart
//!
//! ```
//! use nada::core::{Nada, NadaConfig, RunScale};
//! use nada::llm::MockLlm;
//! use nada::traces::dataset::DatasetKind;
//!
//! // Tiny scale so this doc test stays fast; use RunScale::Quick for real runs.
//! let config = NadaConfig::new(DatasetKind::Starlink, RunScale::Tiny, 7);
//! let nada = Nada::new(config);
//! let mut llm = MockLlm::gpt4(7);
//! let outcome = nada.run_state_search(&mut llm);
//! println!(
//!     "original {:.3} -> best {:.3} ({:+.1}%)",
//!     outcome.original.test_score,
//!     outcome.best.test_score,
//!     outcome.improvement_pct()
//! );
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harnesses regenerating every table and figure of the paper.

pub use nada_core as core;
pub use nada_dsl as dsl;
pub use nada_earlystop as earlystop;
pub use nada_exec as exec;
pub use nada_llm as llm;
pub use nada_llm_http as llm_http;
pub use nada_nn as nn;
pub use nada_obs as obs;
pub use nada_serve as serve;
pub use nada_sim as sim;
pub use nada_traces as traces;
