//! Integration tests for the staged `SearchSession` API: snapshot/resume
//! determinism, budget truncation, and runtime workload selection.

use nada::core::{
    Budget, CollectingObserver, Nada, NadaConfig, RunScale, SearchEvent, SearchSession,
    SessionSnapshot, Stage, WorkloadRegistry,
};
use nada::llm::{DesignKind, MockLlm};
use nada::traces::dataset::DatasetKind;

fn tiny(kind: DatasetKind, seed: u64) -> Nada {
    Nada::new(NadaConfig::new(kind, RunScale::Tiny, seed))
}

fn tiny_cc(kind: DatasetKind, seed: u64) -> Nada {
    let cfg = NadaConfig::new(kind, RunScale::Tiny, seed);
    let workload = WorkloadRegistry::builtin()
        .build("cc", kind)
        .expect("cc is built in");
    Nada::with_workload(cfg, workload)
}

/// The ISSUE's acceptance scenario: pause after the Screen stage, resume
/// from the serialized snapshot, and the outcome (ranked list and scores)
/// is identical to an uninterrupted run's.
#[test]
fn resume_after_screen_is_bit_identical_to_uninterrupted() {
    let nada = tiny(DatasetKind::Starlink, 41);
    let uninterrupted = {
        let mut llm = MockLlm::gpt4(41);
        nada.run_state_search(&mut llm)
    };

    let mut llm = MockLlm::gpt4(41);
    let mut session = SearchSession::new(&nada, DesignKind::State);
    session.generate(&mut llm).unwrap();
    session.precheck().unwrap();
    session.probe().unwrap();
    session.screen().unwrap();
    assert_eq!(session.stage(), Stage::Finalize);

    // Serialize through the text codec — the "process died" path, not just
    // an in-memory clone.
    let text = session.snapshot().encode();
    drop(session);

    let snapshot = SessionSnapshot::decode(&text).expect("snapshot survives serialization");
    let mut resumed = SearchSession::resume(&nada, snapshot).expect("same pipeline resumes");
    let outcome = resumed.finalize().expect("resume lands before Finalize");

    assert_eq!(uninterrupted.ranked, outcome.ranked);
    for (a, b) in uninterrupted.ranked.iter().zip(&outcome.ranked) {
        assert_eq!(
            a.1.to_bits(),
            b.1.to_bits(),
            "ranked scores must be bit-identical"
        );
    }
    assert_eq!(
        uninterrupted.best.test_score.to_bits(),
        outcome.best.test_score.to_bits()
    );
    assert_eq!(
        uninterrupted.original.test_score.to_bits(),
        outcome.original.test_score.to_bits()
    );
    assert_eq!(uninterrupted.stats, outcome.stats);
    assert_eq!(uninterrupted.precheck, outcome.precheck);
}

/// Budget truncation is graceful: the search still ranks what it trained
/// and reports what it skipped.
#[test]
fn budget_truncated_search_still_yields_a_ranked_outcome() {
    let nada = tiny(DatasetKind::Fcc, 43);
    let mut llm = MockLlm::perfect(43);
    let collector = CollectingObserver::new();
    let mut session = SearchSession::new(&nada, DesignKind::State)
        .with_budget(Budget::unlimited().with_max_epochs(1));
    session.observe(&collector);
    let outcome = session.run(&mut llm).expect("budgeted run completes");

    assert!(!outcome.ranked.is_empty());
    assert!(outcome.best.test_score.is_finite());
    assert!(outcome.stats.skipped > 0);
    assert!(collector.count(|e| matches!(e, SearchEvent::BudgetExhausted { .. })) >= 1);
    // The spend respects causality: probes ran (first wave always does),
    // and nothing screened beyond the budget.
    assert!(outcome.stats.epochs_spent > 0);
}

/// A candidate budget caps the LLM batch itself (the generate hook), and
/// the search still completes end-to-end.
#[test]
fn candidate_budget_flows_through_generation() {
    let nada = tiny(DatasetKind::Fcc, 44);
    let mut llm = MockLlm::perfect(44);
    let mut session = SearchSession::new(&nada, DesignKind::State)
        .with_budget(Budget::unlimited().with_max_candidates(4));
    let outcome = session.run(&mut llm).expect("capped run completes");
    assert_eq!(outcome.precheck.total, 4);
    assert!(outcome.best.test_score.is_finite());
}

/// Both built-in workloads round-trip through the registry and produce a
/// working search — the seam the bench harnesses' `--workload` flag uses.
#[test]
fn workload_registry_round_trips_both_workloads() {
    let registry = WorkloadRegistry::builtin();
    assert_eq!(registry.names(), vec!["abr", "cc"]);

    for name in ["abr", "cc"] {
        let workload = registry
            .build(name, DatasetKind::Fcc)
            .unwrap_or_else(|| panic!("`{name}` must be registered"));
        assert_eq!(workload.name(), name);
        let nada = Nada::with_workload(
            NadaConfig::new(DatasetKind::Fcc, RunScale::Tiny, 45),
            workload,
        );
        let mut llm = MockLlm::perfect(45);
        let outcome = nada.run_state_search(&mut llm);
        assert!(outcome.best.test_score.is_finite(), "{name}");
        assert!(!outcome.ranked.is_empty(), "{name}");
    }
}

/// `--workload cc` parses and resolves to the CC workload through the same
/// path the harness binaries (including `run_all`) use.
#[test]
fn workload_cli_flag_selects_cc_through_the_registry() {
    let opts = nada_bench::cli::parse_args(
        ["bin", "--seed", "46", "--workload", "cc"]
            .iter()
            .map(|s| s.to_string()),
    );
    assert_eq!(opts.workload, "cc");
    let mut opts = opts;
    opts.scale = RunScale::Tiny;
    let nada = nada_bench::experiments::common::nada_for(DatasetKind::Fcc, &opts);
    assert_eq!(nada.workload().name(), "cc");
    // And the shared search funnel drives it end-to-end.
    let outcome = nada_bench::experiments::common::search_states(
        DatasetKind::Fcc,
        nada_bench::experiments::common::Model::Gpt4,
        &opts,
    );
    assert!(outcome.best.test_score.is_finite());
    assert!(outcome.best.code.contains("cwnd") || outcome.best.code.contains("rtt"));
}

/// Resume also works across workloads: a CC search snapshot resumes
/// against an identically-configured CC pipeline.
#[test]
fn cc_snapshot_resumes_on_a_fresh_pipeline_handle() {
    let nada_a = tiny_cc(DatasetKind::Fcc, 47);
    let mut llm = MockLlm::gpt4(47);
    let mut session = SearchSession::new(&nada_a, DesignKind::State);
    session.generate(&mut llm).unwrap();
    session.precheck().unwrap();
    session.probe().unwrap();
    let text = session.snapshot().encode();
    drop(session);
    drop(nada_a);

    // A brand-new pipeline handle with the same configuration accepts the
    // snapshot (everything it needs is re-derived deterministically).
    let nada_b = tiny_cc(DatasetKind::Fcc, 47);
    let snapshot = SessionSnapshot::decode(&text).unwrap();
    let mut resumed = SearchSession::resume(&nada_b, snapshot).expect("same config resumes");
    assert_eq!(resumed.stage(), Stage::Screen);
    let outcome = resumed.run(&mut llm).expect("resume completes");
    assert!(outcome.best.test_score.is_finite());

    // The same snapshot against a different seed is refused.
    let nada_c = tiny_cc(DatasetKind::Fcc, 48);
    let snapshot = SessionSnapshot::decode(&text).unwrap();
    assert!(SearchSession::resume(&nada_c, snapshot).is_err());
}
