//! Cassette lifecycle: record a search with `MockLlm` → write the
//! cassette to disk → replay it — the replayed `SearchOutcome` must be
//! bit-identical, for every workload in the matrix. Plus the failure
//! modes: a prompt-fingerprint mismatch (cassette recorded for a
//! different workload) is a clear error, never a silently wrong
//! completion.
//!
//! Set `NADA_WORKLOAD=abr` or `NADA_WORKLOAD=cc` to restrict the matrix
//! (CI runs the suite once per workload).

use nada::core::{
    LlmRegistry, LlmRequest, LlmSpec, Nada, NadaConfig, RunScale, SearchOutcome, SearchSession,
    WorkloadRegistry,
};
use nada::llm::{Cassette, DesignKind, MockLlm, RecordingClient, ReplayClient};
use nada::traces::dataset::DatasetKind;
use std::path::PathBuf;

/// The workload matrix, optionally narrowed by `NADA_WORKLOAD`.
fn workloads() -> Vec<&'static str> {
    let selected = std::env::var("NADA_WORKLOAD").ok();
    ["abr", "cc"]
        .into_iter()
        .filter(|w| selected.as_deref().is_none_or(|s| s == *w))
        .collect()
}

fn tiny(workload: &str, seed: u64) -> Nada {
    let cfg = NadaConfig::new(DatasetKind::Fcc, RunScale::Tiny, seed);
    let w = WorkloadRegistry::builtin()
        .build(workload, DatasetKind::Fcc)
        .unwrap_or_else(|| panic!("`{workload}` must be registered"));
    Nada::with_workload(cfg, w)
}

fn scratch_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nada-cassette-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn assert_bit_identical(a: &SearchOutcome, b: &SearchOutcome, context: &str) {
    assert_eq!(a.ranked, b.ranked, "{context}");
    assert_eq!(
        a.best.test_score.to_bits(),
        b.best.test_score.to_bits(),
        "{context}"
    );
    assert_eq!(
        a.original.test_score.to_bits(),
        b.original.test_score.to_bits(),
        "{context}"
    );
    assert_eq!(a.precheck, b.precheck, "{context}");
    assert_eq!(a.stats, b.stats, "{context}");
    assert_eq!(a.best.code, b.best.code, "{context}");
}

/// The ISSUE's acceptance scenario: `RecordingClient` → on-disk cassette →
/// `ReplayClient` reproduces the search bit-identically, offline, for both
/// workloads.
#[test]
fn recorded_search_replays_bit_identically_from_disk() {
    for workload in workloads() {
        let nada = tiny(workload, 91);
        let path = scratch_file(&format!("{workload}.cassette"));
        let lane = format!("test/{workload}");

        let recorded = {
            let mut rec = RecordingClient::new(MockLlm::gpt4(91))
                .with_lane(&lane, 0)
                .persist_to(&path)
                .expect("fresh cassette target");
            let outcome = SearchSession::new(&nada, DesignKind::State)
                .run(&mut rec)
                .expect("recorded search completes");
            rec.flush().expect("cassette flushes");
            outcome
        };
        assert!(path.exists(), "{workload}: cassette not written");

        // A different process would start here: only the file crosses.
        let mut replay =
            ReplayClient::from_file(&path, &lane, 0).unwrap_or_else(|e| panic!("{workload}: {e}"));
        let replayed = SearchSession::new(&nada, DesignKind::State)
            .run(&mut replay)
            .expect("replayed search completes");

        assert_bit_identical(&recorded, &replayed, workload);
        std::fs::remove_file(&path).ok();
    }
}

/// The same round trip, but through the `LlmRegistry` — the exact path the
/// `--llm mock --record` / `--llm replay` harness flags exercise.
#[test]
fn registry_record_and_replay_round_trip() {
    for workload in workloads() {
        let nada = tiny(workload, 92);
        let path = scratch_file(&format!("registry-{workload}.cassette"));
        let lane = format!("registry/{workload}");
        let registry = LlmRegistry::builtin();

        let mut record_spec = LlmSpec::mock("gpt-4", 92);
        record_spec.record = true;
        record_spec.cassette = Some(path.clone());
        let recorded = {
            let mut llm = registry
                .build(
                    "mock",
                    &LlmRequest {
                        spec: &record_spec,
                        lane: &lane,
                        round: 0,
                    },
                )
                .expect("mock+record builds");
            SearchSession::new(&nada, DesignKind::State)
                .run(llm.as_mut())
                .expect("recorded search completes")
        }; // recorder drops → cassette flushed

        let mut replay_spec = LlmSpec::mock("gpt-4", 92);
        replay_spec.backend = "replay".into();
        replay_spec.cassette = Some(path.clone());
        let mut llm = registry
            .build(
                "replay",
                &LlmRequest {
                    spec: &replay_spec,
                    lane: &lane,
                    round: 0,
                },
            )
            .expect("replay builds");
        let replayed = SearchSession::new(&nada, DesignKind::State)
            .run(llm.as_mut())
            .expect("replayed search completes");

        assert_bit_identical(&recorded, &replayed, workload);
        std::fs::remove_file(&path).ok();
    }
}

/// Replaying an ABR-recorded cassette into a CC search must fail with a
/// fingerprint diagnostic — the prompts differ, and a silent wrong
/// completion would corrupt the search undetectably.
#[test]
fn cross_workload_replay_is_a_clear_error() {
    let abr = tiny("abr", 93);
    let path = scratch_file("mismatch.cassette");
    {
        let mut rec = RecordingClient::new(MockLlm::gpt4(93))
            .with_lane("mismatch", 0)
            .persist_to(&path)
            .expect("fresh cassette target");
        SearchSession::new(&abr, DesignKind::State)
            .run(&mut rec)
            .expect("abr search completes");
    }

    let cc = tiny("cc", 93);
    let mut replay = ReplayClient::from_file(&path, "mismatch", 0).expect("cassette loads");
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        SearchSession::new(&cc, DesignKind::State).run(&mut replay)
    }))
    .expect_err("a cross-workload replay must not succeed");
    let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("prompt mismatch") && msg.contains("different workload"),
        "diagnostic should explain the mismatch, got: {msg}"
    );
    std::fs::remove_file(&path).ok();
}

/// Asking for a lane the cassette never recorded names what *is* there.
#[test]
fn missing_lane_is_a_clear_error() {
    let nada = tiny("abr", 94);
    let path = scratch_file("lanes.cassette");
    {
        let mut rec = RecordingClient::new(MockLlm::gpt4(94))
            .with_lane("state/fcc", 0)
            .persist_to(&path)
            .expect("fresh cassette target");
        SearchSession::new(&nada, DesignKind::State)
            .run(&mut rec)
            .expect("search completes");
    }
    let err = ReplayClient::from_file(&path, "arch/fcc", 0).expect_err("lane is absent");
    let msg = err.to_string();
    assert!(msg.contains("arch/fcc"), "{msg}");
    assert!(msg.contains("state/fcc"), "{msg}");
    std::fs::remove_file(&path).ok();
}

/// The cassette file itself is the contract: it decodes, carries the
/// model name, and every entry is fingerprint-tagged with the lane.
#[test]
fn cassette_files_carry_provenance() {
    let nada = tiny("abr", 95);
    let path = scratch_file("provenance.cassette");
    {
        let mut rec = RecordingClient::new(MockLlm::gpt35(95))
            .with_lane("prov", 2)
            .persist_to(&path)
            .expect("fresh cassette target");
        SearchSession::new(&nada, DesignKind::State)
            .run(&mut rec)
            .expect("search completes");
    }
    let cassette = Cassette::load(&path).expect("cassette decodes");
    assert_eq!(cassette.model, "gpt-3.5");
    assert_eq!(cassette.len(), nada.config().n_candidates);
    assert!(cassette
        .entries
        .iter()
        .all(|e| e.lane == "prov" && e.round == 2 && e.fingerprint != 0));
    std::fs::remove_file(&path).ok();
}
