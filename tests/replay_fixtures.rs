//! End-to-end searches through the *checked-in* cassette fixtures under
//! `fixtures/cassettes/` — the offline-CI path: no generator runs, every
//! completion streams from disk through the verified `ReplayClient`.
//!
//! The fixtures were recorded from the deterministic `MockLlm` at `Tiny`
//! scale, so the test can also re-run the generator and require the
//! replayed outcome to match bit-for-bit; a drift in the cassette format,
//! the prompt text, or the mock makes this fail loudly. Regenerate with:
//!
//! ```text
//! NADA_REGEN_FIXTURES=1 cargo test --test replay_fixtures
//! ```
//!
//! Set `NADA_WORKLOAD=abr` or `NADA_WORKLOAD=cc` to restrict the matrix.

use nada::core::{Nada, NadaConfig, RunScale, SearchSession, WorkloadRegistry};
use nada::llm::{DesignKind, MockLlm, RecordingClient, ReplayClient};
use nada::traces::dataset::DatasetKind;
use std::path::PathBuf;

const FIXTURE_SEED: u64 = 2024;

fn workloads() -> Vec<&'static str> {
    let selected = std::env::var("NADA_WORKLOAD").ok();
    ["abr", "cc"]
        .into_iter()
        .filter(|w| selected.as_deref().is_none_or(|s| s == *w))
        .collect()
}

fn tiny(workload: &str) -> Nada {
    let cfg = NadaConfig::new(DatasetKind::Fcc, RunScale::Tiny, FIXTURE_SEED);
    let w = WorkloadRegistry::builtin()
        .build(workload, DatasetKind::Fcc)
        .unwrap_or_else(|| panic!("`{workload}` must be registered"));
    Nada::with_workload(cfg, w)
}

fn fixture_path(workload: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures/cassettes")
        .join(format!("{workload}.cassette"))
}

#[test]
fn checked_in_cassettes_drive_a_full_search_per_workload() {
    let regen = std::env::var("NADA_REGEN_FIXTURES").is_ok();
    for workload in workloads() {
        let nada = tiny(workload);
        let path = fixture_path(workload);
        let lane = format!("fixture/{workload}");

        // The reference outcome from the deterministic generator.
        let mut mock = MockLlm::gpt4(FIXTURE_SEED);
        let reference = SearchSession::new(&nada, DesignKind::State)
            .run(&mut mock)
            .expect("mock search completes");

        if regen {
            std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir");
            if path.exists() {
                std::fs::remove_file(&path).expect("replace old fixture");
            }
            let mut rec = RecordingClient::new(MockLlm::gpt4(FIXTURE_SEED))
                .with_lane(&lane, 0)
                .persist_to(&path)
                .expect("fixture target");
            SearchSession::new(&nada, DesignKind::State)
                .run(&mut rec)
                .expect("fixture recording completes");
            eprintln!("regenerated {}", path.display());
        }

        let mut replay = ReplayClient::from_file(&path, &lane, 0).unwrap_or_else(|e| {
            panic!(
                "{workload}: cannot load fixture {}: {e}\n\
                 (regenerate with NADA_REGEN_FIXTURES=1 cargo test --test replay_fixtures)",
                path.display()
            )
        });
        let replayed = SearchSession::new(&nada, DesignKind::State)
            .run(&mut replay)
            .expect("fixture replay completes");

        assert_eq!(reference.ranked, replayed.ranked, "{workload}");
        assert_eq!(
            reference.best.test_score.to_bits(),
            replayed.best.test_score.to_bits(),
            "{workload}"
        );
        assert_eq!(reference.precheck, replayed.precheck, "{workload}");
        assert_eq!(reference.stats, replayed.stats, "{workload}");
        assert!(
            replayed.best.test_score.is_finite(),
            "{workload}: replayed search produced no finite best"
        );
    }
}
