//! Integration tests for the multi-round feedback driver: checkpointed
//! kill/resume bit-identity (the ISSUE's acceptance scenario) and the
//! mock's feedback biasing.
//!
//! Set `NADA_WORKLOAD=abr` or `NADA_WORKLOAD=cc` to restrict the
//! workload matrix (CI runs the suite once per workload so a regression
//! in one scenario cannot hide behind the other's default).

use nada::core::{Nada, NadaConfig, RunScale, SearchDriver, WorkloadRegistry};
use nada::earlystop::classifiers::DesignSample;
use nada::llm::{DesignKind, LlmClient, MockLlm};
use nada::traces::dataset::DatasetKind;
use nada_bench::experiments::iterate::round_seed;
use std::path::PathBuf;

/// The workload matrix, optionally narrowed by `NADA_WORKLOAD`.
fn workloads() -> Vec<&'static str> {
    let selected = std::env::var("NADA_WORKLOAD").ok();
    ["abr", "cc"]
        .into_iter()
        .filter(|w| selected.as_deref().is_none_or(|s| s == *w))
        .collect()
}

fn tiny(workload: &str, seed: u64) -> Nada {
    let cfg = NadaConfig::new(DatasetKind::Fcc, RunScale::Tiny, seed);
    let w = WorkloadRegistry::builtin()
        .build(workload, DatasetKind::Fcc)
        .unwrap_or_else(|| panic!("`{workload}` must be registered"));
    Nada::with_workload(cfg, w)
}

fn factory(master: u64) -> impl FnMut(usize) -> Box<dyn LlmClient> {
    move |round| Box::new(MockLlm::gpt4(round_seed(master, round)))
}

fn scratch_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nada-iterate-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// The ISSUE's acceptance scenario: a 3-round run killed after round 2
/// and resumed from its checkpoint ends with a hall of fame (and round
/// summaries) bit-identical to an uninterrupted run's — for every
/// workload in the matrix. The same uninterrupted run also proves the
/// feedback loop's monotonicity: best-so-far never decreases.
#[test]
fn killed_after_round_two_resumes_bit_identically() {
    for workload in workloads() {
        let nada = tiny(workload, 81);

        let uninterrupted = {
            let mut make_llm = factory(81);
            SearchDriver::new(&nada, DesignKind::State)
                .with_rounds(3)
                .run(&mut make_llm)
                .expect("uninterrupted run completes")
        };
        assert_eq!(uninterrupted.rounds.len(), 3, "{workload}");
        // Feedback monotonicity: the running best can only improve.
        let curve = uninterrupted.best_so_far_curve();
        for pair in curve.windows(2) {
            assert!(
                pair[1] >= pair[0],
                "{workload}: best-so-far regressed: {curve:?}"
            );
        }

        // Same run, but the process "dies" after round 2...
        let ckpt = scratch_file(&format!("{workload}.ckpt"));
        {
            let mut make_llm = factory(81);
            let mut driver = SearchDriver::new(&nada, DesignKind::State)
                .with_rounds(3)
                .with_checkpoint_path(&ckpt);
            let mut llm0 = make_llm(0);
            driver.run_round(llm0.as_mut()).expect("round 0");
            let mut llm1 = make_llm(1);
            driver.run_round(llm1.as_mut()).expect("round 1");
            // ... here: the driver is dropped with one round left, and
            // only the checkpoint file survives.
        }

        let resumed_driver = SearchDriver::resume_from_file(&nada, &ckpt)
            .expect("checkpoint resumes against the same pipeline");
        assert_eq!(resumed_driver.next_round(), 2);
        let mut resumed_driver = resumed_driver.with_rounds(3);
        let mut make_llm = factory(81);
        let resumed = resumed_driver
            .run(&mut make_llm)
            .expect("resumed run completes");

        // Hall of fame: bit-identical, not approximately equal.
        assert_eq!(
            uninterrupted.hall.len(),
            resumed.hall.len(),
            "{workload}: hall sizes differ"
        );
        for (a, b) in uninterrupted.hall.iter().zip(&resumed.hall) {
            assert_eq!(a.round, b.round, "{workload}");
            assert_eq!(a.id, b.id, "{workload}");
            assert_eq!(a.code, b.code, "{workload}");
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "{workload}: hall scores must be bit-identical"
            );
        }
        // Round summaries and cumulative spend agree too.
        assert_eq!(uninterrupted.rounds, resumed.rounds, "{workload}");
        assert_eq!(uninterrupted.stats, resumed.stats, "{workload}");
        std::fs::remove_file(&ckpt).ok();
    }
}

/// An [`LlmClient`] wrapper that logs every generated code block into a
/// shared buffer, so tests can inspect the exact pool a round saw.
struct PoolRecorder {
    inner: MockLlm,
    log: std::sync::Arc<std::sync::Mutex<Vec<String>>>,
}

impl LlmClient for PoolRecorder {
    fn model_name(&self) -> &str {
        self.inner.model_name()
    }

    fn generate(&mut self, prompt: &nada::llm::Prompt) -> nada::llm::Completion {
        let c = self.inner.generate(prompt);
        self.log.lock().unwrap().push(c.code.clone());
        c
    }
}

/// Feedback biasing is visible in the generated pools: after a round
/// completes, the next round's pool contains designs that descend from a
/// fed-back winner (asserted via `DesignSample.code`, the field the
/// text-aware classifiers read).
#[test]
fn next_round_pool_references_a_fed_back_winner() {
    for workload in workloads() {
        let nada = tiny(workload, 82);
        let round1_pool = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let log = std::sync::Arc::clone(&round1_pool);
        let mut make_llm = move |round: usize| -> Box<dyn LlmClient> {
            let inner = MockLlm::gpt4(round_seed(82, round));
            if round == 1 {
                Box::new(PoolRecorder {
                    inner,
                    log: std::sync::Arc::clone(&log),
                })
            } else {
                Box::new(inner)
            }
        };
        let outcome = SearchDriver::new(&nada, DesignKind::State)
            .with_rounds(2)
            .run(&mut make_llm)
            .expect("two rounds complete");
        let round0_hall: Vec<_> = outcome.hall.iter().filter(|e| e.round == 0).collect();
        assert!(
            !round0_hall.is_empty(),
            "{workload}: round 0 must leave winners to feed back"
        );
        // Mutated descendants keep the parent's program name as a prefix
        // (each mutation appends another `_vNNNN`), so lineage from a
        // fed-back winner is directly observable in candidate code.
        let winner_names: Vec<&str> = round0_hall
            .iter()
            .filter_map(|e| program_name(&e.code))
            .collect();
        assert!(!winner_names.is_empty(), "{workload}");
        let samples: Vec<DesignSample> = round1_pool
            .lock()
            .unwrap()
            .iter()
            .map(|code| DesignSample {
                reward_curve: Vec::new(),
                code: code.clone(),
            })
            .collect();
        assert!(
            !samples.is_empty(),
            "{workload}: round 1 generated no candidates"
        );
        assert!(
            samples
                .iter()
                .any(|s| winner_names.iter().any(|n| s.code.contains(n))),
            "{workload}: no round-1 candidate descends from a fed-back \
             winner (winners {winner_names:?})"
        );
    }
}

/// `state name_v1234 {` → `name_v1234`.
fn program_name(code: &str) -> Option<&str> {
    let rest = code.trim_start().strip_prefix("state")?.trim_start();
    let end = rest.find(|c: char| c.is_whitespace() || c == '{')?;
    Some(&rest[..end])
}
