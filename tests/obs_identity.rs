//! Telemetry is observational only: attaching the metrics bridge (and
//! any other observer) to a search must not change a single result bit.
//! These tests pin the PR's hard constraint — a bare run and a fully
//! instrumented run of the same seed produce bit-identical outcomes,
//! while the instrumented run demonstrably recorded into the global
//! registry.

use nada::core::metrics::MetricsObserver;
use nada::core::{
    CollectingObserver, Nada, NadaConfig, RunScale, SearchDriver, SearchOutcome, SearchSession,
};
use nada::llm::{DesignKind, LlmClient, MockLlm};
use nada::traces::dataset::DatasetKind;
use std::sync::Arc;

fn tiny(seed: u64) -> Nada {
    Nada::new(NadaConfig::new(DatasetKind::Fcc, RunScale::Tiny, seed))
}

/// Field-by-field bit comparison of two outcomes (floats via `to_bits`,
/// so `-0.0 != 0.0` and NaN payloads count too).
fn assert_bit_identical(bare: &SearchOutcome, instrumented: &SearchOutcome) {
    assert_eq!(bare.ranked.len(), instrumented.ranked.len());
    for (a, b) in bare.ranked.iter().zip(&instrumented.ranked) {
        assert_eq!(a.0, b.0, "ranked candidate ids must match");
        assert_eq!(
            a.1.to_bits(),
            b.1.to_bits(),
            "ranked scores must be bit-identical"
        );
    }
    assert_eq!(
        bare.best.test_score.to_bits(),
        instrumented.best.test_score.to_bits()
    );
    assert_eq!(
        bare.original.test_score.to_bits(),
        instrumented.original.test_score.to_bits()
    );
    assert_eq!(bare.best.code, instrumented.best.code);
    assert_eq!(bare.stats, instrumented.stats);
    assert_eq!(bare.precheck, instrumented.precheck);
}

#[test]
fn metrics_observer_never_changes_session_outcome_bits() {
    let nada = tiny(61);
    let bare = {
        let mut llm = MockLlm::gpt4(61);
        SearchSession::new(&nada, DesignKind::State)
            .run(&mut llm)
            .expect("bare session completes")
    };

    let stage_hist = nada_obs::latency_histogram("pipeline_stage_generate_duration_ns");
    let stages_before = stage_hist.count();
    let collector = Arc::new(CollectingObserver::new());
    let instrumented = {
        let mut llm = MockLlm::gpt4(61);
        let mut session = SearchSession::new(&nada, DesignKind::State);
        session.observe(Arc::new(MetricsObserver::new()));
        session.observe(collector.clone());
        session
            .run(&mut llm)
            .expect("instrumented session completes")
    };

    assert_bit_identical(&bare, &instrumented);
    // The observers genuinely ran: events were collected and the metrics
    // bridge recorded stage timings.
    assert!(!collector.events().is_empty(), "collector saw the search");
    assert!(
        stage_hist.count() > stages_before,
        "the generate stage was timed"
    );
}

#[test]
fn metrics_observer_never_changes_driver_outcome_bits() {
    let nada = tiny(67);
    let mut factory = |round: usize| -> Box<dyn LlmClient> {
        Box::new(MockLlm::gpt4(67 ^ ((round as u64) << 8)))
    };

    let bare = SearchDriver::new(&nada, DesignKind::State)
        .with_rounds(2)
        .run(&mut factory)
        .expect("bare driver completes");

    let rounds_before = nada_obs::counter("pipeline_rounds_total").get();
    let instrumented = {
        let mut driver = SearchDriver::new(&nada, DesignKind::State).with_rounds(2);
        driver.observe(Arc::new(MetricsObserver::new()));
        driver
            .run(&mut factory)
            .expect("instrumented driver completes")
    };

    assert_eq!(bare.rounds.len(), instrumented.rounds.len());
    assert_eq!(bare.hall.len(), instrumented.hall.len());
    for (a, b) in bare.hall.iter().zip(&instrumented.hall) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.round, b.round);
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "hall scores must be bit-identical"
        );
    }
    for (a, b) in bare.rounds.iter().zip(&instrumented.rounds) {
        assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
        assert_eq!(a.best_so_far.to_bits(), b.best_so_far.to_bits());
        assert_eq!(a.stats, b.stats);
    }
    assert_eq!(
        nada_obs::counter("pipeline_rounds_total").get(),
        rounds_before + 2,
        "both instrumented rounds were bridged into the registry"
    );
}
