//! Table-4-style sim-vs-emu comparison for congestion control.
//!
//! The ACK-clocked packet-level emulator must be systematically *harder*
//! than the fluid-model simulator — window turnover genuinely costs an
//! RTT, whole packets quantize, jitter taxes slow rounds — while
//! preserving the design ranking the simulator produces. This is the CC
//! analogue of the claim the ABR Table 4 harness reproduces: emulation
//! lowers absolute scores but keeps the ordering of designs.
//!
//! The comparison runs on the cellular datasets (4G/5G — two of the
//! three datasets the ABR Table 4 emulates), where pipes are large
//! enough that controller quality differences are structural: a probing
//! controller beats a held window beats a pinned-minimum window, in both
//! worlds. On low-BDP datasets (FCC) the baselines land within the
//! sim-vs-emu modeling gap of each other and carry no ranking guarantee
//! — exactly as statistically-insignificant FCC is skipped by the
//! paper's own Table 4.

use nada::sim::cc::{run_cc_episode, CcEnv, CcPolicy, CcReward, CubicLike, HoldCwnd};
use nada::sim::emu_cc::{run_emu_cc_episode, EmuCcEnv};
use nada::sim::netenv::ObsValue;
use nada::traces::dataset::{DatasetKind, DatasetScale, TraceDataset};

const EPISODE_TICKS: usize = 240;

/// Degenerate reference design: halves every tick, pinning the window at
/// its floor.
#[derive(Default)]
struct MinWindow;

impl CcPolicy for MinWindow {
    fn select(&mut self, _obs: &[ObsValue]) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "MinWindow"
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Median sim and emu scores for one policy across a dataset's test
/// traces, mirroring how the pipeline aggregates per-trace scores.
fn scores<P: CcPolicy + Default>(dataset: &TraceDataset) -> (f64, f64) {
    let reward = CcReward::default();
    let mut sim = Vec::new();
    let mut emu = Vec::new();
    for (i, trace) in dataset.test.iter().enumerate() {
        let mut policy = P::default();
        let mut env = CcEnv::new(trace, EPISODE_TICKS, reward, 0x51D0 + i as u64);
        sim.push(run_cc_episode(&mut env, &mut policy));
        let mut policy = P::default();
        let mut env = EmuCcEnv::new(trace, EPISODE_TICKS, reward, 0x51D0 + i as u64);
        emu.push(run_emu_cc_episode(&mut env, &mut policy));
    }
    (median(&mut sim), median(&mut emu))
}

#[test]
fn cc_emulation_lowers_scores_but_preserves_rankings() {
    for kind in [DatasetKind::Lte4g, DatasetKind::Nr5g] {
        let dataset = TraceDataset::synthesize(kind, DatasetScale::Tiny, 23);
        let ladder = [
            ("CubicLike", scores::<CubicLike>(&dataset)),
            ("HoldCwnd", scores::<HoldCwnd>(&dataset)),
            ("MinWindow", scores::<MinWindow>(&dataset)),
        ];

        // The gap: every design scores strictly lower in emulation,
        // exactly as dash.js-over-Mahimahi lowers ABR QoE.
        for (name, (sim, emu)) in &ladder {
            assert!(emu < sim, "{kind:?}: {name} emu {emu} !< sim {sim}");
        }

        // Rank preservation: the quality ladder the simulator reports
        // (probing > holding > pinned-minimum) survives emulation.
        for pair in ladder.windows(2) {
            let (better, (b_sim, b_emu)) = pair[0];
            let (worse, (w_sim, w_emu)) = pair[1];
            assert!(
                b_sim > w_sim,
                "{kind:?}: sim must rank {better} ({b_sim}) above {worse} ({w_sim})"
            );
            assert!(
                b_emu > w_emu,
                "{kind:?}: emu must rank {better} ({b_emu}) above {worse} ({w_emu})"
            );
        }
    }
}
