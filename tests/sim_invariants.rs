//! Property-based invariants on the simulator, emulator and trace replay.

use nada::sim::env::BUFFER_CAP_S;
use nada::sim::prelude::*;
use nada::traces::{Trace, TraceCursor};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Trace> {
    // 30–120 samples of 0.5 s each, bandwidths across four orders of
    // magnitude including near-outage.
    proptest::collection::vec(0.05f64..120.0, 30..120)
        .prop_map(|bw| Trace::from_uniform("prop", 0.5, &bw).expect("valid uniform trace"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replay conserves bytes: downloading N bytes at piecewise-constant
    /// rates takes exactly as long as the bandwidth integral implies
    /// (within float tolerance), and elapsed time only moves forward.
    #[test]
    fn cursor_transfer_conserves_bytes(trace in arb_trace(), kb in 1.0f64..5000.0) {
        let mut cursor = TraceCursor::new(&trace);
        let bytes = kb * 1000.0;
        let before = cursor.elapsed_s();
        let t = cursor.download(bytes);
        prop_assert!(t.duration_s >= 0.0);
        prop_assert!(cursor.elapsed_s() >= before);
        // Average throughput over the transfer must lie within the trace's
        // bandwidth envelope.
        prop_assert!(t.throughput_mbps <= trace.max_mbps() + 1e-6);
    }

    /// Player invariants, any policy, any trace: buffer stays in
    /// [0, cap], rebuffering is non-negative, episodes always terminate
    /// with exactly n_chunks steps.
    #[test]
    fn player_invariants_hold(trace in arb_trace(), seed in 0u64..1000) {
        let manifest = VideoManifest::pensieve_like(Ladder::broadband(), 24, 3);
        let mut env = AbrEnv::new_sim(&manifest, &trace, QoeLin::default(), seed);
        let mut steps = 0;
        let mut quality = (seed % 6) as usize;
        loop {
            let r = env.step(quality);
            steps += 1;
            prop_assert!(r.rebuffer_s >= 0.0);
            prop_assert!(r.delay_s > 0.0);
            prop_assert!(r.obs.buffer_s >= 0.0);
            prop_assert!(r.obs.buffer_s <= BUFFER_CAP_S + 1e-9);
            prop_assert!(r.reward.is_finite());
            quality = (quality + 1) % 6; // rotate through the ladder
            if r.done {
                break;
            }
        }
        prop_assert_eq!(steps, 24);
    }

    /// The emulator obeys the same player invariants.
    #[test]
    fn emulator_invariants_hold(trace in arb_trace(), seed in 0u64..200) {
        let manifest = VideoManifest::pensieve_like(Ladder::broadband(), 12, 4);
        let mut env = AbrEnv::new_emu(&manifest, &trace, QoeLin::default(), seed);
        loop {
            let r = env.step((seed % 6) as usize);
            prop_assert!(r.rebuffer_s >= 0.0);
            prop_assert!(r.obs.buffer_s >= 0.0 && r.obs.buffer_s <= BUFFER_CAP_S + 1e-9);
            prop_assert!(r.reward.is_finite());
            if r.done {
                break;
            }
        }
    }

    /// Mahimahi round trip preserves mean throughput for arbitrary traces.
    #[test]
    fn mahimahi_round_trip_preserves_mean(trace in arb_trace()) {
        use nada::traces::io::mahimahi::{read_mahimahi, write_mahimahi};
        let text = write_mahimahi(&trace);
        // Traces with almost no capacity may emit no packets; skip those.
        prop_assume!(text.lines().count() > 10);
        let back = read_mahimahi("rt", &text, 1.0).expect("round trip parses");
        let err = (back.mean_mbps() - trace.mean_mbps()).abs() / trace.mean_mbps();
        prop_assert!(err < 0.15, "mean drifted {err}: {} vs {}", back.mean_mbps(), trace.mean_mbps());
    }
}
