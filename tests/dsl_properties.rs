//! Property-based tests on the design DSL (proptest).

use nada::dsl::ast::{BinOp, Expr};
use nada::dsl::parser::parse_state;
use nada::dsl::pretty::print_state;
use nada::dsl::{compile_state, Value};
use proptest::prelude::*;

/// Random expression trees over a fixed input vocabulary.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0.1f64..99.0).prop_map(Expr::Number),
        Just(Expr::Ident("buffer_s".into())),
        Just(Expr::Ident("chunks_remaining".into())),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div)
                ]
            )
                .prop_map(|(l, r, op)| Expr::Binary {
                    op,
                    lhs: Box::new(l),
                    rhs: Box::new(r)
                }),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            inner.clone().prop_map(|e| Expr::Call {
                name: "abs".into(),
                args: vec![e]
            }),
            (inner, 0.1f64..10.0, 0.1f64..10.0).prop_map(|(e, lo, hi)| Expr::Call {
                name: "clip".into(),
                // Parser-canonical negative literal: Neg(Number), as `-x`
                // lexes to unary minus.
                args: vec![
                    e,
                    Expr::Neg(Box::new(Expr::Number(lo))),
                    Expr::Number(lo + hi)
                ]
            }),
        ]
    })
}

fn program_with(expr: &Expr) -> String {
    let prog = nada::dsl::StateProgram {
        name: "prop".into(),
        inputs: vec![
            nada::dsl::InputDecl {
                name: "buffer_s".into(),
                ty: nada::dsl::InputType::Scalar,
            },
            nada::dsl::InputDecl {
                name: "chunks_remaining".into(),
                ty: nada::dsl::InputType::Scalar,
            },
        ],
        features: vec![nada::dsl::FeatureDecl {
            name: "f".into(),
            expr: expr.clone(),
        }],
    };
    print_state(&prog)
}

proptest! {
    /// print → parse is the identity on ASTs.
    #[test]
    fn pretty_print_round_trips(expr in arb_expr()) {
        let src = program_with(&expr);
        let parsed = parse_state(&src).expect("printed programs must parse");
        prop_assert_eq!(&parsed.features[0].expr, &expr, "source:\n{}", src);
    }

    /// Whatever compiles must evaluate to shape-consistent, finite features
    /// on schema-shaped inputs (or fail with a typed error — never panic).
    #[test]
    fn compiled_programs_never_panic(expr in arb_expr(), buffer in 0.0f64..60.0, rem in 0.0f64..48.0) {
        let src = program_with(&expr);
        if let Ok(state) = compile_state(&src) {
            let mut inputs = state.schema_midpoint_inputs();
            inputs[4] = Value::Scalar(buffer);
            inputs[5] = Value::Scalar(rem);
            match state.eval(&inputs) {
                Ok(features) => {
                    prop_assert_eq!(features.len(), 1);
                    prop_assert!(features[0].is_finite());
                }
                Err(e) => {
                    // Division by zero etc. — a typed runtime error is the
                    // contract; a panic would fail the test harness itself.
                    let _ = e.to_string();
                }
            }
        }
    }

    /// The normalization check never passes a program whose only feature is
    /// a raw large-magnitude input scaled UP.
    #[test]
    fn fuzzer_catches_amplified_bitrates(factor in 1.0f64..50.0) {
        let src = format!(
            "state amp {{ input last_bitrate_kbps: scalar; feature f = last_bitrate_kbps * {factor:.3}; }}"
        );
        let state = compile_state(&src).expect("amplifier compiles");
        let outcome = nada::dsl::normalization_check(&state, &nada::dsl::FuzzConfig::default());
        prop_assert!(
            !matches!(outcome, nada::dsl::fuzz::NormCheckOutcome::Pass),
            "amplified bitrate passed the T=100 check"
        );
    }
}
