//! Environment invariants, generalized over the `NetEnv` trait and
//! parameterized over both workloads (ABR and congestion control).
//!
//! Every environment the pipeline trains on must uphold the same contract:
//! observations always match the declared field spec (shape + finiteness),
//! including the terminal observation; episodes replay bit-for-bit after
//! `reset` for a fixed seed; and each workload's safety invariant holds
//! (playback buffer within `[0, cap]`, congestion window within its
//! declared bounds).

use nada::sim::cc::{CcEnv, CcReward, MAX_CWND_PKTS, MIN_CWND_PKTS};
use nada::sim::emu_cc::EmuCcEnv;
use nada::sim::env::BUFFER_CAP_S;
use nada::sim::netenv::{field, spec_mismatch, EnvStep, NetEnv, ObsValue};
use nada::sim::prelude::*;
use nada::traces::Trace;

fn test_trace() -> Trace {
    // Varied bandwidth including a near-outage dip.
    let bw: Vec<f64> = (0..400)
        .map(|i| match i % 40 {
            0..=3 => 0.1,
            4..=19 => 3.0 + (i % 7) as f64,
            _ => 1.0 + (i % 5) as f64 * 0.8,
        })
        .collect();
    Trace::from_uniform("inv", 1.0, &bw).unwrap()
}

/// Drives one full episode with a rotating action policy, checking the
/// generic contract at every step and returning the step log.
fn drive_episode(env: &mut dyn NetEnv, max_steps: usize) -> Vec<EnvStep> {
    let spec = env.observation_spec();
    let n_actions = env.action_space();
    assert!(n_actions > 1, "a policy needs at least two actions");

    let obs0 = env.reset();
    assert_eq!(
        spec_mismatch(spec, &obs0),
        None,
        "initial observation violates spec"
    );

    let mut steps = Vec::new();
    for i in 0..max_steps {
        let step = env.step(i % n_actions);
        assert_eq!(
            spec_mismatch(spec, &step.obs),
            None,
            "step {i} observation violates spec (done={})",
            step.done
        );
        assert!(step.reward.is_finite(), "step {i} reward must be finite");
        let done = step.done;
        steps.push(step);
        if done {
            return steps;
        }
    }
    panic!("episode did not terminate within {max_steps} steps");
}

/// The environments under test, freshly constructed per call so replay
/// determinism can be asserted across constructions too.
fn abr_env<'a>(
    manifest: &'a VideoManifest,
    trace: &'a Trace,
    seed: u64,
) -> AbrEnv<'a, SimTransport<'a>, QoeLin> {
    AbrEnv::new_sim(manifest, trace, QoeLin::default(), seed)
}

fn cc_env(trace: &Trace, seed: u64) -> CcEnv<'_> {
    CcEnv::new(trace, 120, CcReward::default(), seed)
}

fn emu_cc_env(trace: &Trace, seed: u64) -> EmuCcEnv<'_> {
    EmuCcEnv::new(trace, 120, CcReward::default(), seed)
}

#[test]
fn episodes_terminate_and_observations_match_spec() {
    let trace = test_trace();
    let manifest = VideoManifest::pensieve_like(Ladder::broadband(), 24, 3);

    let mut abr = abr_env(&manifest, &trace, 5);
    let abr_steps = drive_episode(&mut abr, 1000);
    assert_eq!(abr_steps.len(), 24, "ABR episodes are one chunk per step");

    let mut cc = cc_env(&trace, 5);
    let cc_steps = drive_episode(&mut cc, 1000);
    assert_eq!(cc_steps.len(), 120, "CC episodes are one tick per step");

    let mut emu = emu_cc_env(&trace, 5);
    let emu_steps = drive_episode(&mut emu, 1000);
    assert_eq!(emu_steps.len(), 120, "emulated CC keeps the tick contract");
}

#[test]
fn terminal_observations_are_valid_for_bootstrapping() {
    let trace = test_trace();
    let manifest = VideoManifest::pensieve_like(Ladder::broadband(), 12, 1);
    for (name, env) in [
        (
            "abr",
            Box::new(abr_env(&manifest, &trace, 9)) as Box<dyn NetEnv>,
        ),
        ("cc", Box::new(cc_env(&trace, 9)) as Box<dyn NetEnv>),
        ("emu_cc", Box::new(emu_cc_env(&trace, 9)) as Box<dyn NetEnv>),
    ] {
        let mut env = env;
        let steps = drive_episode(env.as_mut(), 1000);
        let terminal = steps.last().expect("episodes have steps");
        assert!(terminal.done);
        // The terminal observation feeds value bootstrapping: every field
        // must still be present, shaped, and finite (checked by
        // drive_episode); spot-check it is not degenerate.
        assert!(
            terminal.obs.iter().any(|v| match v {
                ObsValue::Scalar(x) => *x != 0.0,
                ObsValue::Vector(xs) => xs.iter().any(|x| *x != 0.0),
            }),
            "{name}: terminal observation is all-zero"
        );
    }
}

#[test]
fn reset_and_reconstruction_replay_identically() {
    let trace = test_trace();
    let manifest = VideoManifest::pensieve_like(Ladder::broadband(), 16, 2);

    // Same seed, fresh construction: identical episodes.
    let mut a = abr_env(&manifest, &trace, 42);
    let mut b = abr_env(&manifest, &trace, 42);
    assert_eq!(drive_episode(&mut a, 1000), drive_episode(&mut b, 1000));
    // Reset on the same instance: also identical.
    let first = drive_episode(&mut a, 1000);
    let second = drive_episode(&mut a, 1000);
    assert_eq!(first, second, "ABR reset must replay the episode");

    let mut ca = cc_env(&trace, 42);
    let mut cb = cc_env(&trace, 42);
    assert_eq!(drive_episode(&mut ca, 1000), drive_episode(&mut cb, 1000));
    let first = drive_episode(&mut ca, 1000);
    let second = drive_episode(&mut ca, 1000);
    assert_eq!(first, second, "CC reset must replay the episode");

    let mut ea = emu_cc_env(&trace, 42);
    let mut eb = emu_cc_env(&trace, 42);
    assert_eq!(drive_episode(&mut ea, 1000), drive_episode(&mut eb, 1000));
    let first = drive_episode(&mut ea, 1000);
    let second = drive_episode(&mut ea, 1000);
    assert_eq!(first, second, "emulated CC reset must replay the episode");

    // Different seeds: episodes diverge (the trace offset moved).
    let mut c = abr_env(&manifest, &trace, 43);
    assert_ne!(drive_episode(&mut a, 1000), drive_episode(&mut c, 1000));
}

#[test]
fn abr_buffer_stays_within_declared_bounds() {
    let trace = test_trace();
    let manifest = VideoManifest::pensieve_like(Ladder::broadband(), 24, 3);
    for seed in 0..8 {
        let mut env = abr_env(&manifest, &trace, seed);
        let env: &mut dyn NetEnv = &mut env;
        let spec = env.observation_spec();
        env.reset();
        let n = env.action_space();
        for i in 0..1000 {
            let step = env.step(i % n);
            let buffer = field(spec, &step.obs, "buffer_s").as_scalar();
            assert!(
                (0.0..=BUFFER_CAP_S + 1e-9).contains(&buffer),
                "buffer {buffer}"
            );
            for &b in field(spec, &step.obs, "buffer_history_s").as_vector() {
                assert!(b >= 0.0, "history buffer {b} negative");
            }
            if step.done {
                break;
            }
        }
    }
}

#[test]
fn cc_window_stays_within_declared_bounds() {
    let trace = test_trace();
    for seed in 0..8 {
        for mut env in [
            Box::new(cc_env(&trace, seed)) as Box<dyn NetEnv + '_>,
            Box::new(emu_cc_env(&trace, seed)) as Box<dyn NetEnv + '_>,
        ] {
            let env = env.as_mut();
            let spec = env.observation_spec();
            env.reset();
            let n = env.action_space();
            // Adversarial action pattern: long doubling bursts plus halvings.
            for i in 0..1000usize {
                let action = if i % 11 == 0 { 0 } else { (i * 7) % n };
                let step = env.step(action);
                let cwnd = field(spec, &step.obs, "cwnd_pkts").as_scalar();
                assert!(
                    (MIN_CWND_PKTS..=MAX_CWND_PKTS).contains(&cwnd),
                    "cwnd {cwnd} out of declared bounds"
                );
                let min_rtt = field(spec, &step.obs, "min_rtt_ms").as_scalar();
                assert!(min_rtt > 0.0, "min RTT must stay positive");
                if step.done {
                    break;
                }
            }
        }
    }
}

#[test]
fn in_place_observation_writes_match_allocating_steps() {
    // The batched engine's `reset_into`/`step_into` overrides must observe
    // exactly what `reset`/`step` observe — same values, same rewards, same
    // termination — while writing into a reused buffer.
    let trace = test_trace();
    let manifest = VideoManifest::pensieve_like(Ladder::broadband(), 16, 2);
    for (name, alloc_env, inplace_env) in [
        (
            "abr",
            Box::new(abr_env(&manifest, &trace, 77)) as Box<dyn NetEnv + '_>,
            Box::new(abr_env(&manifest, &trace, 77)) as Box<dyn NetEnv + '_>,
        ),
        (
            "cc",
            Box::new(cc_env(&trace, 77)) as Box<dyn NetEnv + '_>,
            Box::new(cc_env(&trace, 77)) as Box<dyn NetEnv + '_>,
        ),
        (
            "emu_cc",
            Box::new(emu_cc_env(&trace, 77)) as Box<dyn NetEnv + '_>,
            Box::new(emu_cc_env(&trace, 77)) as Box<dyn NetEnv + '_>,
        ),
    ] {
        let mut a = alloc_env;
        let mut b = inplace_env;
        // Deliberately mis-shaped starting buffer: the writers must fix it.
        let mut obs = vec![ObsValue::Scalar(9.0); 2];
        let reference = a.reset();
        b.reset_into(&mut obs);
        assert_eq!(obs, reference, "{name}: reset_into");
        let mut remaining = b.len_hint().expect("both shipped envs declare lengths");
        let n = b.action_space();
        for i in 0.. {
            let step = a.step(i % n);
            let out = b.step_into(i % n, &mut obs);
            assert_eq!(obs, step.obs, "{name}: step_into obs at {i}");
            assert_eq!(out.reward, step.reward, "{name}: reward at {i}");
            assert_eq!(out.done, step.done, "{name}: done at {i}");
            remaining -= 1;
            assert_eq!(
                b.len_hint(),
                Some(remaining),
                "{name}: len_hint counts down"
            );
            assert_eq!(out.done, remaining == 0, "{name}: len_hint is exact");
            if out.done {
                break;
            }
        }
    }
}

#[test]
fn action_spaces_match_workload_declarations() {
    let trace = test_trace();
    let manifest = VideoManifest::pensieve_like(Ladder::broadband(), 8, 1);
    let abr = abr_env(&manifest, &trace, 1);
    assert_eq!(abr.action_space(), 6);
    let cc = cc_env(&trace, 1);
    assert_eq!(cc.action_space(), nada::sim::cc::CC_ACTIONS.len());
    let emu = emu_cc_env(&trace, 1);
    assert_eq!(emu.action_space(), nada::sim::cc::CC_ACTIONS.len());
    assert_eq!(
        emu.observation_spec(),
        cc.observation_spec(),
        "sim and emu CC must expose the same schema"
    );
}
