//! Secret hygiene end-to-end: drive a real (loopback) HTTP search with an
//! API key set, record it, checkpoint it, observe it — and assert the key
//! appears in none of the artifacts the run leaves behind: the on-disk
//! cassette, the driver checkpoint, the session snapshot, or the observer
//! event stream. The key's only legitimate exit is the `Authorization`
//! header, which the loopback server confirms receiving.

use nada::core::{CollectingObserver, Nada, NadaConfig, RunScale, SearchDriver, SearchSession};
use nada::llm::{DesignKind, LlmClient, RecordingClient};
use nada::llm_http::{ApiKey, HttpClient, HttpConfig, Scripted, TestServer};
use nada::traces::dataset::DatasetKind;
use std::path::PathBuf;
use std::time::Duration;

const KEY: &str = "sk-nada-test-key-8f3a2b";

/// A valid, normalized ABR state design the server "generates".
const DESIGN: &str = "state served { input buffer_s: scalar; feature b = buffer_s / 60.0; }";

fn scratch_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nada-hygiene-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn http_client(base: String) -> HttpClient {
    let mut cfg = HttpConfig::new(base, "gpt-4-loopback");
    cfg.api_key = Some(ApiKey::new(KEY));
    cfg.backoff = Duration::from_millis(1);
    cfg.timeout = Duration::from_secs(5);
    HttpClient::new(cfg).expect("loopback endpoint parses")
}

#[test]
fn the_key_never_leaves_the_authorization_header() {
    let nada = Nada::new(NadaConfig::new(DatasetKind::Fcc, RunScale::Tiny, 71));
    let n = nada.config().n_candidates;

    // One transient 500 (whose body even echoes the key, as a hostile
    // endpoint might) followed by enough completions for the pool: the
    // retry path is part of the audited surface.
    let mut script = vec![Scripted::Status(
        500,
        format!(r#"{{"error":{{"message":"upstream rejected Bearer {KEY}"}}}}"#),
    )];
    script.extend((0..n).map(|_| Scripted::Completion(format!("An idea.\n```\n{DESIGN}\n```"))));
    let server = TestServer::start(script);

    let cassette_path = scratch_file("hygiene.cassette");
    let checkpoint_path = scratch_file("hygiene.ckpt");
    let collector = CollectingObserver::new();

    let snapshot_text = {
        let mut rec = RecordingClient::new(http_client(server.base()))
            .with_lane("hygiene", 0)
            .persist_to(&cassette_path)
            .expect("fresh cassette target");

        // A full driver round: session events, cassette writes, checkpoint.
        let mut driver =
            SearchDriver::new(&nada, DesignKind::State).with_checkpoint_path(&checkpoint_path);
        driver.observe(&collector);
        driver.run_round(&mut rec).expect("round completes");

        // Plus a session snapshot mid-search (taken after Generate, where
        // the LLM's output lives).
        let mut session = SearchSession::new(&nada, DesignKind::State);
        let mut replay = nada::llm::ReplayClient::from_cassette(&rec.cassette(), "hygiene", 0)
            .expect("cassette slice exists");
        session.generate(&mut replay).expect("generate runs");
        session.snapshot().encode()
    };

    // The server did receive the key — through the one sanctioned channel.
    let requests = server.requests();
    assert!(!requests.is_empty());
    assert!(requests
        .iter()
        .all(|r| r.header("authorization") == Some(&format!("Bearer {KEY}"))));

    // ...and nothing the run left behind contains it.
    let cassette_text = std::fs::read_to_string(&cassette_path).expect("cassette written");
    assert!(
        cassette_text.contains("served"),
        "cassette should hold the generated designs"
    );
    assert!(!cassette_text.contains(KEY), "key leaked into the cassette");

    let checkpoint_text = std::fs::read_to_string(&checkpoint_path).expect("checkpoint written");
    assert!(
        !checkpoint_text.contains(KEY),
        "key leaked into the checkpoint"
    );

    assert!(!snapshot_text.contains(KEY), "key leaked into the snapshot");

    let events_debug = format!("{:?}", collector.events());
    assert!(
        !events_debug.is_empty() && !events_debug.contains(KEY),
        "key leaked into observer events"
    );

    std::fs::remove_file(&cassette_path).ok();
    std::fs::remove_file(&checkpoint_path).ok();
}

/// The failure path leaks nothing either: when the backend exhausts its
/// retries, the panic message carries the (redacted) server body — never
/// the key.
#[test]
fn exhausted_retries_panic_with_a_redacted_message() {
    let script = vec![
        Scripted::Status(
            500,
            format!(r#"{{"error":{{"message":"Bearer {KEY} rejected"}}}}"#),
        );
        5
    ];
    let server = TestServer::start(script);
    let mut client = http_client(server.base());
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        client.generate(&nada::llm::Prompt::state(DESIGN))
    }))
    .expect_err("exhausted retries must abort");
    let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("http status 500"), "{msg}");
    assert!(!msg.contains(KEY), "key leaked into the panic: {msg}");
}
