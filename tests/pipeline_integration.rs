//! End-to-end integration tests across all crates (tiny scale).

use nada::core::{Nada, NadaConfig, RunScale};
use nada::llm::{DesignKind, MockLlm};
use nada::traces::dataset::DatasetKind;

fn tiny(kind: DatasetKind, seed: u64) -> Nada {
    Nada::new(NadaConfig::new(kind, RunScale::Tiny, seed))
}

#[test]
fn full_state_search_improves_or_matches_on_every_dataset() {
    // At tiny scale the search must at least never *regress* the reported
    // best below the original (the original is the fallback winner).
    for kind in [DatasetKind::Fcc, DatasetKind::Starlink] {
        let nada = tiny(kind, 3);
        let mut llm = MockLlm::perfect(3);
        let outcome = nada.run_state_search(&mut llm);
        assert!(
            outcome.best.test_score.is_finite(),
            "{kind:?}: non-finite best score"
        );
        assert!(
            !outcome.ranked.is_empty(),
            "{kind:?}: nothing survived screening"
        );
    }
}

#[test]
fn search_is_deterministic_end_to_end() {
    let run = || {
        let nada = tiny(DatasetKind::Starlink, 9);
        let mut llm = MockLlm::gpt4(9);
        let o = nada.run_state_search(&mut llm);
        (
            o.precheck.compilable,
            o.precheck.normalized,
            o.ranked.clone(),
            o.best.test_score.to_bits(),
            o.original.test_score.to_bits(),
        )
    };
    assert_eq!(
        run(),
        run(),
        "same seeds must reproduce the whole search bit-for-bit"
    );
}

#[test]
fn gpt4_pool_outperforms_gpt35_pool_on_prechecks() {
    // Table 2's headline at integration level.
    let nada = tiny(DatasetKind::Fcc, 5);
    let cfg_pool = |mut llm: MockLlm| {
        let candidates = nada.generate_candidates(&mut llm, DesignKind::State);
        // Tiny scale only generates 8; widen for a stable comparison.
        let more: Vec<nada::core::Candidate> = (0..30)
            .flat_map(|i| {
                let mut llm2 = llm.clone();
                let mut c = nada.generate_candidates(&mut llm2, DesignKind::State);
                for cand in &mut c {
                    cand.id += i * 100;
                }
                c
            })
            .collect();
        let all: Vec<nada::core::Candidate> = candidates.into_iter().chain(more).collect();
        let (_, stats) = nada.precheck_all(&all);
        (stats.compilable_pct(), stats.normalized_pct())
    };
    let (c35, n35) = cfg_pool(MockLlm::gpt35(5));
    let (c4, n4) = cfg_pool(MockLlm::gpt4(5));
    assert!(c4 > c35, "gpt-4 compilable {c4} <= gpt-3.5 {c35}");
    assert!(n4 > n35, "gpt-4 normalized {n4} <= gpt-3.5 {n35}");
}

#[test]
fn architecture_search_exercises_nonstandard_branches() {
    let nada = tiny(DatasetKind::Fcc, 7);
    let mut llm = MockLlm::perfect(7);
    let outcome = nada.run_arch_search(&mut llm);
    assert_eq!(outcome.kind, DesignKind::Architecture);
    assert!(outcome.best.test_score.is_finite());
}

#[test]
fn emulation_pipeline_runs_for_trained_designs() {
    let nada = tiny(DatasetKind::Starlink, 11);
    let state = nada::dsl::seeds::pensieve_state();
    let arch = nada::dsl::seeds::pensieve_arch();
    let emu = nada
        .emulation_score(&state, &arch)
        .expect("emulation must run");
    assert!(emu.is_finite());
}

#[test]
fn stress_pipeline_scores_every_preset() {
    let nada = tiny(DatasetKind::Fcc, 17);
    let state = nada::dsl::seeds::pensieve_state();
    let arch = nada::dsl::seeds::pensieve_arch();
    let stress = nada
        .stress_score(&state, &arch, 1)
        .expect("stress evaluation must run");
    assert!(stress.mean.is_finite());
    assert!(stress.worst <= stress.mean + 1e-12);
    assert_eq!(
        stress.per_preset.len(),
        nada::traces::PerturbConfig::presets().len()
    );
}

#[test]
fn cc_emulation_pipeline_runs_for_trained_designs() {
    let nada = Nada::with_workload(
        NadaConfig::new(DatasetKind::Fcc, RunScale::Tiny, 19),
        Box::new(nada::core::workload::CcWorkload::for_dataset(
            DatasetKind::Fcc,
        )),
    );
    let state = nada::dsl::seeds::cc_state();
    let arch = nada::dsl::seeds::cc_arch();
    let emu = nada
        .emulation_score(&state, &arch)
        .expect("CC emulation must run");
    assert!(emu.is_finite());
}

#[test]
fn combination_study_returns_a_winner() {
    let nada = tiny(DatasetKind::Fcc, 13);
    let state = nada::dsl::seeds::pensieve_state();
    let arch = nada::dsl::seeds::pensieve_arch();
    let combo = nada.evaluate_combinations(&[(0, state)], &[(0, arch)]);
    let (sid, aid, score) = combo.expect("single pair must win");
    assert_eq!((sid, aid), (0, 0));
    assert!(score.is_finite());
}
