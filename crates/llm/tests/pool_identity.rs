//! Bit-identity pins for the wave-dispatch path.
//!
//! The concurrent generation layer must not change what deterministic
//! backends produce: `generate_batch_while` now loops in waves of
//! `wave_size()`, and for every sequential backend (mock, replay —
//! `wave_size() == 1`) that loop must be byte-for-byte the historical
//! one-request-at-a-time path. These tests pin that identity for both
//! prompt workloads (state and architecture), and pin that cassettes
//! recorded *through* a wave-dispatching client replay in submission
//! order — existing fixtures stay valid under the pool.

use nada_dsl::seeds::{PENSIEVE_ARCH_SOURCE, PENSIEVE_STATE_SOURCE};
use nada_llm::{Completion, LlmClient, MockLlm, Prompt, RecordingClient, ReplayClient};

/// The historical serial reference: one `generate` per completion,
/// checking the budget hook before each.
fn serial_reference<C: LlmClient>(
    client: &mut C,
    prompt: &Prompt,
    n: usize,
    more: &mut dyn FnMut(usize) -> bool,
) -> Vec<Completion> {
    let mut out = Vec::new();
    while out.len() < n {
        if !more(out.len()) {
            break;
        }
        out.push(client.generate(prompt));
    }
    out
}

fn workloads() -> Vec<Prompt> {
    vec![
        Prompt::state(PENSIEVE_STATE_SOURCE),
        Prompt::architecture(PENSIEVE_ARCH_SOURCE),
    ]
}

#[test]
fn mock_batches_are_bit_identical_to_the_serial_path() {
    for (model, build) in [
        ("gpt35", MockLlm::gpt35 as fn(u64) -> MockLlm),
        ("gpt4", MockLlm::gpt4),
        ("perfect", MockLlm::perfect),
    ] {
        for prompt in workloads() {
            // Same seed, two clients: the wave loop vs the historical
            // loop must consume the mock's RNG stream identically.
            let via_batch = build(42).generate_batch(&prompt, 24);
            let reference = serial_reference(&mut build(42), &prompt, 24, &mut |_| true);
            assert_eq!(via_batch, reference, "model {model} diverged");

            // Budget-capped batches too (the hook fires mid-stream).
            let capped = build(7).generate_batch_while(&prompt, 24, &mut |made| made < 11);
            let capped_ref = serial_reference(&mut build(7), &prompt, 24, &mut |made| made < 11);
            assert_eq!(capped, capped_ref, "model {model} diverged under cap");
            assert_eq!(capped.len(), 11);
        }
    }
}

#[test]
fn replay_batches_are_bit_identical_to_the_serial_path() {
    for prompt in workloads() {
        let mut rec = RecordingClient::new(MockLlm::gpt4(9)).with_lane("identity", 0);
        let originals = rec.generate_batch(&prompt, 8);
        let cassette = rec.into_cassette();

        let via_batch = ReplayClient::from_cassette(&cassette, "identity", 0)
            .unwrap()
            .generate_batch(&prompt, 8);
        let reference = serial_reference(
            &mut ReplayClient::from_cassette(&cassette, "identity", 0).unwrap(),
            &prompt,
            8,
            &mut |_| true,
        );
        assert_eq!(via_batch, reference);
        assert_eq!(via_batch, originals);
    }
}

/// A deterministic client that pretends to be pooled: `wave_size()` > 1,
/// and waves *reverse* their completion order internally before the
/// dispatcher's submission-order contract puts them back — here we just
/// produce them in submission order, like `ParallelGen` guarantees, from
/// a sequential counter.
struct WavedCounter {
    conns: usize,
    generated: usize,
}

impl LlmClient for WavedCounter {
    fn model_name(&self) -> &str {
        "waved-counter"
    }

    fn generate(&mut self, _prompt: &Prompt) -> Completion {
        self.generated += 1;
        Completion {
            code: format!("design {}\n", self.generated),
            reasoning: None,
        }
    }

    fn wave_size(&self) -> usize {
        self.conns
    }
}

#[test]
fn cassettes_recorded_through_a_wave_client_replay_in_submission_order() {
    let prompt = Prompt::state(PENSIEVE_STATE_SOURCE);
    // Record through a wave-dispatching inner client (wave_size 3).
    let mut rec = RecordingClient::new(WavedCounter {
        conns: 3,
        generated: 0,
    })
    .with_lane("pooled", 2);
    let originals = rec.generate_batch(&prompt, 7);
    assert_eq!(originals.len(), 7);
    let cassette = rec.into_cassette();

    // The cassette holds the completions in submission order under the
    // recorder's (lane, round), fingerprinted against the live prompt —
    // exactly what a serial recording would have written.
    assert_eq!(cassette.entries.len(), 7);
    for (i, entry) in cassette.entries.iter().enumerate() {
        assert_eq!(entry.lane, "pooled");
        assert_eq!(entry.round, 2);
        assert_eq!(entry.code, format!("design {}\n", i + 1));
    }

    // And a strict (fingerprint-verified) replay yields the same bytes
    // in the same order.
    let mut replay = ReplayClient::from_cassette(&cassette, "pooled", 2).unwrap();
    let replayed = replay.generate_batch(&prompt, 7);
    assert_eq!(replayed, originals);
}

#[test]
fn recording_preserves_the_inner_clients_wave_size() {
    // A recorder around a pooled client must not serialize it.
    let rec = RecordingClient::new(WavedCounter {
        conns: 4,
        generated: 0,
    });
    assert_eq!(rec.wave_size(), 4);
    let serial = RecordingClient::new(MockLlm::perfect(1));
    assert_eq!(serial.wave_size(), 1);
}
