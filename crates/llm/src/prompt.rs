//! Prompt construction per the paper's §2.1 strategies.
//!
//! Three strategies are modelled, each toggleable for the prompt-ablation
//! bench:
//!
//! 1. **Chain-of-thought**: instruct the model to list several ideas in
//!    natural language, pick the most promising, then write code;
//! 2. **Semantic renaming**: present the seed code with meaningful variable
//!    names and per-input comments (our DSL seeds are already written this
//!    way; turning the flag off strips the comments);
//! 3. **Normalization request** (state prompts only): explicitly ask for
//!    properly normalized features.

use crate::client::DesignKind;
use nada_dsl::{abr_schema, cc_schema, InputSchema};

/// The workload a prompt targets: the §2.1 task description plus the
/// machine-readable schema of environment inputs (rendered into the prompt
/// and consumed by the mock generators' mutation engine).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskContext {
    /// Human description of the algorithm being redesigned.
    pub domain: &'static str,
    /// The inputs the environment offers to state programs.
    pub schema: InputSchema,
}

impl TaskContext {
    /// The Pensieve ABR task (the paper's case study).
    pub fn abr() -> Self {
        Self {
            domain: "an adaptive-bitrate (ABR) video streaming algorithm",
            schema: abr_schema(),
        }
    }

    /// The congestion-control task (the authors' follow-up workload).
    pub fn cc() -> Self {
        Self {
            domain: "a congestion-control algorithm (a congestion-window policy)",
            schema: cc_schema(),
        }
    }
}

/// One fed-back winner from an earlier search round: its code and the
/// full-protocol score it earned.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackWinner {
    /// The winning design's source code.
    pub code: String,
    /// Its §3.1 test score.
    pub score: f64,
}

/// Ranked outcomes of previous search rounds, rendered into the next
/// round's prompt (the iterate-with-feedback loop of the authors'
/// follow-up work, arXiv:2508.16074).
///
/// The mock LLM also consumes this structurally: it biases its mutation
/// motifs toward the winners and mutates from their code, so feedback
/// measurably improves rounds even offline.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackContext {
    /// The upcoming round index (0-based; round 0 never has feedback).
    pub round: usize,
    /// Hall-of-fame designs from earlier rounds, best first.
    pub winners: Vec<FeedbackWinner>,
    /// Last round's candidates rejected by the compilation check.
    pub rejected_compile: usize,
    /// Last round's candidates rejected by the normalization check.
    pub rejected_normalization: usize,
    /// Last round's candidates that passed both pre-checks.
    pub accepted: usize,
}

impl FeedbackContext {
    /// The best design fed back, if any.
    pub fn best(&self) -> Option<&FeedbackWinner> {
        self.winners.first()
    }
}

/// Which §2.1 strategies to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PromptOptions {
    /// Ask for ideas-then-code reasoning.
    pub chain_of_thought: bool,
    /// Keep semantic names + explanatory comments in the seed code.
    pub semantic_renaming: bool,
    /// Explicitly request normalized features (ignored for architecture
    /// prompts, as in the paper).
    pub request_normalization: bool,
}

impl Default for PromptOptions {
    fn default() -> Self {
        Self {
            chain_of_thought: true,
            semantic_renaming: true,
            request_normalization: true,
        }
    }
}

/// A fully specified generation request.
#[derive(Debug, Clone, PartialEq)]
pub struct Prompt {
    /// Which component to redesign.
    pub kind: DesignKind,
    /// Strategy toggles.
    pub options: PromptOptions,
    /// The existing implementation (a DSL code block) the model starts from.
    pub seed_code: String,
    /// The workload being targeted.
    pub task: TaskContext,
    /// Ranked outcomes of earlier rounds, when this prompt belongs to an
    /// iterative search (`None` for one-shot searches and round 0).
    pub feedback: Option<FeedbackContext>,
}

impl Prompt {
    /// An ABR state-redesign prompt with the paper's full strategy set.
    pub fn state(seed_code: impl Into<String>) -> Self {
        Self::state_for(TaskContext::abr(), seed_code)
    }

    /// An ABR architecture-redesign prompt with the paper's full strategy
    /// set.
    pub fn architecture(seed_code: impl Into<String>) -> Self {
        Self::architecture_for(TaskContext::abr(), seed_code)
    }

    /// A state-redesign prompt for an arbitrary workload.
    pub fn state_for(task: TaskContext, seed_code: impl Into<String>) -> Self {
        Self {
            kind: DesignKind::State,
            options: PromptOptions::default(),
            seed_code: seed_code.into(),
            task,
            feedback: None,
        }
    }

    /// An architecture-redesign prompt for an arbitrary workload.
    pub fn architecture_for(task: TaskContext, seed_code: impl Into<String>) -> Self {
        Self {
            kind: DesignKind::Architecture,
            options: PromptOptions::default(),
            seed_code: seed_code.into(),
            task,
            feedback: None,
        }
    }

    /// Attaches the ranked outcomes of earlier search rounds (builder
    /// style). The rendered prompt gains a feedback section, and clients
    /// that understand feedback (the mock, a future HTTP client with
    /// few-shot packing) steer generation toward the winners.
    pub fn with_feedback(mut self, feedback: FeedbackContext) -> Self {
        self.feedback = Some(feedback);
        self
    }

    /// Renders the complete prompt text a hosted model would receive.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self.kind {
            DesignKind::State => {
                out.push_str(&format!(
                    "You are improving the reinforcement-learning STATE REPRESENTATION of \
                     a network algorithm: {}.\n\n",
                    self.task.domain
                ));
                out.push_str("The environment offers these raw inputs:\n");
                for spec in self.task.schema.specs() {
                    out.push_str(&format!(
                        "- {}: {} — {}\n",
                        spec.name,
                        spec.ty.describe(),
                        spec.doc
                    ));
                }
                out.push('\n');
            }
            DesignKind::Architecture => {
                out.push_str(&format!(
                    "You are improving the ACTOR-CRITIC NEURAL NETWORK ARCHITECTURE of \
                     a network algorithm: {}.\n\n",
                    self.task.domain
                ));
            }
        }
        if self.options.chain_of_thought {
            out.push_str(
                "First analyze the existing code. Then propose several alternative design \
                 ideas in natural language, select the most promising one, and only then \
                 write the final code block.\n\n",
            );
        }
        out.push_str("The existing implementation is:\n\n```\n");
        if self.options.semantic_renaming {
            out.push_str(&self.seed_code);
        } else {
            out.push_str(&strip_comments(&self.seed_code));
        }
        out.push_str("```\n\n");
        if self.kind == DesignKind::State && self.options.request_normalization {
            out.push_str(
                "IMPORTANT: every feature must be properly normalized — feature values \
                 should stay within a small range (roughly [-1, 1]); never feed raw byte \
                 counts, kbps values or other large magnitudes to the network.\n\n",
            );
        }
        if let Some(fb) = &self.feedback {
            out.push_str(&format!(
                "This is round {} of an iterative search. Outcomes of the previous \
                 round(s):\n",
                fb.round + 1
            ));
            out.push_str(&format!(
                "- {} designs passed both checks; {} failed to compile; {} were \
                 rejected for unnormalized features.\n",
                fb.accepted, fb.rejected_compile, fb.rejected_normalization
            ));
            for (rank, w) in fb.winners.iter().enumerate() {
                out.push_str(&format!(
                    "\nRanked design #{} (test score {:.4}):\n\n```\n{}```\n",
                    rank + 1,
                    w.score,
                    ensure_trailing_newline(&w.code)
                ));
            }
            out.push_str(
                "\nBuild on what made the top-ranked designs succeed, and avoid the \
                 failure modes that got designs rejected.\n\n",
            );
        }
        out.push_str("Respond with a single code block in the same language.\n");
        out
    }
}

fn ensure_trailing_newline(code: &str) -> String {
    if code.ends_with('\n') {
        code.to_string()
    } else {
        format!("{code}\n")
    }
}

/// Removes `#` comments (the inverse of the semantic-renaming strategy —
/// the paper notes that unannotated code yields worse generations).
fn strip_comments(code: &str) -> String {
    code.lines()
        .map(|l| match l.find('#') {
            Some(idx) => l[..idx].trim_end(),
            None => l,
        })
        .filter(|l| !l.trim().is_empty())
        .map(|l| format!("{l}\n"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_prompt_includes_all_strategies() {
        let p = Prompt::state("state s { feature f = 1.0; } # demo");
        let text = p.render();
        assert!(text.contains("STATE REPRESENTATION"));
        assert!(text.contains("several alternative design ideas"));
        assert!(text.contains("properly normalized"));
        assert!(text.contains("# demo"));
    }

    #[test]
    fn arch_prompt_never_requests_normalization() {
        let p = Prompt::architecture("network n { }");
        let text = p.render();
        assert!(text.contains("ARCHITECTURE"));
        assert!(!text.contains("properly normalized"));
    }

    #[test]
    fn toggles_change_the_rendered_text() {
        let mut p = Prompt::state("state s { feature f = 1.0; } # note");
        p.options.request_normalization = false;
        assert!(!p.render().contains("properly normalized"));
        p.options.chain_of_thought = false;
        assert!(!p.render().contains("several alternative design ideas"));
        p.options.semantic_renaming = false;
        assert!(!p.render().contains("# note"));
    }

    #[test]
    fn feedback_section_renders_winners_and_rejections() {
        let p = Prompt::state("state s { feature f = 1.0; }").with_feedback(FeedbackContext {
            round: 1,
            winners: vec![FeedbackWinner {
                code: "state s_v1 { feature ema_tp = 0.5; }".into(),
                score: 0.875,
            }],
            rejected_compile: 3,
            rejected_normalization: 2,
            accepted: 5,
        });
        let text = p.render();
        assert!(text.contains("round 2 of an iterative search"));
        assert!(text.contains("3 failed to compile"));
        assert!(text.contains("2 were rejected for unnormalized features"));
        assert!(text.contains("ema_tp"));
        assert!(text.contains("0.8750"));
        // A plain prompt renders no feedback section.
        assert!(!Prompt::state("x").render().contains("iterative search"));
    }

    #[test]
    fn strip_comments_keeps_code() {
        let s = strip_comments("feature a = 1.0; # comment\n# pure comment line\n");
        assert_eq!(s, "feature a = 1.0;\n");
    }
}
