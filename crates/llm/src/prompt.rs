//! Prompt construction per the paper's §2.1 strategies.
//!
//! Three strategies are modelled, each toggleable for the prompt-ablation
//! bench:
//!
//! 1. **Chain-of-thought**: instruct the model to list several ideas in
//!    natural language, pick the most promising, then write code;
//! 2. **Semantic renaming**: present the seed code with meaningful variable
//!    names and per-input comments (our DSL seeds are already written this
//!    way; turning the flag off strips the comments);
//! 3. **Normalization request** (state prompts only): explicitly ask for
//!    properly normalized features.

use crate::client::DesignKind;

/// Which §2.1 strategies to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PromptOptions {
    /// Ask for ideas-then-code reasoning.
    pub chain_of_thought: bool,
    /// Keep semantic names + explanatory comments in the seed code.
    pub semantic_renaming: bool,
    /// Explicitly request normalized features (ignored for architecture
    /// prompts, as in the paper).
    pub request_normalization: bool,
}

impl Default for PromptOptions {
    fn default() -> Self {
        Self { chain_of_thought: true, semantic_renaming: true, request_normalization: true }
    }
}

/// A fully specified generation request.
#[derive(Debug, Clone, PartialEq)]
pub struct Prompt {
    /// Which component to redesign.
    pub kind: DesignKind,
    /// Strategy toggles.
    pub options: PromptOptions,
    /// The existing implementation (a DSL code block) the model starts from.
    pub seed_code: String,
}

impl Prompt {
    /// A state-redesign prompt with the paper's full strategy set.
    pub fn state(seed_code: impl Into<String>) -> Self {
        Self { kind: DesignKind::State, options: PromptOptions::default(), seed_code: seed_code.into() }
    }

    /// An architecture-redesign prompt with the paper's full strategy set.
    pub fn architecture(seed_code: impl Into<String>) -> Self {
        Self {
            kind: DesignKind::Architecture,
            options: PromptOptions::default(),
            seed_code: seed_code.into(),
        }
    }

    /// Renders the complete prompt text a hosted model would receive.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self.kind {
            DesignKind::State => {
                out.push_str(
                    "You are improving the reinforcement-learning STATE REPRESENTATION of an \
                     adaptive-bitrate (ABR) video streaming algorithm.\n\n",
                );
            }
            DesignKind::Architecture => {
                out.push_str(
                    "You are improving the ACTOR-CRITIC NEURAL NETWORK ARCHITECTURE of an \
                     adaptive-bitrate (ABR) video streaming algorithm.\n\n",
                );
            }
        }
        if self.options.chain_of_thought {
            out.push_str(
                "First analyze the existing code. Then propose several alternative design \
                 ideas in natural language, select the most promising one, and only then \
                 write the final code block.\n\n",
            );
        }
        out.push_str("The existing implementation is:\n\n```\n");
        if self.options.semantic_renaming {
            out.push_str(&self.seed_code);
        } else {
            out.push_str(&strip_comments(&self.seed_code));
        }
        out.push_str("```\n\n");
        if self.kind == DesignKind::State && self.options.request_normalization {
            out.push_str(
                "IMPORTANT: every feature must be properly normalized — feature values \
                 should stay within a small range (roughly [-1, 1]); never feed raw byte \
                 counts, kbps values or other large magnitudes to the network.\n\n",
            );
        }
        out.push_str("Respond with a single code block in the same language.\n");
        out
    }
}

/// Removes `#` comments (the inverse of the semantic-renaming strategy —
/// the paper notes that unannotated code yields worse generations).
fn strip_comments(code: &str) -> String {
    code.lines()
        .map(|l| match l.find('#') {
            Some(idx) => l[..idx].trim_end(),
            None => l,
        })
        .filter(|l| !l.trim().is_empty())
        .map(|l| format!("{l}\n"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_prompt_includes_all_strategies() {
        let p = Prompt::state("state s { feature f = 1.0; } # demo");
        let text = p.render();
        assert!(text.contains("STATE REPRESENTATION"));
        assert!(text.contains("several alternative design ideas"));
        assert!(text.contains("properly normalized"));
        assert!(text.contains("# demo"));
    }

    #[test]
    fn arch_prompt_never_requests_normalization() {
        let p = Prompt::architecture("network n { }");
        let text = p.render();
        assert!(text.contains("ARCHITECTURE"));
        assert!(!text.contains("properly normalized"));
    }

    #[test]
    fn toggles_change_the_rendered_text() {
        let mut p = Prompt::state("state s { feature f = 1.0; } # note");
        p.options.request_normalization = false;
        assert!(!p.render().contains("properly normalized"));
        p.options.chain_of_thought = false;
        assert!(!p.render().contains("several alternative design ideas"));
        p.options.semantic_renaming = false;
        assert!(!p.render().contains("# note"));
    }

    #[test]
    fn strip_comments_keeps_code() {
        let s = strip_comments("feature a = 1.0; # comment\n# pure comment line\n");
        assert_eq!(s, "feature a = 1.0;\n");
    }
}
