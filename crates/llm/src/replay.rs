//! Record/replay clients.
//!
//! A [`RecordingClient`] wraps any [`LlmClient`] and captures its
//! completions into a [`Transcript`]; a [`ReplayClient`] plays a transcript
//! back. This keeps the expensive/generative part swappable: transcripts
//! from a hosted GPT run can drive the whole pipeline deterministically.

use crate::client::{Completion, LlmClient};
use crate::prompt::Prompt;

/// A recorded sequence of completions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Transcript {
    entries: Vec<Completion>,
}

impl Transcript {
    /// An empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a completion.
    pub fn push(&mut self, completion: Completion) {
        self.entries.push(completion);
    }

    /// Recorded completions in order.
    pub fn entries(&self) -> &[Completion] {
        &self.entries
    }

    /// Number of recorded completions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to a plain-text interchange format (code blocks separated
    /// by `%%%%` lines; reasoning lines prefixed with `;; `).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            if let Some(r) = &e.reasoning {
                for line in r.lines() {
                    out.push_str(";; ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
            out.push_str(&e.code);
            if !e.code.ends_with('\n') {
                out.push('\n');
            }
            out.push_str("%%%%\n");
        }
        out
    }

    /// Parses the [`Transcript::to_text`] format.
    pub fn from_text(text: &str) -> Self {
        let mut entries = Vec::new();
        for block in text.split("%%%%\n") {
            if block.trim().is_empty() {
                continue;
            }
            let mut reasoning_lines = Vec::new();
            let mut code_lines = Vec::new();
            for line in block.lines() {
                if let Some(r) = line.strip_prefix(";; ") {
                    reasoning_lines.push(r.to_string());
                } else {
                    code_lines.push(line);
                }
            }
            entries.push(Completion {
                code: code_lines.join("\n") + "\n",
                reasoning: if reasoning_lines.is_empty() {
                    None
                } else {
                    Some(reasoning_lines.join("\n"))
                },
            });
        }
        Self { entries }
    }
}

/// Replays a transcript, cycling when exhausted.
#[derive(Debug, Clone)]
pub struct ReplayClient {
    name: String,
    transcript: Transcript,
    cursor: usize,
}

impl ReplayClient {
    /// Creates a replay client.
    ///
    /// # Panics
    /// Panics on an empty transcript — there is nothing to replay.
    pub fn new(name: impl Into<String>, transcript: Transcript) -> Self {
        assert!(!transcript.is_empty(), "cannot replay an empty transcript");
        Self {
            name: name.into(),
            transcript,
            cursor: 0,
        }
    }
}

impl LlmClient for ReplayClient {
    fn model_name(&self) -> &str {
        &self.name
    }

    fn generate(&mut self, _prompt: &Prompt) -> Completion {
        let c = self.transcript.entries[self.cursor % self.transcript.len()].clone();
        self.cursor += 1;
        c
    }
}

/// Wraps a client and records everything it generates.
#[derive(Debug, Clone)]
pub struct RecordingClient<C: LlmClient> {
    inner: C,
    transcript: Transcript,
}

impl<C: LlmClient> RecordingClient<C> {
    /// Starts recording around `inner`.
    pub fn new(inner: C) -> Self {
        Self {
            inner,
            transcript: Transcript::new(),
        }
    }

    /// The transcript recorded so far.
    pub fn transcript(&self) -> &Transcript {
        &self.transcript
    }

    /// Stops recording and returns the transcript.
    pub fn into_transcript(self) -> Transcript {
        self.transcript
    }
}

impl<C: LlmClient> LlmClient for RecordingClient<C> {
    fn model_name(&self) -> &str {
        self.inner.model_name()
    }

    fn generate(&mut self, prompt: &Prompt) -> Completion {
        let c = self.inner.generate(prompt);
        self.transcript.push(c.clone());
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockLlm;
    use nada_dsl::seeds::PENSIEVE_STATE_SOURCE;

    #[test]
    fn record_then_replay_round_trips() {
        let prompt = Prompt::state(PENSIEVE_STATE_SOURCE);
        let mut rec = RecordingClient::new(MockLlm::perfect(1));
        let originals: Vec<Completion> = (0..5).map(|_| rec.generate(&prompt)).collect();
        let mut replay = ReplayClient::new("replay", rec.into_transcript());
        for orig in &originals {
            assert_eq!(&replay.generate(&prompt), orig);
        }
    }

    #[test]
    fn replay_cycles_when_exhausted() {
        let mut t = Transcript::new();
        t.push(Completion {
            code: "a\n".into(),
            reasoning: None,
        });
        t.push(Completion {
            code: "b\n".into(),
            reasoning: None,
        });
        let prompt = Prompt::state("x");
        let mut r = ReplayClient::new("r", t);
        assert_eq!(r.generate(&prompt).code, "a\n");
        assert_eq!(r.generate(&prompt).code, "b\n");
        assert_eq!(r.generate(&prompt).code, "a\n");
    }

    #[test]
    fn transcript_text_round_trips() {
        let mut t = Transcript::new();
        t.push(Completion {
            code: "state s { feature f = 1.0; }\n".into(),
            reasoning: Some("idea one\nidea two".into()),
        });
        t.push(Completion {
            code: "network n { }\n".into(),
            reasoning: None,
        });
        let text = t.to_text();
        assert_eq!(Transcript::from_text(&text), t);
    }

    #[test]
    #[should_panic(expected = "empty transcript")]
    fn replay_rejects_empty() {
        let _ = ReplayClient::new("r", Transcript::new());
    }
}
