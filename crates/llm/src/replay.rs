//! Record/replay clients.
//!
//! A [`RecordingClient`] wraps any [`LlmClient`] and captures its
//! completions — prompt-fingerprinted — into a [`Cassette`]; a
//! [`ReplayClient`] plays a cassette (or a legacy in-memory
//! [`Transcript`]) back. This keeps the expensive/generative part
//! swappable: a cassette recorded against a hosted GPT endpoint drives
//! the whole pipeline deterministically offline, and the fingerprints
//! guarantee the replayed completions answer the *same prompts* the
//! original run asked.

use crate::cassette::{prompt_fingerprint, Cassette, CassetteEntry, CassetteError};
use crate::client::{Completion, LlmClient};
use crate::prompt::Prompt;
use std::path::{Path, PathBuf};

/// A recorded sequence of completions (legacy in-memory form; the durable,
/// fingerprinted form is [`Cassette`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Transcript {
    entries: Vec<Completion>,
}

impl Transcript {
    /// An empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a completion.
    pub fn push(&mut self, completion: Completion) {
        self.entries.push(completion);
    }

    /// Recorded completions in order.
    pub fn entries(&self) -> &[Completion] {
        &self.entries
    }

    /// Number of recorded completions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to a plain-text interchange format (code blocks separated
    /// by `%%%%` lines; reasoning lines prefixed with `;; `).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            if let Some(r) = &e.reasoning {
                for line in r.lines() {
                    out.push_str(";; ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
            out.push_str(&e.code);
            if !e.code.ends_with('\n') {
                out.push('\n');
            }
            out.push_str("%%%%\n");
        }
        out
    }

    /// Parses the [`Transcript::to_text`] format.
    pub fn from_text(text: &str) -> Self {
        let mut entries = Vec::new();
        for block in text.split("%%%%\n") {
            if block.trim().is_empty() {
                continue;
            }
            let mut reasoning_lines = Vec::new();
            let mut code_lines = Vec::new();
            for line in block.lines() {
                if let Some(r) = line.strip_prefix(";; ") {
                    reasoning_lines.push(r.to_string());
                } else {
                    code_lines.push(line);
                }
            }
            entries.push(Completion {
                code: code_lines.join("\n") + "\n",
                reasoning: if reasoning_lines.is_empty() {
                    None
                } else {
                    Some(reasoning_lines.join("\n"))
                },
            });
        }
        Self { entries }
    }
}

/// Replays recorded completions.
///
/// Two modes:
///
/// * **Cassette** ([`ReplayClient::from_cassette`] /
///   [`ReplayClient::from_file`]): sequential and *verified* — every
///   [`generate`](LlmClient::generate) checks the recorded prompt
///   fingerprint against the live prompt and panics with a diagnostic on
///   mismatch or exhaustion, so a cassette recorded for a different
///   workload/seed/round can never silently feed wrong completions into a
///   search.
/// * **Transcript** ([`ReplayClient::new`]): the legacy in-memory mode —
///   unverified, cycling when exhausted.
#[derive(Debug, Clone)]
pub struct ReplayClient {
    name: String,
    /// `(expected fingerprint, completion)`; fingerprints are `None` in
    /// legacy transcript mode.
    entries: Vec<(Option<u64>, Completion)>,
    cursor: usize,
    /// Cassette mode: sequential + fingerprint-checked (no cycling).
    strict: bool,
    /// Which cassette slice this client plays, for diagnostics.
    lane: String,
    round: u64,
}

impl ReplayClient {
    /// Creates a legacy transcript replay (cycling, unverified).
    ///
    /// # Panics
    /// Panics on an empty transcript — there is nothing to replay.
    pub fn new(name: impl Into<String>, transcript: Transcript) -> Self {
        assert!(!transcript.is_empty(), "cannot replay an empty transcript");
        Self {
            name: name.into(),
            entries: transcript.entries.into_iter().map(|c| (None, c)).collect(),
            cursor: 0,
            strict: false,
            lane: String::new(),
            round: 0,
        }
    }

    /// Creates a verified replay of one `(lane, round)` slice of a
    /// cassette. Errors when the cassette holds no entries for that slice
    /// (naming the slices it *does* hold).
    pub fn from_cassette(
        cassette: &Cassette,
        lane: &str,
        round: u64,
    ) -> Result<Self, CassetteError> {
        let entries: Vec<(Option<u64>, Completion)> = cassette
            .entries
            .iter()
            .filter(|e| e.lane == lane && e.round == round)
            .map(|e| {
                (
                    Some(e.fingerprint),
                    Completion {
                        code: e.code.clone(),
                        reasoning: e.reasoning.clone(),
                    },
                )
            })
            .collect();
        if entries.is_empty() {
            let lanes = cassette
                .lanes()
                .into_iter()
                .map(|(l, r)| format!("`{l}` round {r}"))
                .collect::<Vec<_>>()
                .join(", ");
            return Err(CassetteError(format!(
                "no entries for lane `{lane}` round {round} (cassette holds: {})",
                if lanes.is_empty() { "nothing" } else { &lanes }
            )));
        }
        // Per-entry provenance: merged cassettes interleave models, so
        // the slice's own recorder — not the file-level label — names
        // the replayed model.
        let name = cassette
            .entries
            .iter()
            .find(|e| e.lane == lane && e.round == round)
            .map(|e| e.model.clone())
            .unwrap_or_else(|| cassette.model.clone());
        Ok(Self {
            name,
            entries,
            cursor: 0,
            strict: true,
            lane: lane.to_string(),
            round,
        })
    }

    /// Loads a cassette file (through the process-wide parsed cache —
    /// harnesses build many clients from one file) and replays one
    /// `(lane, round)` slice.
    pub fn from_file(
        path: impl AsRef<Path>,
        lane: &str,
        round: u64,
    ) -> Result<Self, CassetteError> {
        let cassette = Cassette::load_cached(path)?;
        Self::from_cassette(cassette.as_ref(), lane, round)
    }

    /// Completions remaining before this (strict) replay is exhausted.
    pub fn remaining(&self) -> usize {
        self.entries.len().saturating_sub(self.cursor)
    }
}

impl LlmClient for ReplayClient {
    fn model_name(&self) -> &str {
        &self.name
    }

    fn generate(&mut self, prompt: &Prompt) -> Completion {
        if self.strict {
            assert!(
                self.cursor < self.entries.len(),
                "cassette exhausted: lane `{}` round {} holds {} completions but a {}th \
                 was requested — was the cassette recorded at a smaller scale or with a \
                 tighter budget?",
                self.lane,
                self.round,
                self.entries.len(),
                self.cursor + 1,
            );
            let (expected, completion) = &self.entries[self.cursor];
            let live = prompt_fingerprint(prompt);
            let expected = expected.expect("strict entries carry fingerprints");
            assert!(
                expected == live,
                "cassette prompt mismatch at lane `{}` round {} entry {}: recorded \
                 fingerprint {expected:#x}, live prompt is {live:#x} — the cassette was \
                 recorded against a different workload, seed code, prompt options or \
                 feedback context than this search is running",
                self.lane,
                self.round,
                self.cursor,
            );
            self.cursor += 1;
            return completion.clone();
        }
        let c = self.entries[self.cursor % self.entries.len()].1.clone();
        self.cursor += 1;
        c
    }
}

/// Wraps a client and records everything it generates into a [`Cassette`],
/// optionally persisting to disk.
///
/// Entries are tagged with a `(lane, round)` ([`RecordingClient::with_lane`])
/// so one cassette file can carry every search of a harness run.
/// [`RecordingClient::persist_to`] enables **merge-on-flush** persistence:
/// every flush re-reads the file and appends only this recorder's
/// not-yet-written entries, so several recorders with overlapping
/// lifetimes (a harness keeps one search's client alive while building
/// another's) never clobber each other's recordings. Flushing also runs
/// on drop, so a recording survives even when the surrounding search
/// panics.
#[derive(Debug)]
pub struct RecordingClient<C: LlmClient> {
    inner: C,
    model: String,
    /// Entries captured by *this* recorder (never entries read from disk).
    recorded: Vec<CassetteEntry>,
    lane: String,
    round: u64,
    persist: Option<PathBuf>,
    /// How many of `recorded` have already been merged into the file.
    flushed: usize,
}

impl<C: LlmClient> RecordingClient<C> {
    /// Starts recording around `inner` (lane `default`, round 0).
    pub fn new(inner: C) -> Self {
        let model = inner.model_name().to_string();
        Self {
            inner,
            model,
            recorded: Vec::new(),
            lane: "default".to_string(),
            round: 0,
            persist: None,
            flushed: 0,
        }
    }

    /// Tags subsequent entries with a lane and round (builder style).
    pub fn with_lane(mut self, lane: impl Into<String>, round: u64) -> Self {
        self.lane = lane.into();
        self.round = round;
        self
    }

    /// Persists to `path` (builder style). An existing cassette there is
    /// validated now (a corrupt target fails before any search runs); a
    /// missing one is created now (an unwritable target must fail before
    /// an expensive recorded search runs, not in the drop-time flush).
    /// Every flush *merges into* the file, so recorders with overlapping
    /// lifetimes *in one process* compose — their flushes are sequential.
    /// Two processes recording to one path are not synchronized: their
    /// load-append-save cycles can race and the last writer wins.
    pub fn persist_to(mut self, path: impl Into<PathBuf>) -> Result<Self, CassetteError> {
        let path = path.into();
        if path.exists() {
            Cassette::load(&path)?;
        } else {
            Cassette::new(self.model.clone()).save(&path)?;
        }
        self.persist = Some(path);
        Ok(self)
    }

    /// The entries captured by this recorder so far, as a cassette.
    pub fn cassette(&self) -> Cassette {
        Cassette {
            model: self.model.clone(),
            entries: self.recorded.clone(),
        }
    }

    /// Merges this recorder's unwritten entries into the persistence
    /// path, if one is set: the file is re-read (another recorder may
    /// have flushed since) and only `recorded[flushed..]` is appended.
    /// The first flush *replaces* any existing entries for this
    /// recorder's `(lane, round)` — re-running a record command (or
    /// resuming after a crash that persisted a partial slice) supersedes
    /// the stale recording instead of leaving it to replay first.
    pub fn flush(&mut self) -> Result<(), CassetteError> {
        let Some(path) = &self.persist else {
            return Ok(());
        };
        if self.flushed == self.recorded.len() {
            return Ok(());
        }
        let mut on_disk = if path.exists() {
            Cassette::load(path)?
        } else {
            Cassette::new(self.model.clone())
        };
        if self.flushed == 0 {
            on_disk
                .entries
                .retain(|e| !(e.lane == self.lane && e.round == self.round));
        }
        on_disk
            .entries
            .extend(self.recorded[self.flushed..].iter().cloned());
        on_disk.save(path)?;
        self.flushed = self.recorded.len();
        Ok(())
    }

    /// Stops recording and returns this recorder's cassette (flushing
    /// first).
    pub fn into_cassette(mut self) -> Cassette {
        let _ = self.flush();
        Cassette {
            model: self.model.clone(),
            // Emptying `recorded` (with `flushed` reset) makes the drop
            // flush a no-op, so the file is never touched twice.
            entries: {
                self.flushed = 0;
                std::mem::take(&mut self.recorded)
            },
        }
    }

    /// Appends one completion to the in-memory recording.
    fn record(&mut self, prompt: &Prompt, c: &Completion) {
        self.recorded.push(CassetteEntry {
            model: self.model.clone(),
            lane: self.lane.clone(),
            round: self.round,
            fingerprint: prompt_fingerprint(prompt),
            code: c.code.clone(),
            reasoning: c.reasoning.clone(),
        });
    }

    /// Stops recording and returns the legacy in-memory transcript form.
    pub fn into_transcript(self) -> Transcript {
        let mut t = Transcript::new();
        for e in &self.into_cassette().entries {
            t.push(Completion {
                code: e.code.clone(),
                reasoning: e.reasoning.clone(),
            });
        }
        t
    }
}

impl<C: LlmClient> Drop for RecordingClient<C> {
    fn drop(&mut self) {
        // Best-effort: a panic mid-search should still leave the completed
        // part of the recording on disk. A drop can't propagate the error,
        // but losing a paid recording silently is worse than noise on
        // stderr.
        if let Err(e) = self.flush() {
            eprintln!(
                "warning: failed to persist {} recorded completions (lane `{}` round {}): {e}",
                self.recorded.len() - self.flushed,
                self.lane,
                self.round
            );
        }
    }
}

impl<C: LlmClient> LlmClient for RecordingClient<C> {
    fn model_name(&self) -> &str {
        self.inner.model_name()
    }

    fn generate(&mut self, prompt: &Prompt) -> Completion {
        let c = self.inner.generate(prompt);
        self.record(prompt, &c);
        c
    }

    // Recording must not serialize a pooled backend: the wave fans out
    // through the inner client's own dispatch, and the completions —
    // already landed in submission-order slots — are recorded in that
    // order. A cassette recorded through a pool therefore replays in
    // exactly the order a serial recording would have produced.
    fn wave_size(&self) -> usize {
        self.inner.wave_size()
    }

    fn generate_wave(&mut self, prompt: &Prompt, count: usize) -> Vec<Completion> {
        let completions = self.inner.generate_wave(prompt, count);
        for c in &completions {
            self.record(prompt, c);
        }
        completions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockLlm;
    use nada_dsl::seeds::PENSIEVE_STATE_SOURCE;

    #[test]
    fn record_then_replay_round_trips() {
        let prompt = Prompt::state(PENSIEVE_STATE_SOURCE);
        let mut rec = RecordingClient::new(MockLlm::perfect(1));
        let originals: Vec<Completion> = (0..5).map(|_| rec.generate(&prompt)).collect();
        let mut replay = ReplayClient::new("replay", rec.into_transcript());
        for orig in &originals {
            assert_eq!(&replay.generate(&prompt), orig);
        }
    }

    #[test]
    fn record_then_replay_through_a_cassette_verifies_prompts() {
        let prompt = Prompt::state(PENSIEVE_STATE_SOURCE);
        let mut rec = RecordingClient::new(MockLlm::perfect(2)).with_lane("test-lane", 4);
        let originals: Vec<Completion> = (0..3).map(|_| rec.generate(&prompt)).collect();
        let cassette = rec.into_cassette();
        assert_eq!(cassette.model, "perfect");
        let mut replay = ReplayClient::from_cassette(&cassette, "test-lane", 4).unwrap();
        assert_eq!(replay.model_name(), "perfect");
        for orig in &originals {
            assert_eq!(&replay.generate(&prompt), orig);
        }
        assert_eq!(replay.remaining(), 0);
    }

    #[test]
    fn cassette_replay_rejects_a_different_prompt() {
        let prompt = Prompt::state(PENSIEVE_STATE_SOURCE);
        let mut rec = RecordingClient::new(MockLlm::perfect(3));
        rec.generate(&prompt);
        let cassette = rec.into_cassette();
        let mut replay = ReplayClient::from_cassette(&cassette, "default", 0).unwrap();
        let other = Prompt::state("state different { feature f = 0.5; }");
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| replay.generate(&other)))
                .expect_err("a mismatched prompt must not replay silently");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("prompt mismatch"), "{msg}");
    }

    #[test]
    fn cassette_replay_reports_exhaustion() {
        let prompt = Prompt::state(PENSIEVE_STATE_SOURCE);
        let mut rec = RecordingClient::new(MockLlm::perfect(4));
        rec.generate(&prompt);
        let cassette = rec.into_cassette();
        let mut replay = ReplayClient::from_cassette(&cassette, "default", 0).unwrap();
        replay.generate(&prompt);
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| replay.generate(&prompt)))
                .expect_err("an exhausted cassette must not cycle silently");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("exhausted"), "{msg}");
    }

    #[test]
    fn missing_lane_errors_with_the_available_slices() {
        let prompt = Prompt::state(PENSIEVE_STATE_SOURCE);
        let mut rec = RecordingClient::new(MockLlm::perfect(5)).with_lane("state/fcc", 1);
        rec.generate(&prompt);
        let cassette = rec.into_cassette();
        let err = ReplayClient::from_cassette(&cassette, "arch/fcc", 0).unwrap_err();
        assert!(err.to_string().contains("arch/fcc"), "{err}");
        assert!(err.to_string().contains("state/fcc"), "{err}");
    }

    #[test]
    fn re_recording_a_slice_replaces_the_stale_entries() {
        // Regression: flush used to blindly append, so re-running a record
        // command (or resuming after a crash that persisted a partial
        // slice) left the stale (lane, round) entries to replay *first* —
        // a fingerprint panic at best, silently wrong completions at
        // worst. The first flush of a recorder now supersedes its slice.
        let dir = std::env::temp_dir().join(format!("nada-rerecord-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rerecord.cassette");
        let prompt = Prompt::state(PENSIEVE_STATE_SOURCE);

        // First (say, crashed-partway) recording: 1 entry.
        {
            let mut rec = RecordingClient::new(MockLlm::perfect(30))
                .with_lane("run", 0)
                .persist_to(&path)
                .unwrap();
            rec.generate(&prompt);
        }
        // Other lanes on the same file must survive the re-record.
        {
            let mut rec = RecordingClient::new(MockLlm::perfect(31))
                .with_lane("other", 0)
                .persist_to(&path)
                .unwrap();
            rec.generate(&prompt);
        }
        // Re-record the `run` slice with a different stream, 3 entries,
        // across two flushes (only the *first* purges).
        let fresh: Vec<Completion> = {
            let mut rec = RecordingClient::new(MockLlm::gpt4(32))
                .with_lane("run", 0)
                .persist_to(&path)
                .unwrap();
            let a = rec.generate(&prompt);
            rec.flush().unwrap();
            let b = rec.generate(&prompt);
            let c = rec.generate(&prompt);
            vec![a, b, c]
        };

        let cassette = Cassette::load(&path).unwrap();
        assert_eq!(cassette.len(), 4, "{:?}", cassette.lanes());
        let mut replay = ReplayClient::from_cassette(&cassette, "run", 0).unwrap();
        assert_eq!(replay.remaining(), 3);
        for expected in &fresh {
            assert_eq!(&replay.generate(&prompt), expected);
        }
        assert_eq!(
            ReplayClient::from_cassette(&cassette, "other", 0)
                .unwrap()
                .remaining(),
            1
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overlapping_recorders_on_one_path_compose() {
        // Regression: persist_to used to snapshot the file at build time
        // and flush() rewrote the whole file, so a recorder that outlived
        // another (table5 keeps one search's client alive while building
        // the resolve clients) clobbered the other's entries on drop.
        let dir = std::env::temp_dir().join(format!("nada-overlap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("overlap.cassette");
        let prompt = Prompt::state(PENSIEVE_STATE_SOURCE);

        let mut outer = RecordingClient::new(MockLlm::perfect(20))
            .with_lane("outer", 0)
            .persist_to(&path)
            .unwrap();
        outer.generate(&prompt);
        {
            // Built while `outer` is alive and unflushed.
            let mut inner = RecordingClient::new(MockLlm::gpt4(21))
                .with_lane("inner", 0)
                .persist_to(&path)
                .unwrap();
            inner.generate(&prompt);
            inner.generate(&prompt);
        } // inner drops → flushes its two entries
        outer.generate(&prompt);
        drop(outer); // outer drops last → must merge, not overwrite

        let cassette = Cassette::load(&path).unwrap();
        assert_eq!(cassette.len(), 4);
        assert_eq!(
            ReplayClient::from_cassette(&cassette, "inner", 0)
                .unwrap()
                .remaining(),
            2
        );
        let outer_replay = ReplayClient::from_cassette(&cassette, "outer", 0).unwrap();
        assert_eq!(outer_replay.remaining(), 2);
        // Per-entry provenance survives the merge.
        assert_eq!(outer_replay.model_name(), "perfect");
        assert_eq!(
            ReplayClient::from_cassette(&cassette, "inner", 0)
                .unwrap()
                .model_name(),
            "gpt-4"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persisted_recordings_append_across_clients() {
        let dir = std::env::temp_dir().join(format!("nada-rec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("multi.cassette");
        let prompt = Prompt::state(PENSIEVE_STATE_SOURCE);

        // Round 0 records and flushes on drop.
        {
            let mut rec = RecordingClient::new(MockLlm::perfect(6))
                .with_lane("iterate", 0)
                .persist_to(&path)
                .unwrap();
            rec.generate(&prompt);
        }
        // Round 1 appends to the same file.
        {
            let mut rec = RecordingClient::new(MockLlm::perfect(7))
                .with_lane("iterate", 1)
                .persist_to(&path)
                .unwrap();
            rec.generate(&prompt);
            rec.generate(&prompt);
        }
        let cassette = Cassette::load(&path).unwrap();
        assert_eq!(cassette.len(), 3);
        assert_eq!(
            cassette.lanes(),
            vec![("iterate".to_string(), 0), ("iterate".to_string(), 1)]
        );
        assert_eq!(
            ReplayClient::from_cassette(&cassette, "iterate", 1)
                .unwrap()
                .remaining(),
            2
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_cycles_when_exhausted() {
        let mut t = Transcript::new();
        t.push(Completion {
            code: "a\n".into(),
            reasoning: None,
        });
        t.push(Completion {
            code: "b\n".into(),
            reasoning: None,
        });
        let prompt = Prompt::state("x");
        let mut r = ReplayClient::new("r", t);
        assert_eq!(r.generate(&prompt).code, "a\n");
        assert_eq!(r.generate(&prompt).code, "b\n");
        assert_eq!(r.generate(&prompt).code, "a\n");
    }

    #[test]
    fn transcript_text_round_trips() {
        let mut t = Transcript::new();
        t.push(Completion {
            code: "state s { feature f = 1.0; }\n".into(),
            reasoning: Some("idea one\nidea two".into()),
        });
        t.push(Completion {
            code: "network n { }\n".into(),
            reasoning: None,
        });
        let text = t.to_text();
        assert_eq!(Transcript::from_text(&text), t);
    }

    #[test]
    #[should_panic(expected = "empty transcript")]
    fn replay_rejects_empty() {
        let _ = ReplayClient::new("r", Transcript::new());
    }
}
