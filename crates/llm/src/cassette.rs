//! On-disk cassettes: the durable form of a recorded LLM exchange.
//!
//! A [`Cassette`] promotes the in-memory [`crate::replay::Transcript`] to
//! a persistent, *verifiable* format: every entry carries
//!
//! * a **lane** — which search within a harness run produced it (e.g.
//!   `state/fcc/gpt-4`), so one cassette file can serve a whole
//!   multi-search harness;
//! * a **round** — the feedback-loop round index, so multi-round drivers
//!   that build one client per round replay the right slice;
//! * a **prompt fingerprint** — an FNV-1a hash of the exact prompt text
//!   the completion answered, so replaying against a different workload,
//!   seed code or feedback context fails loudly instead of silently
//!   feeding the wrong completion into a search.
//!
//! Cassettes serialize through the workspace serde shim's text codec —
//! the same bit-exact format session snapshots use — via `encode`/
//! `decode`, and `save` writes with the write-then-rename discipline so a
//! crash mid-save never corrupts a previous recording.

use crate::client::DesignKind;
use crate::prompt::Prompt;
use serde::value::{Error as CodecError, Value};
use std::fmt;
use std::path::Path;

/// Cassette format version; bumped on layout changes.
pub const CASSETTE_VERSION: u64 = 1;

/// FNV-1a fingerprint of everything that shapes a generation request: the
/// design kind and the fully rendered prompt text (which folds in the
/// workload schema, strategy toggles, seed code and any feedback section).
pub fn prompt_fingerprint(prompt: &Prompt) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        // Length-delimit segments so ("ab","c") and ("a","bc") differ.
        h ^= 0xFF;
        h = h.wrapping_mul(PRIME);
    };
    let kind = match prompt.kind {
        DesignKind::State => "state",
        DesignKind::Architecture => "architecture",
    };
    eat(kind.as_bytes());
    eat(prompt.render().as_bytes());
    h
}

/// One recorded completion with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct CassetteEntry {
    /// The model that produced this entry (cassette files can interleave
    /// lanes from different models, e.g. table2's gpt-3.5 + gpt-4 pools).
    pub model: String,
    /// Which search produced it (harness-chosen label).
    pub lane: String,
    /// Feedback-loop round index (0 for one-shot searches).
    pub round: u64,
    /// [`prompt_fingerprint`] of the prompt this completion answered.
    pub fingerprint: u64,
    /// The generated code block.
    pub code: String,
    /// Chain-of-thought text, when the model produced any.
    pub reasoning: Option<String>,
}

/// A recorded sequence of completions, serializable to disk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Cassette {
    /// Display-level model label (the first recorder that created the
    /// file). Authoritative per-completion provenance is
    /// [`CassetteEntry::model`] — merged files interleave models.
    pub model: String,
    /// Entries in generation order.
    pub entries: Vec<CassetteEntry>,
}

/// Why a cassette could not be decoded or used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CassetteError(pub String);

impl fmt::Display for CassetteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cassette error: {}", self.0)
    }
}

impl std::error::Error for CassetteError {}

impl Cassette {
    /// An empty cassette for `model`.
    pub fn new(model: impl Into<String>) -> Self {
        Self {
            model: model.into(),
            entries: Vec::new(),
        }
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: CassetteEntry) {
        self.entries.push(entry);
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The distinct `(lane, round)` pairs present, first-appearance order
    /// (used by error messages to say what a cassette *does* contain).
    pub fn lanes(&self) -> Vec<(String, u64)> {
        let mut lanes: Vec<(String, u64)> = Vec::new();
        for e in &self.entries {
            if !lanes.iter().any(|(l, r)| *l == e.lane && *r == e.round) {
                lanes.push((e.lane.clone(), e.round));
            }
        }
        lanes
    }

    /// Serializes to the serde-shim text form.
    pub fn encode(&self) -> String {
        serde::text::to_string(self)
    }

    /// Parses a cassette back from its text form.
    pub fn decode(s: &str) -> Result<Self, CassetteError> {
        serde::text::from_str(s).map_err(|e| CassetteError(e.to_string()))
    }

    /// Reads and decodes a cassette file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CassetteError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| CassetteError(format!("read {}: {e}", path.display())))?;
        Self::decode(&text)
    }

    /// Writes the cassette with write-then-rename, so a crash mid-write
    /// never corrupts an existing recording.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CassetteError> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.encode())
            .map_err(|e| CassetteError(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| CassetteError(format!("rename to {}: {e}", path.display())))?;
        Ok(())
    }

    /// [`Cassette::load`] through a process-wide parsed cache, keyed by
    /// path and invalidated on size/mtime change. Harnesses build one
    /// replay client per search (and multi-round drivers one per round)
    /// from the same file — decoding a paper-scale cassette once instead
    /// of once per client matters.
    pub fn load_cached(path: impl AsRef<Path>) -> Result<std::sync::Arc<Self>, CassetteError> {
        use std::sync::{Arc, Mutex, OnceLock};
        type Key = (std::path::PathBuf, u64, std::time::SystemTime);
        type Slot = (Key, Arc<Cassette>);
        static CACHE: OnceLock<Mutex<Vec<Slot>>> = OnceLock::new();

        let path = path.as_ref();
        let meta = std::fs::metadata(path)
            .map_err(|e| CassetteError(format!("read {}: {e}", path.display())))?;
        let stamp = meta
            .modified()
            .map_err(|e| CassetteError(format!("mtime {}: {e}", path.display())))?;
        let key: Key = (path.to_path_buf(), meta.len(), stamp);

        let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
        {
            let cache = cache.lock().expect("cassette cache lock");
            if let Some((_, cassette)) = cache.iter().find(|(k, _)| *k == key) {
                return Ok(Arc::clone(cassette));
            }
        }
        let loaded = Arc::new(Self::load(path)?);
        let mut cache = cache.lock().expect("cassette cache lock");
        // Drop stale generations of this path; keep other paths.
        cache.retain(|((p, _, _), _)| p != path);
        cache.push((key, Arc::clone(&loaded)));
        Ok(loaded)
    }
}

// ---- serde impls (hand-written against the shim, like nada-core's) ---------

impl serde::Serialize for CassetteEntry {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("model".into(), self.model.to_value()),
            ("lane".into(), self.lane.to_value()),
            ("round".into(), self.round.to_value()),
            ("fingerprint".into(), self.fingerprint.to_value()),
            ("code".into(), self.code.to_value()),
            ("reasoning".into(), self.reasoning.to_value()),
        ])
    }
}

impl serde::Deserialize for CassetteEntry {
    fn from_value(v: &Value) -> Result<Self, CodecError> {
        Ok(Self {
            model: String::from_value(v.field("model")?)?,
            lane: String::from_value(v.field("lane")?)?,
            round: u64::from_value(v.field("round")?)?,
            fingerprint: u64::from_value(v.field("fingerprint")?)?,
            code: String::from_value(v.field("code")?)?,
            reasoning: Option::from_value(v.field("reasoning")?)?,
        })
    }
}

impl serde::Serialize for Cassette {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("version".into(), CASSETTE_VERSION.to_value()),
            ("model".into(), self.model.to_value()),
            ("entries".into(), self.entries.to_value()),
        ])
    }
}

impl serde::Deserialize for Cassette {
    fn from_value(v: &Value) -> Result<Self, CodecError> {
        let version = u64::from_value(v.field("version")?)?;
        if version != CASSETTE_VERSION {
            return Err(CodecError::new(format!(
                "cassette version {version} unsupported (expected {CASSETTE_VERSION})"
            )));
        }
        Ok(Self {
            model: String::from_value(v.field("model")?)?,
            entries: Vec::from_value(v.field("entries")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Cassette {
        let mut c = Cassette::new("gpt-4");
        c.push(CassetteEntry {
            model: "gpt-4".into(),
            lane: "state/fcc/gpt-4".into(),
            round: 0,
            fingerprint: 0xDEAD_BEEF,
            code: "state s {\n  feature f = ema(x, 0.5); // \"quoted\"\n}\n".into(),
            reasoning: Some("idea one\nidea two".into()),
        });
        c.push(CassetteEntry {
            model: "gpt-4".into(),
            lane: "arch/fcc/gpt-4".into(),
            round: 3,
            fingerprint: u64::MAX,
            code: "network n { }\n".into(),
            reasoning: None,
        });
        c
    }

    #[test]
    fn encode_decode_round_trips() {
        let c = sample();
        assert_eq!(Cassette::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("nada-cassette-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.cassette");
        let c = sample();
        c.save(&path).unwrap();
        assert_eq!(Cassette::load(&path).unwrap(), c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_or_versioned_out_cassettes_are_rejected() {
        let text = sample().encode();
        assert!(Cassette::decode(&text[..text.len() / 2]).is_err());
        assert!(Cassette::decode("{}").is_err());
        let bumped = text.replacen("version=u1", "version=u999", 1);
        assert!(Cassette::decode(&bumped).is_err());
    }

    #[test]
    fn fingerprints_distinguish_prompts() {
        let a = prompt_fingerprint(&Prompt::state("state s { feature f = 1.0; }"));
        let b = prompt_fingerprint(&Prompt::state("state s { feature f = 2.0; }"));
        let c = prompt_fingerprint(&Prompt::architecture("state s { feature f = 1.0; }"));
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Same prompt, same fingerprint — replay depends on it.
        assert_eq!(
            a,
            prompt_fingerprint(&Prompt::state("state s { feature f = 1.0; }"))
        );
    }

    #[test]
    fn lanes_lists_distinct_pairs_in_order() {
        let c = sample();
        assert_eq!(
            c.lanes(),
            vec![
                ("state/fcc/gpt-4".to_string(), 0),
                ("arch/fcc/gpt-4".to_string(), 3)
            ]
        );
    }
}
