//! The provider-agnostic LLM interface.

use crate::prompt::Prompt;

/// Which of Pensieve's two components a design targets (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DesignKind {
    /// RL state representation code block.
    State,
    /// Actor-critic neural-network architecture code block.
    Architecture,
}

impl DesignKind {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            DesignKind::State => "state",
            DesignKind::Architecture => "architecture",
        }
    }
}

/// One model response.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The generated code block (DSL source).
    pub code: String,
    /// Free-text "reasoning" preceding the code (present when the prompt
    /// requested chain-of-thought; mirrors the paper's CoT strategy of
    /// generating ideas in natural language before code).
    pub reasoning: Option<String>,
}

/// A source of design code blocks. Implemented by [`crate::mock::MockLlm`]
/// and [`crate::replay::ReplayClient`]; a production HTTP client would
/// implement the same trait.
pub trait LlmClient {
    /// The model identifier (e.g. `"gpt-3.5"`), used in reports.
    fn model_name(&self) -> &str;

    /// Generates one design for the given prompt.
    fn generate(&mut self, prompt: &Prompt) -> Completion;

    /// Generates a batch of `n` designs (candidate pools in the paper are
    /// 3 000 designs per model).
    fn generate_batch(&mut self, prompt: &Prompt, n: usize) -> Vec<Completion> {
        self.generate_batch_while(prompt, n, &mut |_| true)
    }

    /// Budget hook: generates up to `n` designs, consulting `more` with the
    /// count generated so far before each call and stopping early the first
    /// time it returns `false`.
    ///
    /// Search budgets use this to cap the pool *at the source* — for a
    /// metered HTTP client, candidates beyond the budget are never
    /// requested, not generated and discarded.
    fn generate_batch_while(
        &mut self,
        prompt: &Prompt,
        n: usize,
        more: &mut dyn FnMut(usize) -> bool,
    ) -> Vec<Completion> {
        let mut out = Vec::with_capacity(n);
        for made in 0..n {
            if !more(made) {
                break;
            }
            out.push(self.generate(prompt));
        }
        out
    }
}

// Boxed clients are clients too, so registries can compose wrappers
// (e.g. a recorder) around dynamically-selected backends.
impl LlmClient for Box<dyn LlmClient + '_> {
    fn model_name(&self) -> &str {
        (**self).model_name()
    }

    fn generate(&mut self, prompt: &Prompt) -> Completion {
        (**self).generate(prompt)
    }

    fn generate_batch_while(
        &mut self,
        prompt: &Prompt,
        n: usize,
        more: &mut dyn FnMut(usize) -> bool,
    ) -> Vec<Completion> {
        (**self).generate_batch_while(prompt, n, more)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_kind_names() {
        assert_eq!(DesignKind::State.name(), "state");
        assert_eq!(DesignKind::Architecture.name(), "architecture");
    }

    /// Counts generate calls so the budget-hook contract is testable
    /// without a mock model.
    struct Counting(usize);

    impl LlmClient for Counting {
        fn model_name(&self) -> &str {
            "counting"
        }

        fn generate(&mut self, _prompt: &Prompt) -> Completion {
            self.0 += 1;
            Completion {
                code: format!("design {}", self.0),
                reasoning: None,
            }
        }
    }

    #[test]
    fn batch_generation_honors_the_budget_hook() {
        let prompt = Prompt::state("seed");
        let mut llm = Counting(0);
        let full = llm.generate_batch(&prompt, 5);
        assert_eq!(full.len(), 5);
        assert_eq!(llm.0, 5);

        let mut llm = Counting(0);
        let capped = llm.generate_batch_while(&prompt, 5, &mut |made| made < 2);
        assert_eq!(capped.len(), 2);
        // Candidates beyond the budget were never requested.
        assert_eq!(llm.0, 2);
    }
}
