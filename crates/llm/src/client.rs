//! The provider-agnostic LLM interface.

use crate::prompt::Prompt;

/// Which of Pensieve's two components a design targets (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DesignKind {
    /// RL state representation code block.
    State,
    /// Actor-critic neural-network architecture code block.
    Architecture,
}

impl DesignKind {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            DesignKind::State => "state",
            DesignKind::Architecture => "architecture",
        }
    }
}

/// One model response.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The generated code block (DSL source).
    pub code: String,
    /// Free-text "reasoning" preceding the code (present when the prompt
    /// requested chain-of-thought; mirrors the paper's CoT strategy of
    /// generating ideas in natural language before code).
    pub reasoning: Option<String>,
}

/// A source of design code blocks. Implemented by [`crate::mock::MockLlm`]
/// and [`crate::replay::ReplayClient`]; a production HTTP client would
/// implement the same trait.
pub trait LlmClient {
    /// The model identifier (e.g. `"gpt-3.5"`), used in reports.
    fn model_name(&self) -> &str;

    /// Generates one design for the given prompt.
    fn generate(&mut self, prompt: &Prompt) -> Completion;

    /// Generates a batch of `n` designs (candidate pools in the paper are
    /// 3 000 designs per model).
    fn generate_batch(&mut self, prompt: &Prompt, n: usize) -> Vec<Completion> {
        (0..n).map(|_| self.generate(prompt)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_kind_names() {
        assert_eq!(DesignKind::State.name(), "state");
        assert_eq!(DesignKind::Architecture.name(), "architecture");
    }
}
