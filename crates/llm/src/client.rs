//! The provider-agnostic LLM interface.

use crate::prompt::Prompt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Which of Pensieve's two components a design targets (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DesignKind {
    /// RL state representation code block.
    State,
    /// Actor-critic neural-network architecture code block.
    Architecture,
}

impl DesignKind {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            DesignKind::State => "state",
            DesignKind::Architecture => "architecture",
        }
    }
}

/// One model response.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The generated code block (DSL source).
    pub code: String,
    /// Free-text "reasoning" preceding the code (present when the prompt
    /// requested chain-of-thought; mirrors the paper's CoT strategy of
    /// generating ideas in natural language before code).
    pub reasoning: Option<String>,
}

/// Prompt/completion token counts, as reported by a metered backend's
/// `usage` field. Offline backends (mock, replay) report zero — their
/// completions cost nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TokenUsage {
    /// Tokens the backend billed for the prompt.
    pub prompt_tokens: u64,
    /// Tokens the backend billed for the completion.
    pub completion_tokens: u64,
}

impl TokenUsage {
    /// Total billed tokens.
    pub fn total(&self) -> u64 {
        self.prompt_tokens + self.completion_tokens
    }

    /// Element-wise sum.
    pub fn add(&mut self, other: TokenUsage) {
        self.prompt_tokens += other.prompt_tokens;
        self.completion_tokens += other.completion_tokens;
    }
}

/// A monotone, thread-safe accumulator of [`TokenUsage`]. Metered
/// backends (`nada-llm-http`'s clients) record every response's `usage`
/// into the [process-wide meter](global_token_meter); budget enforcement
/// (`Budget::tokens_exhausted` in `nada-core`) reads snapshot deltas, so
/// token caps stop generation *at the wire* — waves beyond the cap are
/// never dispatched.
#[derive(Debug, Default)]
pub struct TokenMeter {
    prompt: AtomicU64,
    completion: AtomicU64,
}

impl TokenMeter {
    /// A fresh meter at zero (tests; production uses the global one).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one response's reported usage.
    pub fn record(&self, usage: TokenUsage) {
        self.prompt
            .fetch_add(usage.prompt_tokens, Ordering::Relaxed);
        self.completion
            .fetch_add(usage.completion_tokens, Ordering::Relaxed);
    }

    /// The cumulative usage recorded so far.
    pub fn snapshot(&self) -> TokenUsage {
        TokenUsage {
            prompt_tokens: self.prompt.load(Ordering::Relaxed),
            completion_tokens: self.completion.load(Ordering::Relaxed),
        }
    }
}

/// The process-wide token meter every metered backend records into.
/// Per-search budgets read deltas against a snapshot taken when their
/// generation stage starts; with several searches sharing one process
/// (daemon lanes) the delta is conservative — shared spend counts against
/// every lane's cap, which is the right bias for one shared backend.
pub fn global_token_meter() -> &'static TokenMeter {
    static METER: OnceLock<TokenMeter> = OnceLock::new();
    METER.get_or_init(TokenMeter::new)
}

/// A source of design code blocks. Implemented by [`crate::mock::MockLlm`]
/// and [`crate::replay::ReplayClient`]; a production HTTP client would
/// implement the same trait.
pub trait LlmClient {
    /// The model identifier (e.g. `"gpt-3.5"`), used in reports.
    fn model_name(&self) -> &str;

    /// Generates one design for the given prompt.
    fn generate(&mut self, prompt: &Prompt) -> Completion;

    /// How many completions this client can have in flight at once — the
    /// wave width [`LlmClient::generate_batch_while`] dispatches at.
    /// Sequential backends (mock, replay, plain HTTP) report 1, which
    /// makes the wave loop bit-identical to the historical one-at-a-time
    /// path; a pooled backend reports its connection count.
    fn wave_size(&self) -> usize {
        1
    }

    /// Generates one wave of `count` designs for the same prompt,
    /// returning them in submission order (slot `i` of the result is the
    /// `i`-th requested completion, regardless of which connection served
    /// it or when it finished). The default runs sequentially; pooled
    /// backends override it to fan the wave across live connections.
    fn generate_wave(&mut self, prompt: &Prompt, count: usize) -> Vec<Completion> {
        (0..count).map(|_| self.generate(prompt)).collect()
    }

    /// Generates a batch of `n` designs (candidate pools in the paper are
    /// 3 000 designs per model).
    fn generate_batch(&mut self, prompt: &Prompt, n: usize) -> Vec<Completion> {
        self.generate_batch_while(prompt, n, &mut |_| true)
    }

    /// Budget hook: generates up to `n` designs in waves of
    /// [`LlmClient::wave_size`], consulting `more` with the count
    /// generated so far before each wave and stopping the first time it
    /// returns `false`.
    ///
    /// Search budgets use this to cap the pool *at the source* — for a
    /// metered HTTP client, candidates beyond the budget are never
    /// requested, not generated and discarded. The cap is enforced at
    /// wave granularity: a wave is only issued while `more` still holds,
    /// and every completion of an issued wave is kept — paid completions
    /// are never discarded. With `wave_size() == 1` (every sequential
    /// backend) this is exactly the historical per-completion check.
    fn generate_batch_while(
        &mut self,
        prompt: &Prompt,
        n: usize,
        more: &mut dyn FnMut(usize) -> bool,
    ) -> Vec<Completion> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            if !more(out.len()) {
                break;
            }
            let wave = self.wave_size().max(1).min(n - out.len());
            let completions = self.generate_wave(prompt, wave);
            let got = completions.len();
            out.extend(completions);
            if got < wave {
                break; // a short wave means the backend has nothing more
            }
        }
        out
    }
}

// Boxed clients are clients too, so registries can compose wrappers
// (e.g. a recorder) around dynamically-selected backends. Every method
// forwards — wave_size/generate_wave in particular, so a boxed pooled
// client keeps its concurrency instead of degrading to the serial
// defaults.
impl LlmClient for Box<dyn LlmClient + '_> {
    fn model_name(&self) -> &str {
        (**self).model_name()
    }

    fn generate(&mut self, prompt: &Prompt) -> Completion {
        (**self).generate(prompt)
    }

    fn wave_size(&self) -> usize {
        (**self).wave_size()
    }

    fn generate_wave(&mut self, prompt: &Prompt, count: usize) -> Vec<Completion> {
        (**self).generate_wave(prompt, count)
    }

    fn generate_batch_while(
        &mut self,
        prompt: &Prompt,
        n: usize,
        more: &mut dyn FnMut(usize) -> bool,
    ) -> Vec<Completion> {
        (**self).generate_batch_while(prompt, n, more)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_kind_names() {
        assert_eq!(DesignKind::State.name(), "state");
        assert_eq!(DesignKind::Architecture.name(), "architecture");
    }

    /// Counts generate calls so the budget-hook contract is testable
    /// without a mock model.
    struct Counting(usize);

    impl LlmClient for Counting {
        fn model_name(&self) -> &str {
            "counting"
        }

        fn generate(&mut self, _prompt: &Prompt) -> Completion {
            self.0 += 1;
            Completion {
                code: format!("design {}", self.0),
                reasoning: None,
            }
        }
    }

    #[test]
    fn batch_generation_honors_the_budget_hook() {
        let prompt = Prompt::state("seed");
        let mut llm = Counting(0);
        let full = llm.generate_batch(&prompt, 5);
        assert_eq!(full.len(), 5);
        assert_eq!(llm.0, 5);

        let mut llm = Counting(0);
        let capped = llm.generate_batch_while(&prompt, 5, &mut |made| made < 2);
        assert_eq!(capped.len(), 2);
        // Candidates beyond the budget were never requested.
        assert_eq!(llm.0, 2);
    }

    #[test]
    fn serial_clients_consult_the_hook_before_every_completion() {
        // With wave_size() == 1 the wave loop is the historical path:
        // `more(made)` observed for every made in 0..n, in order.
        let prompt = Prompt::state("seed");
        let mut llm = Counting(0);
        let mut observed = Vec::new();
        let out = llm.generate_batch_while(&prompt, 4, &mut |made| {
            observed.push(made);
            true
        });
        assert_eq!(out.len(), 4);
        assert_eq!(observed, vec![0, 1, 2, 3]);
    }

    /// A client that pretends to hold `conns` connections: waves arrive
    /// whole, so hook consultations happen only at wave boundaries.
    struct Waved {
        conns: usize,
        generated: usize,
    }

    impl LlmClient for Waved {
        fn model_name(&self) -> &str {
            "waved"
        }

        fn generate(&mut self, _prompt: &Prompt) -> Completion {
            self.generated += 1;
            Completion {
                code: format!("design {}\n", self.generated),
                reasoning: None,
            }
        }

        fn wave_size(&self) -> usize {
            self.conns
        }
    }

    #[test]
    fn pooled_clients_cap_at_wave_granularity_without_discarding() {
        let prompt = Prompt::state("seed");
        let mut llm = Waved {
            conns: 3,
            generated: 0,
        };
        let mut observed = Vec::new();
        // Budget says stop at 4 — but the hook is consulted per wave, so
        // the wave of 3 that crosses the cap completes and every paid
        // completion is kept: 3 + 3 = 6, checks at made = 0 and 3 only.
        let out = llm.generate_batch_while(&prompt, 9, &mut |made| {
            observed.push(made);
            made < 4
        });
        assert_eq!(observed, vec![0, 3, 6]);
        assert_eq!(out.len(), 6);
        assert_eq!(llm.generated, 6, "no generated completion was dropped");
    }

    #[test]
    fn final_partial_wave_is_clamped_to_the_batch_size() {
        let prompt = Prompt::state("seed");
        let mut llm = Waved {
            conns: 4,
            generated: 0,
        };
        let out = llm.generate_batch(&prompt, 6);
        assert_eq!(out.len(), 6);
        // 4 + 2, never 4 + 4: the trailing wave shrinks to what is owed.
        assert_eq!(llm.generated, 6);
    }

    #[test]
    fn token_meter_accumulates_and_snapshots() {
        let meter = TokenMeter::new();
        assert_eq!(meter.snapshot(), TokenUsage::default());
        meter.record(TokenUsage {
            prompt_tokens: 10,
            completion_tokens: 25,
        });
        meter.record(TokenUsage {
            prompt_tokens: 5,
            completion_tokens: 1,
        });
        let snap = meter.snapshot();
        assert_eq!(snap.prompt_tokens, 15);
        assert_eq!(snap.completion_tokens, 26);
        assert_eq!(snap.total(), 41);
        let mut sum = TokenUsage::default();
        sum.add(snap);
        sum.add(snap);
        assert_eq!(sum.total(), 82);
    }

    #[test]
    fn boxed_clients_forward_wave_methods() {
        let prompt = Prompt::state("seed");
        let mut boxed: Box<dyn LlmClient> = Box::new(Waved {
            conns: 3,
            generated: 0,
        });
        assert_eq!(boxed.wave_size(), 3);
        assert_eq!(boxed.generate_wave(&prompt, 2).len(), 2);
    }
}
