//! State-design mutation engine, workload-agnostic.
//!
//! Mutations are the motif families §4 of the paper attributes to the LLMs:
//!
//! * normalization changes — rescaling, remapping to `[-1, 1]` (FCC),
//!   stronger normalizing factors (Starlink/GPT-4);
//! * feature removal to fight overfitting on small datasets
//!   (Starlink/GPT-3.5);
//! * smoothing — EMA, Savitzky–Golay (the paper's `scipy` example);
//! * explicit trend/prediction features via linear regression (the paper's
//!   `statsmodel` example; 4G/5G motifs);
//! * auxiliary-history features — trends and adjacent-step differences over
//!   signals the original design ignores (buffer history for ABR, loss
//!   history for CC — the paper's headline insight).
//!
//! The engine is driven entirely by the prompt's [`InputSchema`]: history
//! motifs target the schema's vector inputs by **role** (primary signal,
//! secondary signal, auxiliary history = the first three vector inputs, in
//! declaration order) and normalize by each input's declared realistic
//! maximum, so the same motif families generate valid designs for any
//! workload that declares its fields.

use nada_dsl::ast::{BinOp, Expr, FeatureDecl, InputDecl, StateProgram};
use nada_dsl::parser::parse_state;
use nada_dsl::pretty::print_state;
use nada_dsl::{compile_state_with_schema, InputSchema};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng};

/// Applies `n_mutations` random motif mutations (plus an optional
/// normalization defect) to the seed code block, mutating against `schema`.
/// Returns the new source and human-readable descriptions of the applied
/// mutations.
pub fn generate(
    rng: &mut StdRng,
    seed_code: &str,
    n_mutations: usize,
    denormalize: bool,
    schema: &InputSchema,
) -> (String, Vec<String>) {
    generate_biased(rng, seed_code, n_mutations, denormalize, schema, &[])
}

/// Like [`generate`], but biases motif selection toward the motif families
/// referenced by `winner_codes` (fed-back designs from earlier search
/// rounds). With no winners the RNG stream is identical to [`generate`]'s,
/// so one-shot searches are unaffected.
pub fn generate_biased(
    rng: &mut StdRng,
    seed_code: &str,
    n_mutations: usize,
    denormalize: bool,
    schema: &InputSchema,
    winner_codes: &[&str],
) -> (String, Vec<String>) {
    let hinted = referenced_motifs(winner_codes);
    let Ok(mut program) = parse_state(seed_code) else {
        // An unparseable seed cannot be mutated; echo it back (the pipeline
        // will reject it downstream).
        return (
            seed_code.to_string(),
            vec!["echoed unparseable seed".into()],
        );
    };
    program.name = format!("{}_v{}", program.name, rng.gen_range(1000..10_000));
    let vocab = Vocab::from_schema(schema);

    let mut applied = Vec::new();
    let mut attempts = 0;
    while applied.len() < n_mutations && attempts < n_mutations * 12 {
        attempts += 1;
        // Winner motifs are favored half the time (the mock's stand-in for
        // a real model imitating the fed-back designs); the other half
        // keeps exploring the whole vocabulary.
        let motif = if !hinted.is_empty() && rng.gen_bool(0.5) {
            *hinted.choose(rng).expect("checked non-empty")
        } else {
            *ALL_MOTIFS.choose(rng).expect("motif list is non-empty")
        };
        if let Some(desc) = apply_motif(rng, &mut program, motif, &vocab) {
            applied.push(desc);
        }
    }
    if denormalize {
        applied.push(apply_denormalize(rng, &mut program, &vocab));
    }
    (print_state(&program), applied)
}

/// The motif vocabulary derived from a schema: which inputs play which
/// roles, and what divisor keeps a derived feature within the `T = 100`
/// check.
struct Vocab<'s> {
    schema: &'s InputSchema,
    /// `(name, realistic max)` for every vector input, in schema order.
    vecs: Vec<(&'static str, f64)>,
    /// Inputs whose raw magnitudes unambiguously fail the normalization
    /// check (realistic max far above the threshold).
    raw: Vec<&'static str>,
}

impl<'s> Vocab<'s> {
    fn from_schema(schema: &'s InputSchema) -> Self {
        let vecs: Vec<(&'static str, f64)> = schema
            .specs()
            .iter()
            .filter(|s| matches!(s.ty, nada_dsl::InputType::Vec(_)))
            .map(|s| (s.name, s.fuzz_hi.max(1.0)))
            .collect();
        let raw = schema
            .specs()
            .iter()
            .filter(|s| s.fuzz_hi >= 1000.0)
            .map(|s| s.name)
            .collect();
        assert!(
            !vecs.is_empty(),
            "schemas must offer at least one history input"
        );
        Self { schema, vecs, raw }
    }

    /// The main signal history (throughput, for both shipped workloads).
    fn primary(&self) -> (&'static str, f64) {
        self.vecs[0]
    }

    /// The secondary signal history (download time / RTT).
    fn secondary(&self) -> (&'static str, f64) {
        *self.vecs.get(1).unwrap_or(&self.vecs[0])
    }

    /// The auxiliary history the original design tends to ignore (buffer
    /// history / loss history).
    fn aux(&self) -> (&'static str, f64) {
        *self
            .vecs
            .get(2)
            .unwrap_or(self.vecs.last().expect("non-empty"))
    }
}

/// The motif families, named by the role of the input they elaborate.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Motif {
    Rescale,
    RemapSymmetric,
    Clip01,
    StrongerNorm,
    RemoveFeature,
    PrimaryEma,
    PrimarySavgol,
    PrimaryZscore,
    PrimaryStd,
    PrimaryTrend,
    PrimaryPredict,
    PrimaryHarmonicMean,
    PrimaryMin,
    PrimaryMax,
    AuxTrend,
    AuxDiff,
    AuxSavgol,
    SecondaryPredict,
    SecondaryTrend,
}

const ALL_MOTIFS: [Motif; 19] = [
    Motif::Rescale,
    Motif::RemapSymmetric,
    Motif::Clip01,
    Motif::StrongerNorm,
    Motif::RemoveFeature,
    Motif::PrimaryEma,
    Motif::PrimarySavgol,
    Motif::PrimaryZscore,
    Motif::PrimaryStd,
    Motif::PrimaryTrend,
    Motif::PrimaryPredict,
    Motif::PrimaryHarmonicMean,
    Motif::PrimaryMin,
    Motif::PrimaryMax,
    Motif::AuxTrend,
    Motif::AuxDiff,
    Motif::AuxSavgol,
    Motif::SecondaryPredict,
    Motif::SecondaryTrend,
];

/// Soft cap keeping generated states from growing without bound.
const MAX_FEATURES: usize = 12;

/// Which motif families a set of design sources references, detected by
/// the stdlib calls each family emits. Drives feedback biasing: motifs
/// that showed up in winning designs are sampled more often next round.
fn referenced_motifs(codes: &[&str]) -> Vec<Motif> {
    const MARKERS: [(&str, &[Motif]); 12] = [
        ("ema(", &[Motif::PrimaryEma]),
        ("savgol(", &[Motif::PrimarySavgol, Motif::AuxSavgol]),
        ("zscore(", &[Motif::PrimaryZscore]),
        ("std(", &[Motif::PrimaryStd]),
        (
            "trend(",
            &[Motif::PrimaryTrend, Motif::AuxTrend, Motif::SecondaryTrend],
        ),
        (
            "predict_next(",
            &[Motif::PrimaryPredict, Motif::SecondaryPredict],
        ),
        ("harmonic_mean(", &[Motif::PrimaryHarmonicMean]),
        ("diff(", &[Motif::AuxDiff]),
        ("min(", &[Motif::PrimaryMin]),
        ("max(", &[Motif::PrimaryMax]),
        ("remap(", &[Motif::RemapSymmetric]),
        ("clip(", &[Motif::Clip01]),
    ];
    let mut out = Vec::new();
    for (marker, motifs) in MARKERS {
        if codes.iter().any(|c| c.contains(marker)) {
            for m in motifs {
                if !out.contains(m) {
                    out.push(*m);
                }
            }
        }
    }
    out
}

fn apply_motif(
    rng: &mut StdRng,
    p: &mut StateProgram,
    motif: Motif,
    vocab: &Vocab<'_>,
) -> Option<String> {
    match motif {
        Motif::Rescale => {
            let i = rng.gen_range(0..p.features.len());
            let factor = *[0.25, 0.5, 2.0, 4.0].choose(rng).expect("non-empty");
            let old = p.features[i].expr.clone();
            p.features[i].expr = mul(old.clone(), num(factor));
            // Amplification may push an already-large feature past the
            // T = 100 check (e.g. chunk sizes in MB × 4); a clean mutation
            // must never denormalize, so verify and revert if it does.
            if factor > 1.0 && !still_normalized(p, vocab.schema) {
                p.features[i].expr = old;
                return None;
            }
            Some(format!("rescale `{}` by {factor}", p.features[i].name))
        }
        Motif::RemapSymmetric => {
            let i = rng.gen_range(0..p.features.len());
            let old = p.features[i].expr.clone();
            p.features[i].expr = call("remap", vec![old, num(-1.0), num(1.0)]);
            Some(format!("remap `{}` to [-1, 1]", p.features[i].name))
        }
        Motif::Clip01 => {
            let i = rng.gen_range(0..p.features.len());
            let old = p.features[i].expr.clone();
            p.features[i].expr = call("clip", vec![old, num(0.0), num(1.0)]);
            Some(format!("clip `{}` to [0, 1]", p.features[i].name))
        }
        Motif::StrongerNorm => {
            let i = rng.gen_range(0..p.features.len());
            let factor = *[2.0, 4.0, 8.0].choose(rng).expect("non-empty");
            let old = p.features[i].expr.clone();
            p.features[i].expr = div(old, num(factor));
            Some(format!(
                "strengthen normalization of `{}` by {factor}",
                p.features[i].name
            ))
        }
        Motif::RemoveFeature => {
            if p.features.len() < 3 {
                return None;
            }
            let i = rng.gen_range(0..p.features.len());
            // Later features may reference this one; removal must stay valid.
            let name = p.features[i].name.clone();
            if references_name(p, &name, i + 1) {
                return None;
            }
            p.features.remove(i);
            Some(format!("remove feature `{name}` to reduce overfitting"))
        }
        Motif::PrimaryEma => {
            let (input, hi) = vocab.primary();
            let alpha = *[0.3, 0.5, 0.7].choose(rng).expect("non-empty");
            add_feature(
                rng,
                p,
                vocab,
                &format!("ema_{input}"),
                |sig| div(call("ema", vec![sig, num(alpha)]), num(hi)),
                input,
                format!("add EMA-smoothed `{input}` (alpha={alpha})"),
            )
        }
        Motif::PrimarySavgol => {
            let (input, hi) = vocab.primary();
            add_feature(
                rng,
                p,
                vocab,
                &format!("savgol_{input}"),
                |sig| div(call("savgol", vec![sig]), num(hi)),
                input,
                format!("smooth `{input}` with a Savitzky-Golay filter"),
            )
        }
        Motif::PrimaryZscore => {
            let (input, _) = vocab.primary();
            add_feature(
                rng,
                p,
                vocab,
                &format!("zscore_{input}"),
                |sig| call("clip", vec![call("zscore", vec![sig]), num(-5.0), num(5.0)]),
                input,
                format!("standardize the `{input}` history"),
            )
        }
        Motif::PrimaryStd => {
            let (input, hi) = vocab.primary();
            add_feature(
                rng,
                p,
                vocab,
                &format!("std_{input}"),
                |sig| div(call("std", vec![sig]), num(hi)),
                input,
                format!("add `{input}` variability"),
            )
        }
        Motif::PrimaryTrend => {
            let (input, hi) = vocab.primary();
            add_feature(
                rng,
                p,
                vocab,
                &format!("trend_{input}"),
                |sig| div(call("trend", vec![sig]), num(hi)),
                input,
                format!("add `{input}` trend via linear regression"),
            )
        }
        Motif::PrimaryPredict => {
            let (input, hi) = vocab.primary();
            add_feature(
                rng,
                p,
                vocab,
                &format!("predicted_{input}"),
                |sig| div(call("predict_next", vec![sig]), num(2.0 * hi)),
                input,
                format!("predict future `{input}` with linear regression"),
            )
        }
        Motif::PrimaryHarmonicMean => {
            let (input, hi) = vocab.primary();
            add_feature(
                rng,
                p,
                vocab,
                &format!("harmonic_{input}"),
                |sig| div(call("harmonic_mean", vec![sig]), num(hi)),
                input,
                format!("add harmonic-mean `{input}`"),
            )
        }
        Motif::PrimaryMin => {
            let (input, hi) = vocab.primary();
            add_feature(
                rng,
                p,
                vocab,
                &format!("min_{input}"),
                |sig| div(call("min", vec![sig]), num(hi)),
                input,
                format!("add worst-case recent `{input}`"),
            )
        }
        Motif::PrimaryMax => {
            let (input, hi) = vocab.primary();
            add_feature(
                rng,
                p,
                vocab,
                &format!("max_{input}"),
                |sig| div(call("max", vec![sig]), num(hi)),
                input,
                format!("add best-case recent `{input}`"),
            )
        }
        Motif::AuxTrend => {
            let (input, hi) = vocab.aux();
            add_feature(
                rng,
                p,
                vocab,
                &format!("trend_{input}"),
                |sig| div(call("trend", vec![sig]), num(hi)),
                input,
                format!("add `{input}` trend (history the original design ignores)"),
            )
        }
        Motif::AuxDiff => {
            let (input, hi) = vocab.aux();
            add_feature(
                rng,
                p,
                vocab,
                &format!("diff_{input}"),
                |sig| div(call("last", vec![call("diff", vec![sig])]), num(hi)),
                input,
                format!("add `{input}` difference between adjacent steps"),
            )
        }
        Motif::AuxSavgol => {
            let (input, hi) = vocab.aux();
            add_feature(
                rng,
                p,
                vocab,
                &format!("savgol_{input}"),
                |sig| div(call("last", vec![call("savgol", vec![sig])]), num(hi)),
                input,
                format!("analyze `{input}` with a Savitzky-Golay filter"),
            )
        }
        Motif::SecondaryPredict => {
            let (input, hi) = vocab.secondary();
            add_feature(
                rng,
                p,
                vocab,
                &format!("predicted_{input}"),
                |sig| div(call("predict_next", vec![sig]), num(2.0 * hi)),
                input,
                format!("predict the next `{input}`"),
            )
        }
        Motif::SecondaryTrend => {
            let (input, hi) = vocab.secondary();
            add_feature(
                rng,
                p,
                vocab,
                &format!("trend_{input}"),
                |sig| div(call("trend", vec![sig]), num(hi)),
                input,
                format!("add `{input}` trend"),
            )
        }
    }
}

/// Normalization defects: the failure modes §2.2 describes (e.g. chunk
/// sizes in raw bytes, RTTs in raw milliseconds).
fn apply_denormalize(rng: &mut StdRng, p: &mut StateProgram, vocab: &Vocab<'_>) -> String {
    if !vocab.raw.is_empty() && rng.gen_bool(2.0 / 3.0) {
        let input = *vocab.raw.choose(rng).expect("checked non-empty");
        ensure_input(p, input, vocab.schema);
        push_feature(p, &format!("raw_{input}"), Expr::Ident(input.into()));
        return format!("use raw `{input}` without normalization");
    }
    // Strip a large normalizing division if one exists.
    for f in p.features.iter_mut() {
        if let Expr::Binary {
            op: BinOp::Div,
            lhs,
            rhs,
        } = &f.expr
        {
            if matches!(**rhs, Expr::Number(n) if n > 10.0) {
                f.expr = (**lhs).clone();
                return format!("drop the normalizing divisor of `{}`", f.name);
            }
        }
    }
    if let Some(&input) = vocab.raw.choose(rng) {
        ensure_input(p, input, vocab.schema);
        push_feature(p, &format!("raw_{input}"), Expr::Ident(input.into()));
        return format!("use raw `{input}` without normalization");
    }
    // Schema with only well-bounded inputs and a seed with no big divisor:
    // amplify a feature far past the T = 100 threshold instead of panicking.
    let i = rng.gen_range(0..p.features.len());
    let old = p.features[i].expr.clone();
    p.features[i].expr = mul(old, num(1000.0));
    format!("amplify `{}` by 1000", p.features[i].name)
}

/// Adds a feature derived from `input_name` (declaring the input if needed).
fn add_feature(
    rng: &mut StdRng,
    p: &mut StateProgram,
    vocab: &Vocab<'_>,
    base_name: &str,
    build: impl FnOnce(Expr) -> Expr,
    input_name: &str,
    description: String,
) -> Option<String> {
    if p.features.len() >= MAX_FEATURES {
        return None;
    }
    ensure_input(p, input_name, vocab.schema);
    let expr = build(Expr::Ident(input_name.into()));
    let name = unique_name(rng, p, base_name);
    p.features.push(FeatureDecl { name, expr });
    Some(description)
}

fn push_feature(p: &mut StateProgram, base: &str, expr: Expr) {
    let name = if name_taken(p, base) {
        format!("{base}_x")
    } else {
        base.to_string()
    };
    p.features.push(FeatureDecl { name, expr });
}

/// Declares `name` as an input if the schema knows it and the program
/// hasn't already.
fn ensure_input(p: &mut StateProgram, name: &str, schema: &InputSchema) {
    if p.inputs.iter().any(|i| i.name == name) {
        return;
    }
    if let Some((_, spec)) = schema.lookup(name) {
        p.inputs.push(InputDecl {
            name: name.to_string(),
            ty: spec.ty,
        });
    }
}

/// Does the program still pass the normalization check after a mutation?
fn still_normalized(p: &StateProgram, schema: &InputSchema) -> bool {
    use nada_dsl::fuzz::{normalization_check, FuzzConfig, NormCheckOutcome};
    compile_state_with_schema(&print_state(p), schema.clone())
        .map(|c| {
            matches!(
                normalization_check(&c, &FuzzConfig::default()),
                NormCheckOutcome::Pass
            )
        })
        .unwrap_or(false)
}

fn name_taken(p: &StateProgram, name: &str) -> bool {
    p.inputs.iter().any(|i| i.name == name) || p.features.iter().any(|f| f.name == name)
}

fn unique_name(rng: &mut StdRng, p: &StateProgram, base: &str) -> String {
    if !name_taken(p, base) {
        return base.to_string();
    }
    loop {
        let candidate = format!("{base}_{}", rng.gen_range(2..100));
        if !name_taken(p, &candidate) {
            return candidate;
        }
    }
}

/// Does any feature from index `from` onward reference `name`?
fn references_name(p: &StateProgram, name: &str, from: usize) -> bool {
    fn expr_refs(e: &Expr, name: &str) -> bool {
        match e {
            Expr::Ident(n) => n == name,
            Expr::Number(_) => false,
            Expr::Neg(inner) => expr_refs(inner, name),
            Expr::Binary { lhs, rhs, .. } => expr_refs(lhs, name) || expr_refs(rhs, name),
            Expr::Call { args, .. } => args.iter().any(|a| expr_refs(a, name)),
        }
    }
    p.features
        .iter()
        .skip(from)
        .any(|f| expr_refs(&f.expr, name))
}

fn num(n: f64) -> Expr {
    if n < 0.0 {
        Expr::Neg(Box::new(Expr::Number(-n)))
    } else {
        Expr::Number(n)
    }
}

fn call(name: &str, args: Vec<Expr>) -> Expr {
    Expr::Call {
        name: name.into(),
        args,
    }
}

fn div(lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary {
        op: BinOp::Div,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

fn mul(lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary {
        op: BinOp::Mul,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nada_dsl::fuzz::{normalization_check, FuzzConfig, NormCheckOutcome};
    use nada_dsl::seeds::{CC_STATE_SOURCE, PENSIEVE_STATE_SOURCE};
    use nada_dsl::{abr_schema, cc_schema, compile_state};
    use rand::SeedableRng;

    #[test]
    fn clean_mutations_always_compile_and_normalize() {
        let schema = abr_schema();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..120 {
            let (code, desc) = generate(&mut rng, PENSIEVE_STATE_SOURCE, 1 + i % 4, false, &schema);
            let compiled = compile_state(&code)
                .unwrap_or_else(|e| panic!("mutation {desc:?} broke compile: {e}\n{code}"));
            assert_eq!(
                normalization_check(&compiled, &FuzzConfig::default()),
                NormCheckOutcome::Pass,
                "mutations {desc:?} denormalized the state:\n{code}"
            );
        }
    }

    #[test]
    fn clean_cc_mutations_always_compile_and_normalize() {
        let schema = cc_schema();
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..120 {
            let (code, desc) = generate(&mut rng, CC_STATE_SOURCE, 1 + i % 4, false, &schema);
            let compiled = compile_state_with_schema(&code, schema.clone())
                .unwrap_or_else(|e| panic!("mutation {desc:?} broke compile: {e}\n{code}"));
            assert_eq!(
                normalization_check(&compiled, &FuzzConfig::default()),
                NormCheckOutcome::Pass,
                "mutations {desc:?} denormalized the CC state:\n{code}"
            );
        }
    }

    #[test]
    fn denormalized_outputs_fail_the_fuzz_check() {
        let schema = abr_schema();
        let mut rng = StdRng::seed_from_u64(2);
        let mut failures = 0;
        let n = 40;
        for _ in 0..n {
            let (code, _) = generate(&mut rng, PENSIEVE_STATE_SOURCE, 2, true, &schema);
            if let Ok(c) = compile_state(&code) {
                if !matches!(
                    normalization_check(&c, &FuzzConfig::default()),
                    NormCheckOutcome::Pass
                ) {
                    failures += 1;
                }
            }
        }
        assert!(
            failures > n * 3 / 4,
            "only {failures}/{n} denormalized designs caught"
        );
    }

    #[test]
    fn denormalized_cc_outputs_fail_the_fuzz_check() {
        let schema = cc_schema();
        let mut rng = StdRng::seed_from_u64(12);
        let mut failures = 0;
        let n = 40;
        for _ in 0..n {
            let (code, _) = generate(&mut rng, CC_STATE_SOURCE, 2, true, &schema);
            if let Ok(c) = compile_state_with_schema(&code, schema.clone()) {
                if !matches!(
                    normalization_check(&c, &FuzzConfig::default()),
                    NormCheckOutcome::Pass
                ) {
                    failures += 1;
                }
            }
        }
        assert!(
            failures > n * 3 / 4,
            "only {failures}/{n} denormalized CC designs caught"
        );
    }

    #[test]
    fn aux_history_motifs_appear() {
        // ABR: buffer history; CC: loss history — the signals the original
        // designs ignore must show up in generated code.
        for (seed_src, schema, marker, seed) in [
            (
                PENSIEVE_STATE_SOURCE,
                abr_schema(),
                "buffer_history_s",
                3u64,
            ),
            (CC_STATE_SOURCE, cc_schema(), "loss_history", 13u64),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut saw = false;
            for _ in 0..60 {
                let (code, _) = generate(&mut rng, seed_src, 3, false, &schema);
                if code.contains(&format!("trend_{marker}"))
                    || code.contains(&format!("diff_{marker}"))
                    || code.contains(&format!("savgol_{marker}"))
                {
                    saw = true;
                    break;
                }
            }
            assert!(saw, "aux-history motifs never sampled for `{marker}`");
        }
    }

    #[test]
    fn removal_motif_can_shrink_the_state() {
        let schema = abr_schema();
        let mut rng = StdRng::seed_from_u64(4);
        let baseline = parse_state(PENSIEVE_STATE_SOURCE).unwrap().features.len();
        let mut saw_smaller = false;
        for _ in 0..80 {
            let (code, _) = generate(&mut rng, PENSIEVE_STATE_SOURCE, 2, false, &schema);
            if let Ok(p) = parse_state(&code) {
                if p.features.len() < baseline {
                    saw_smaller = true;
                    break;
                }
            }
        }
        assert!(
            saw_smaller,
            "feature removal never produced a smaller state"
        );
    }

    #[test]
    fn generated_names_are_fresh() {
        let schema = abr_schema();
        let mut rng = StdRng::seed_from_u64(5);
        let (code, _) = generate(&mut rng, PENSIEVE_STATE_SOURCE, 6, false, &schema);
        // Compiling enforces duplicate-name rejection.
        compile_state(&code).unwrap();
    }

    #[test]
    fn referenced_motifs_map_markers_to_families() {
        let motifs = referenced_motifs(&["feature a = ema(x, 0.5) + savgol(y);"]);
        assert!(motifs.contains(&Motif::PrimaryEma));
        assert!(motifs.contains(&Motif::PrimarySavgol));
        assert!(motifs.contains(&Motif::AuxSavgol));
        assert!(!motifs.contains(&Motif::PrimaryTrend));
        assert!(referenced_motifs(&[]).is_empty());
        assert!(referenced_motifs(&["feature a = b / 2.0;"]).is_empty());
    }

    #[test]
    fn biasing_with_no_winners_matches_the_unbiased_stream() {
        let schema = abr_schema();
        let a = generate(
            &mut StdRng::seed_from_u64(77),
            PENSIEVE_STATE_SOURCE,
            3,
            false,
            &schema,
        );
        let b = generate_biased(
            &mut StdRng::seed_from_u64(77),
            PENSIEVE_STATE_SOURCE,
            3,
            false,
            &schema,
            &[],
        );
        assert_eq!(a, b);
    }

    #[test]
    fn biased_generation_favors_winner_motifs() {
        let schema = abr_schema();
        let winner = "feature smoothed = ema(throughput_mbps, 0.5);";
        let mut rng = StdRng::seed_from_u64(78);
        let mut ema_hits = 0;
        let n = 60;
        for _ in 0..n {
            let (code, _) = generate_biased(
                &mut rng,
                PENSIEVE_STATE_SOURCE,
                2,
                false,
                &schema,
                &[winner],
            );
            if code.contains("ema(") {
                ema_hits += 1;
            }
        }
        let mut rng = StdRng::seed_from_u64(78);
        let mut baseline_hits = 0;
        for _ in 0..n {
            let (code, _) = generate(&mut rng, PENSIEVE_STATE_SOURCE, 2, false, &schema);
            if code.contains("ema(") {
                baseline_hits += 1;
            }
        }
        assert!(
            ema_hits > baseline_hits,
            "biased {ema_hits}/{n} vs unbiased {baseline_hits}/{n}"
        );
    }

    #[test]
    fn vocab_roles_follow_schema_order() {
        let abr = abr_schema();
        let v = Vocab::from_schema(&abr);
        assert_eq!(v.primary().0, "throughput_mbps");
        assert_eq!(v.secondary().0, "download_time_s");
        assert_eq!(v.aux().0, "buffer_history_s");

        let cc = cc_schema();
        let v = Vocab::from_schema(&cc);
        assert_eq!(v.primary().0, "throughput_history_mbps");
        assert_eq!(v.secondary().0, "rtt_history_ms");
        assert_eq!(v.aux().0, "loss_history");
        assert!(v.raw.contains(&"rtt_history_ms"));
        assert!(v.raw.contains(&"cwnd_pkts"));
    }
}
