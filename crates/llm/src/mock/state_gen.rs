//! State-design mutation engine.
//!
//! Mutations are the motif families §4 of the paper attributes to the LLMs:
//!
//! * normalization changes — rescaling, remapping to `[-1, 1]` (FCC),
//!   stronger normalizing factors (Starlink/GPT-4);
//! * feature removal to fight overfitting on small datasets
//!   (Starlink/GPT-3.5);
//! * smoothing — EMA, Savitzky–Golay (the paper's `scipy` example);
//! * explicit trend/prediction features via linear regression (the paper's
//!   `statsmodel` example; 4G/5G motifs);
//! * buffer-history features — trends and adjacent-step differences — which
//!   the original Pensieve ignores entirely (the paper's headline insight).

use nada_dsl::ast::{BinOp, Expr, FeatureDecl, InputDecl, StateProgram};
use nada_dsl::parser::parse_state;
use nada_dsl::pretty::print_state;
use nada_dsl::schema::abr_schema;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng};

/// Applies `n_mutations` random motif mutations (plus an optional
/// normalization defect) to the seed code block. Returns the new source and
/// human-readable descriptions of the applied mutations.
pub fn generate(
    rng: &mut StdRng,
    seed_code: &str,
    n_mutations: usize,
    denormalize: bool,
) -> (String, Vec<String>) {
    let Ok(mut program) = parse_state(seed_code) else {
        // An unparseable seed cannot be mutated; echo it back (the pipeline
        // will reject it downstream).
        return (seed_code.to_string(), vec!["echoed unparseable seed".into()]);
    };
    program.name = format!("{}_v{}", program.name, rng.gen_range(1000..10_000));

    let mut applied = Vec::new();
    let mut attempts = 0;
    while applied.len() < n_mutations && attempts < n_mutations * 12 {
        attempts += 1;
        let motif = *ALL_MOTIFS.choose(rng).expect("motif list is non-empty");
        if let Some(desc) = apply_motif(rng, &mut program, motif) {
            applied.push(desc);
        }
    }
    if denormalize {
        applied.push(apply_denormalize(rng, &mut program));
    }
    (print_state(&program), applied)
}

/// The motif families.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Motif {
    Rescale,
    RemapSymmetric,
    Clip01,
    StrongerNorm,
    RemoveFeature,
    EmaThroughput,
    SavgolThroughput,
    ZscoreThroughput,
    StdThroughput,
    TrendThroughput,
    PredictThroughput,
    HarmonicMeanThroughput,
    MinThroughput,
    MaxThroughput,
    BufferTrend,
    BufferDiff,
    BufferSavgol,
    PredictDownloadTime,
    TrendDownloadTime,
}

const ALL_MOTIFS: [Motif; 19] = [
    Motif::Rescale,
    Motif::RemapSymmetric,
    Motif::Clip01,
    Motif::StrongerNorm,
    Motif::RemoveFeature,
    Motif::EmaThroughput,
    Motif::SavgolThroughput,
    Motif::ZscoreThroughput,
    Motif::StdThroughput,
    Motif::TrendThroughput,
    Motif::PredictThroughput,
    Motif::HarmonicMeanThroughput,
    Motif::MinThroughput,
    Motif::MaxThroughput,
    Motif::BufferTrend,
    Motif::BufferDiff,
    Motif::BufferSavgol,
    Motif::PredictDownloadTime,
    Motif::TrendDownloadTime,
];

/// Soft cap keeping generated states from growing without bound.
const MAX_FEATURES: usize = 12;

fn apply_motif(rng: &mut StdRng, p: &mut StateProgram, motif: Motif) -> Option<String> {
    match motif {
        Motif::Rescale => {
            let i = rng.gen_range(0..p.features.len());
            let factor = *[0.25, 0.5, 2.0, 4.0].choose(rng).expect("non-empty");
            let old = p.features[i].expr.clone();
            p.features[i].expr = mul(old, num(factor));
            Some(format!("rescale `{}` by {factor}", p.features[i].name))
        }
        Motif::RemapSymmetric => {
            let i = rng.gen_range(0..p.features.len());
            let old = p.features[i].expr.clone();
            p.features[i].expr = call("remap", vec![old, num(-1.0), num(1.0)]);
            Some(format!("remap `{}` to [-1, 1]", p.features[i].name))
        }
        Motif::Clip01 => {
            let i = rng.gen_range(0..p.features.len());
            let old = p.features[i].expr.clone();
            p.features[i].expr = call("clip", vec![old, num(0.0), num(1.0)]);
            Some(format!("clip `{}` to [0, 1]", p.features[i].name))
        }
        Motif::StrongerNorm => {
            let i = rng.gen_range(0..p.features.len());
            let factor = *[2.0, 4.0, 8.0].choose(rng).expect("non-empty");
            let old = p.features[i].expr.clone();
            p.features[i].expr = div(old, num(factor));
            Some(format!("strengthen normalization of `{}` by {factor}", p.features[i].name))
        }
        Motif::RemoveFeature => {
            if p.features.len() < 3 {
                return None;
            }
            let i = rng.gen_range(0..p.features.len());
            // Later features may reference this one; removal must stay valid.
            let name = p.features[i].name.clone();
            if references_name(p, &name, i + 1) {
                return None;
            }
            p.features.remove(i);
            Some(format!("remove feature `{name}` to reduce overfitting"))
        }
        Motif::EmaThroughput => {
            let alpha = *[0.3, 0.5, 0.7].choose(rng).expect("non-empty");
            add_feature(
                rng,
                p,
                "smoothed_throughput",
                |thr| div(call("ema", vec![thr, num(alpha)]), num(8.0)),
                "throughput_mbps",
                format!("add EMA-smoothed throughput (alpha={alpha})"),
            )
        }
        Motif::SavgolThroughput => add_feature(
            rng,
            p,
            "savgol_throughput",
            |thr| div(call("savgol", vec![thr]), num(8.0)),
            "throughput_mbps",
            "smooth throughput with a Savitzky-Golay filter".into(),
        ),
        Motif::ZscoreThroughput => add_feature(
            rng,
            p,
            "zscore_throughput",
            |thr| call("clip", vec![call("zscore", vec![thr]), num(-5.0), num(5.0)]),
            "throughput_mbps",
            "standardize the throughput history".into(),
        ),
        Motif::StdThroughput => add_feature(
            rng,
            p,
            "throughput_std",
            |thr| div(call("std", vec![thr]), num(8.0)),
            "throughput_mbps",
            "add throughput variability".into(),
        ),
        Motif::TrendThroughput => add_feature(
            rng,
            p,
            "throughput_trend",
            |thr| div(call("trend", vec![thr]), num(8.0)),
            "throughput_mbps",
            "add throughput trend via linear regression".into(),
        ),
        Motif::PredictThroughput => add_feature(
            rng,
            p,
            "predicted_throughput",
            |thr| div(call("predict_next", vec![thr]), num(50.0)),
            "throughput_mbps",
            "predict future throughput with linear regression".into(),
        ),
        Motif::HarmonicMeanThroughput => add_feature(
            rng,
            p,
            "harmonic_throughput",
            |thr| div(call("harmonic_mean", vec![thr]), num(8.0)),
            "throughput_mbps",
            "add harmonic-mean throughput".into(),
        ),
        Motif::MinThroughput => add_feature(
            rng,
            p,
            "min_throughput",
            |thr| div(call("min", vec![thr]), num(8.0)),
            "throughput_mbps",
            "add worst-case recent throughput".into(),
        ),
        Motif::MaxThroughput => add_feature(
            rng,
            p,
            "max_throughput",
            |thr| div(call("max", vec![thr]), num(16.0)),
            "throughput_mbps",
            "add best-case recent throughput".into(),
        ),
        Motif::BufferTrend => add_feature(
            rng,
            p,
            "buffer_trend",
            |buf| div(call("trend", vec![buf]), num(10.0)),
            "buffer_history_s",
            "add playback-buffer trend (history the original design ignores)".into(),
        ),
        Motif::BufferDiff => add_feature(
            rng,
            p,
            "buffer_diff",
            |buf| div(call("last", vec![call("diff", vec![buf])]), num(10.0)),
            "buffer_history_s",
            "add buffer difference between adjacent steps".into(),
        ),
        Motif::BufferSavgol => add_feature(
            rng,
            p,
            "buffer_smoothed",
            |buf| div(call("last", vec![call("savgol", vec![buf])]), num(60.0)),
            "buffer_history_s",
            "analyze buffer trend with a Savitzky-Golay filter".into(),
        ),
        Motif::PredictDownloadTime => add_feature(
            rng,
            p,
            "predicted_download_time",
            |dt| div(call("predict_next", vec![dt]), num(10.0)),
            "download_time_s",
            "predict the next chunk's download time".into(),
        ),
        Motif::TrendDownloadTime => add_feature(
            rng,
            p,
            "download_time_trend",
            |dt| div(call("trend", vec![dt]), num(10.0)),
            "download_time_s",
            "add download-time trend".into(),
        ),
    }
}

/// Normalization defects: the failure modes §2.2 describes (e.g. chunk
/// sizes in raw bytes).
fn apply_denormalize(rng: &mut StdRng, p: &mut StateProgram) -> String {
    match rng.gen_range(0..3) {
        0 => {
            ensure_input(p, "next_chunk_sizes_bytes");
            push_feature(p, "raw_chunk_sizes", Expr::Ident("next_chunk_sizes_bytes".into()));
            "use raw chunk sizes in bytes".into()
        }
        1 => {
            ensure_input(p, "last_bitrate_kbps");
            push_feature(p, "raw_bitrate", Expr::Ident("last_bitrate_kbps".into()));
            "use the raw bitrate in kbps".into()
        }
        _ => {
            // Strip a large normalizing division if one exists.
            for f in p.features.iter_mut() {
                if let Expr::Binary { op: BinOp::Div, lhs, rhs } = &f.expr {
                    if matches!(**rhs, Expr::Number(n) if n > 10.0) {
                        f.expr = (**lhs).clone();
                        return format!("drop the normalizing divisor of `{}`", f.name);
                    }
                }
            }
            ensure_input(p, "last_bitrate_kbps");
            push_feature(p, "raw_bitrate", Expr::Ident("last_bitrate_kbps".into()));
            "use the raw bitrate in kbps".into()
        }
    }
}

/// Adds a feature derived from `input_name` (declaring the input if needed).
fn add_feature(
    rng: &mut StdRng,
    p: &mut StateProgram,
    base_name: &str,
    build: impl FnOnce(Expr) -> Expr,
    input_name: &str,
    description: String,
) -> Option<String> {
    if p.features.len() >= MAX_FEATURES {
        return None;
    }
    ensure_input(p, input_name);
    let expr = build(Expr::Ident(input_name.into()));
    let name = unique_name(rng, p, base_name);
    p.features.push(FeatureDecl { name, expr });
    Some(description)
}

fn push_feature(p: &mut StateProgram, base: &str, expr: Expr) {
    let name = if name_taken(p, base) { format!("{base}_x") } else { base.to_string() };
    p.features.push(FeatureDecl { name, expr });
}

/// Declares `name` as an input if the schema knows it and the program
/// hasn't already.
fn ensure_input(p: &mut StateProgram, name: &str) {
    if p.inputs.iter().any(|i| i.name == name) {
        return;
    }
    if let Some((_, spec)) = abr_schema().lookup(name) {
        p.inputs.push(InputDecl { name: name.to_string(), ty: spec.ty });
    }
}

fn name_taken(p: &StateProgram, name: &str) -> bool {
    p.inputs.iter().any(|i| i.name == name) || p.features.iter().any(|f| f.name == name)
}

fn unique_name(rng: &mut StdRng, p: &StateProgram, base: &str) -> String {
    if !name_taken(p, base) {
        return base.to_string();
    }
    loop {
        let candidate = format!("{base}_{}", rng.gen_range(2..100));
        if !name_taken(p, &candidate) {
            return candidate;
        }
    }
}

/// Does any feature from index `from` onward reference `name`?
fn references_name(p: &StateProgram, name: &str, from: usize) -> bool {
    fn expr_refs(e: &Expr, name: &str) -> bool {
        match e {
            Expr::Ident(n) => n == name,
            Expr::Number(_) => false,
            Expr::Neg(inner) => expr_refs(inner, name),
            Expr::Binary { lhs, rhs, .. } => expr_refs(lhs, name) || expr_refs(rhs, name),
            Expr::Call { args, .. } => args.iter().any(|a| expr_refs(a, name)),
        }
    }
    p.features.iter().skip(from).any(|f| expr_refs(&f.expr, name))
}

fn num(n: f64) -> Expr {
    if n < 0.0 {
        Expr::Neg(Box::new(Expr::Number(-n)))
    } else {
        Expr::Number(n)
    }
}

fn call(name: &str, args: Vec<Expr>) -> Expr {
    Expr::Call { name: name.into(), args }
}

fn div(lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary { op: BinOp::Div, lhs: Box::new(lhs), rhs: Box::new(rhs) }
}

fn mul(lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary { op: BinOp::Mul, lhs: Box::new(lhs), rhs: Box::new(rhs) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nada_dsl::compile_state;
    use nada_dsl::fuzz::{normalization_check, FuzzConfig, NormCheckOutcome};
    use nada_dsl::seeds::PENSIEVE_STATE_SOURCE;
    use rand::SeedableRng;

    #[test]
    fn clean_mutations_always_compile_and_normalize() {
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..120 {
            let (code, desc) =
                generate(&mut rng, PENSIEVE_STATE_SOURCE, 1 + i % 4, false);
            let compiled = compile_state(&code)
                .unwrap_or_else(|e| panic!("mutation {desc:?} broke compile: {e}\n{code}"));
            assert_eq!(
                normalization_check(&compiled, &FuzzConfig::default()),
                NormCheckOutcome::Pass,
                "mutations {desc:?} denormalized the state:\n{code}"
            );
        }
    }

    #[test]
    fn denormalized_outputs_fail_the_fuzz_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut failures = 0;
        let n = 40;
        for _ in 0..n {
            let (code, _) = generate(&mut rng, PENSIEVE_STATE_SOURCE, 2, true);
            if let Ok(c) = compile_state(&code) {
                if !matches!(
                    normalization_check(&c, &FuzzConfig::default()),
                    NormCheckOutcome::Pass
                ) {
                    failures += 1;
                }
            }
        }
        assert!(failures > n * 3 / 4, "only {failures}/{n} denormalized designs caught");
    }

    #[test]
    fn buffer_history_motifs_appear() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_buffer_motif = false;
        for _ in 0..60 {
            let (code, _) = generate(&mut rng, PENSIEVE_STATE_SOURCE, 3, false);
            if code.contains("buffer_history_s") {
                saw_buffer_motif = true;
                break;
            }
        }
        assert!(saw_buffer_motif, "buffer-history motifs never sampled");
    }

    #[test]
    fn removal_motif_can_shrink_the_state() {
        let mut rng = StdRng::seed_from_u64(4);
        let baseline = parse_state(PENSIEVE_STATE_SOURCE).unwrap().features.len();
        let mut saw_smaller = false;
        for _ in 0..80 {
            let (code, _) = generate(&mut rng, PENSIEVE_STATE_SOURCE, 2, false);
            if let Ok(p) = parse_state(&code) {
                if p.features.len() < baseline {
                    saw_smaller = true;
                    break;
                }
            }
        }
        assert!(saw_smaller, "feature removal never produced a smaller state");
    }

    #[test]
    fn generated_names_are_fresh() {
        let mut rng = StdRng::seed_from_u64(5);
        let (code, _) = generate(&mut rng, PENSIEVE_STATE_SOURCE, 6, false);
        // Compiling enforces duplicate-name rejection.
        compile_state(&code).unwrap();
    }
}
