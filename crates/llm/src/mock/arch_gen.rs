//! Architecture-design mutation engine.
//!
//! Motifs follow the paper's §4 summary of discovered architectures: wider
//! hidden layers with Leaky ReLU (FCC), an RNN replacing the 1-D CNN
//! (Starlink), an LSTM (4G), and shared hidden layers with separate output
//! heads (5G), plus filter/kernel/width jitter.

use nada_dsl::ast::{ArchProgram, LayerSpec};
use nada_dsl::parser::parse_arch;
use nada_dsl::pretty::print_arch;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng};

/// Applies `n_mutations` random architecture mutations to the seed code
/// block. Returns the new source and mutation descriptions.
pub fn generate(rng: &mut StdRng, seed_code: &str, n_mutations: usize) -> (String, Vec<String>) {
    let Ok(mut program) = parse_arch(seed_code) else {
        return (
            seed_code.to_string(),
            vec!["echoed unparseable seed".into()],
        );
    };
    program.name = format!("{}_v{}", program.name, rng.gen_range(1000..10_000));

    let mut applied = Vec::new();
    for _ in 0..n_mutations {
        applied.push(mutate(rng, &mut program));
    }
    (print_arch(&program), applied)
}

fn mutate(rng: &mut StdRng, p: &mut ArchProgram) -> String {
    match rng.gen_range(0..8) {
        0 => {
            let filters = *[16usize, 32, 64, 128, 256].choose(rng).expect("non-empty");
            let kernel = rng.gen_range(2..=5);
            p.temporal = layer(
                "conv1d",
                vec![("filters", filters as f64), ("kernel", kernel as f64)],
                Some(random_activation(rng)),
            );
            format!("use a {filters}-filter kernel-{kernel} 1D CNN for temporal inputs")
        }
        1 => {
            let units = *[32usize, 64, 128].choose(rng).expect("non-empty");
            p.temporal = layer("rnn", vec![("units", units as f64)], None);
            format!("replace the 1D CNN with a {units}-unit RNN")
        }
        2 => {
            let units = *[32usize, 64, 128].choose(rng).expect("non-empty");
            p.temporal = layer("lstm", vec![("units", units as f64)], None);
            format!("replace the 1D CNN with a {units}-unit LSTM")
        }
        3 => {
            let units = *[32usize, 64, 128, 256].choose(rng).expect("non-empty");
            p.scalar = layer(
                "dense",
                vec![("units", units as f64)],
                Some(random_activation(rng)),
            );
            format!("resize scalar branches to {units} units")
        }
        4 => {
            let units = *[64usize, 128, 256].choose(rng).expect("non-empty");
            let act = random_activation(rng);
            let depth = p.hidden.len();
            p.hidden = (0..depth.max(1))
                .map(|_| layer("dense", vec![("units", units as f64)], Some(act.clone())))
                .collect();
            format!("resize hidden layers to {units} units")
        }
        5 => {
            if p.hidden.len() < 3 {
                let template = p.hidden.last().cloned().unwrap_or_else(|| {
                    layer(
                        "dense",
                        vec![("units", 128.0)],
                        Some(("relu".into(), vec![])),
                    )
                });
                p.hidden.push(template);
                "deepen the hidden stack".into()
            } else {
                p.hidden.pop();
                "shallow the hidden stack".into()
            }
        }
        6 => {
            let act = random_activation(rng);
            let name = act.0.clone();
            for h in &mut p.hidden {
                h.activation = Some(act.clone());
            }
            if p.temporal.layer == "conv1d" || p.temporal.layer == "dense" {
                p.temporal.activation = Some(act.clone());
            }
            p.scalar.activation = Some(act);
            format!("switch activations to {name}")
        }
        _ => {
            p.shared_heads = !p.shared_heads;
            if p.shared_heads {
                "share hidden layers between actor and critic with separate output heads".into()
            } else {
                "use fully separate actor and critic networks".into()
            }
        }
    }
}

fn layer(
    name: &str,
    params: Vec<(&str, f64)>,
    activation: Option<(String, Vec<(String, f64)>)>,
) -> LayerSpec {
    LayerSpec {
        layer: name.to_string(),
        params: params
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect(),
        activation,
    }
}

fn random_activation(rng: &mut StdRng) -> (String, Vec<(String, f64)>) {
    match rng.gen_range(0..4) {
        0 => ("relu".into(), vec![]),
        1 => {
            let alpha = *[0.01, 0.05, 0.1, 0.2].choose(rng).expect("non-empty");
            ("leaky_relu".into(), vec![("alpha".into(), alpha)])
        }
        2 => ("tanh".into(), vec![]),
        _ => ("sigmoid".into(), vec![]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nada_dsl::compile_arch;
    use nada_dsl::seeds::PENSIEVE_ARCH_SOURCE;
    use nada_nn::BranchKind;
    use rand::SeedableRng;

    #[test]
    fn clean_mutations_always_compile() {
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..120 {
            let (code, desc) = generate(&mut rng, PENSIEVE_ARCH_SOURCE, 1 + i % 4);
            compile_arch(&code)
                .unwrap_or_else(|e| panic!("mutation {desc:?} broke compile: {e}\n{code}"));
        }
    }

    #[test]
    fn all_paper_motifs_are_reachable() {
        let mut rng = StdRng::seed_from_u64(2);
        let (mut saw_rnn, mut saw_lstm, mut saw_shared, mut saw_leaky) =
            (false, false, false, false);
        for _ in 0..300 {
            let (code, _) = generate(&mut rng, PENSIEVE_ARCH_SOURCE, 2);
            if let Ok(cfg) = compile_arch(&code) {
                saw_rnn |= matches!(cfg.temporal_branch, BranchKind::Rnn { .. });
                saw_lstm |= matches!(cfg.temporal_branch, BranchKind::Lstm { .. });
                saw_shared |= cfg.heads == nada_nn::HeadMode::Shared;
                saw_leaky |= matches!(cfg.hidden_activation, nada_nn::Activation::LeakyRelu { .. });
            }
        }
        assert!(saw_rnn, "RNN motif unreachable");
        assert!(saw_lstm, "LSTM motif unreachable");
        assert!(saw_shared, "shared-heads motif unreachable");
        assert!(saw_leaky, "leaky-relu motif unreachable");
    }

    #[test]
    fn mutations_are_diverse() {
        let mut rng = StdRng::seed_from_u64(3);
        let distinct: std::collections::HashSet<String> = (0..40)
            .map(|_| generate(&mut rng, PENSIEVE_ARCH_SOURCE, 2).0)
            .collect();
        assert!(
            distinct.len() > 25,
            "only {} distinct archs",
            distinct.len()
        );
    }
}
