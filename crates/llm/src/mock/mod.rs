//! The mock LLM: a grammar-based design sampler.
//!
//! [`MockLlm`] stands in for GPT-3.5/GPT-4. Given a prompt carrying a seed
//! code block, it parses the seed, applies a random number of *semantically
//! valid* design mutations drawn from the motif families the paper reports
//! (§4), and then — per the model's [`ModelProfile`] — optionally injects a
//! normalization defect (state designs) or a syntax/semantic defect
//! (both kinds), so the downstream filtering pipeline sees the same defect
//! distribution as the paper's Table 2.
//!
//! Prompt strategies modulate the rates, powering the prompt-ablation
//! bench: omitting the normalization request raises the unnormalized rate;
//! stripping semantic names raises the defect rate; disabling
//! chain-of-thought halves mutation diversity.

pub mod arch_gen;
pub mod corrupt;
pub mod state_gen;

use crate::client::{Completion, DesignKind, LlmClient};
use crate::profile::ModelProfile;
use crate::prompt::Prompt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic, seedable stand-in for a code-generating LLM.
#[derive(Debug, Clone)]
pub struct MockLlm {
    profile: ModelProfile,
    rng: StdRng,
}

impl MockLlm {
    /// Creates a mock with the given profile. Deterministic in `seed`.
    pub fn new(profile: ModelProfile, seed: u64) -> Self {
        Self {
            profile,
            rng: StdRng::seed_from_u64(seed ^ 0x11A4_0000_0000_000D),
        }
    }

    /// GPT-3.5-calibrated mock.
    pub fn gpt35(seed: u64) -> Self {
        Self::new(ModelProfile::gpt35(), seed)
    }

    /// GPT-4-calibrated mock.
    pub fn gpt4(seed: u64) -> Self {
        Self::new(ModelProfile::gpt4(), seed)
    }

    /// A defect-free mock (all generations compile and normalize).
    pub fn perfect(seed: u64) -> Self {
        Self::new(ModelProfile::perfect("perfect"), seed)
    }

    /// The active profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Effective rates after applying the prompt's strategy toggles.
    fn effective_rates(&self, prompt: &Prompt) -> (f64, f64, f64) {
        let mut defect = self.profile.defect_rate;
        let mut unnorm = self.profile.unnormalized_rate;
        let mut mutations = self.profile.mean_mutations;
        if !prompt.options.semantic_renaming {
            defect = (defect * 1.25).min(0.95);
        }
        if !prompt.options.request_normalization {
            unnorm = (unnorm * 2.5).min(0.95);
        }
        if !prompt.options.chain_of_thought {
            mutations *= 0.5;
        }
        (defect, unnorm, mutations)
    }
}

impl LlmClient for MockLlm {
    fn model_name(&self) -> &str {
        &self.profile.name
    }

    fn generate(&mut self, prompt: &Prompt) -> Completion {
        let (defect_rate, unnorm_rate, mean_mutations) = self.effective_rates(prompt);
        let n_mutations = 1 + poisson(&mut self.rng, mean_mutations);
        // Feedback biasing: most generations hill-climb from the best
        // fed-back winner instead of the original seed, mirroring a real
        // model imitating the designs the prompt showcases. With no
        // feedback the RNG stream is untouched, so one-shot searches
        // reproduce exactly as before.
        let winners: Vec<&str> = prompt
            .feedback
            .iter()
            .flat_map(|f| f.winners.iter().map(|w| w.code.as_str()))
            .collect();
        let seed_code = if !winners.is_empty() && self.rng.gen_bool(0.7) {
            winners[0].to_string()
        } else {
            prompt.seed_code.clone()
        };
        let (mut code, descriptions) = match prompt.kind {
            DesignKind::State => {
                let denormalize = self.rng.gen_bool(unnorm_rate);
                state_gen::generate_biased(
                    &mut self.rng,
                    &seed_code,
                    n_mutations,
                    denormalize,
                    &prompt.task.schema,
                    &winners,
                )
            }
            DesignKind::Architecture => arch_gen::generate(&mut self.rng, &seed_code, n_mutations),
        };
        if self.rng.gen_bool(defect_rate) {
            code = corrupt::corrupt(&mut self.rng, &code);
        }
        let reasoning = prompt.options.chain_of_thought.then(|| {
            format!(
                "Analyzed the existing design. Considered ideas: {}. Selected the combination \
                 above as most promising for the target environment.",
                descriptions.join("; ")
            )
        });
        Completion { code, reasoning }
    }
}

/// Small-λ Poisson sampler (inverse-CDF; λ ≤ ~10 in practice).
fn poisson(rng: &mut StdRng, lambda: f64) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 64 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nada_dsl::seeds::{PENSIEVE_ARCH_SOURCE, PENSIEVE_STATE_SOURCE};
    use nada_dsl::{compile_arch, compile_state};

    #[test]
    fn perfect_mock_always_compiles() {
        let mut llm = MockLlm::perfect(1);
        let prompt = Prompt::state(PENSIEVE_STATE_SOURCE);
        for c in llm.generate_batch(&prompt, 50) {
            compile_state(&c.code)
                .unwrap_or_else(|e| panic!("perfect mock emitted broken code: {e}\n{}", c.code));
        }
    }

    #[test]
    fn perfect_mock_arch_always_compiles() {
        let mut llm = MockLlm::perfect(2);
        let prompt = Prompt::architecture(PENSIEVE_ARCH_SOURCE);
        for c in llm.generate_batch(&prompt, 50) {
            compile_arch(&c.code)
                .unwrap_or_else(|e| panic!("perfect mock emitted broken arch: {e}\n{}", c.code));
        }
    }

    #[test]
    fn perfect_mock_cc_always_compiles() {
        use crate::prompt::TaskContext;
        let mut llm = MockLlm::perfect(21);
        let prompt = Prompt::state_for(TaskContext::cc(), nada_dsl::seeds::CC_STATE_SOURCE);
        let schema = nada_dsl::cc_schema();
        for c in llm.generate_batch(&prompt, 50) {
            nada_dsl::compile_state_with_schema(&c.code, schema.clone())
                .unwrap_or_else(|e| panic!("perfect mock emitted broken CC code: {e}\n{}", c.code));
        }
    }

    #[test]
    fn generations_are_diverse() {
        let mut llm = MockLlm::perfect(3);
        let prompt = Prompt::state(PENSIEVE_STATE_SOURCE);
        let batch = llm.generate_batch(&prompt, 30);
        let distinct: std::collections::HashSet<&str> =
            batch.iter().map(|c| c.code.as_str()).collect();
        assert!(
            distinct.len() > 20,
            "only {} distinct designs in 30",
            distinct.len()
        );
    }

    #[test]
    fn gpt35_compile_rate_tracks_table2() {
        let mut llm = MockLlm::gpt35(4);
        let prompt = Prompt::state(PENSIEVE_STATE_SOURCE);
        let n = 600;
        let ok = llm
            .generate_batch(&prompt, n)
            .iter()
            .filter(|c| compile_state(&c.code).is_ok())
            .count();
        let rate = ok as f64 / n as f64;
        assert!(
            (rate - 0.412).abs() < 0.08,
            "compile rate {rate} vs paper 0.412"
        );
    }

    #[test]
    fn gpt4_beats_gpt35_on_compile_rate() {
        let prompt = Prompt::state(PENSIEVE_STATE_SOURCE);
        let rate = |mut llm: MockLlm| {
            let n = 400;
            llm.generate_batch(&prompt, n)
                .iter()
                .filter(|c| compile_state(&c.code).is_ok())
                .count() as f64
                / n as f64
        };
        assert!(rate(MockLlm::gpt4(5)) > rate(MockLlm::gpt35(5)) + 0.1);
    }

    #[test]
    fn cot_prompt_yields_reasoning() {
        let mut llm = MockLlm::perfect(6);
        let mut prompt = Prompt::state(PENSIEVE_STATE_SOURCE);
        assert!(llm.generate(&prompt).reasoning.is_some());
        prompt.options.chain_of_thought = false;
        assert!(llm.generate(&prompt).reasoning.is_none());
    }

    #[test]
    fn feedback_biases_the_pool_toward_winners() {
        use crate::prompt::{FeedbackContext, FeedbackWinner};
        // A winner introducing a feature the seed does not have; the next
        // pool must reference it (mutations hill-climb from winner code).
        let winner_code = "state pensieve_fed {\n  \
             input throughput_mbps: vec[8];\n  \
             feature fed_back_ema = ema(throughput_mbps, 0.5) / 12.0;\n}\n";
        let prompt = Prompt::state(PENSIEVE_STATE_SOURCE).with_feedback(FeedbackContext {
            round: 1,
            winners: vec![FeedbackWinner {
                code: winner_code.into(),
                score: 0.9,
            }],
            rejected_compile: 1,
            rejected_normalization: 1,
            accepted: 6,
        });
        let mut llm = MockLlm::perfect(9);
        let batch = llm.generate_batch(&prompt, 20);
        assert!(
            batch.iter().any(|c| c.code.contains("fed_back_ema")),
            "no generation referenced the fed-back winner's feature"
        );
    }

    #[test]
    fn no_feedback_stream_is_unchanged_by_the_biasing_path() {
        let prompt = Prompt::state(PENSIEVE_STATE_SOURCE);
        let a: Vec<_> = MockLlm::gpt4(10).generate_batch(&prompt, 10);
        let b: Vec<_> = MockLlm::gpt4(10).generate_batch(&prompt, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let prompt = Prompt::state(PENSIEVE_STATE_SOURCE);
        let a = MockLlm::gpt4(7).generate(&prompt);
        let b = MockLlm::gpt4(7).generate(&prompt);
        assert_eq!(a, b);
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut rng, 2.4) as f64).sum::<f64>() / n as f64;
        assert!((mean - 2.4).abs() < 0.1, "poisson mean {mean}");
    }
}
