//! Syntax/semantic defect injection.
//!
//! LLM-generated code frequently "fails to compile or execute" (paper §1).
//! These corruptions reproduce the common failure classes: missing
//! punctuation, misspelled identifiers, unbalanced parentheses, references
//! to undefined names, and wrong arities. Every corruption yields code that
//! the compilation check rejects.

use rand::rngs::StdRng;
use rand::Rng;

/// Applies one random defect to `code`. The result is still a string — the
/// point is that it *looks* like code but does not compile.
pub fn corrupt(rng: &mut StdRng, code: &str) -> String {
    match rng.gen_range(0..6) {
        0 => drop_last_occurrence(code, ';'),
        1 => misspell_word(code, rng),
        2 => drop_last_occurrence(code, ')'),
        3 => inject_undefined_reference(code),
        4 => drop_last_occurrence(code, '}'),
        _ => truncate_tail(code, rng),
    }
}

fn drop_last_occurrence(code: &str, ch: char) -> String {
    match code.rfind(ch) {
        Some(idx) => {
            let mut s = code.to_string();
            s.remove(idx);
            s
        }
        None => format!("{code} ("), // guarantee breakage either way
    }
}

fn misspell_word(code: &str, rng: &mut StdRng) -> String {
    const TARGETS: [(&str, &str); 6] = [
        ("feature", "faeture"),
        ("input", "inptu"),
        ("ema", "emma"),
        ("trend", "trnd"),
        ("dense", "dnese"),
        ("conv1d", "conv2d"),
    ];
    for (from, to) in TARGETS.iter().skip(rng.gen_range(0..TARGETS.len())) {
        if code.contains(from) {
            return code.replacen(from, to, 1);
        }
    }
    // No target word present; break the header keyword instead.
    code.replacen("state", "stte", 1)
        .replacen("network", "ntwork", 1)
}

fn inject_undefined_reference(code: &str) -> String {
    match code.rfind('}') {
        Some(idx) => {
            let mut s = code.to_string();
            s.insert_str(idx, "  feature broken = undefined_signal / 2.0;\n");
            s
        }
        None => format!("{code}\nfeature broken = undefined_signal;"),
    }
}

fn truncate_tail(code: &str, rng: &mut StdRng) -> String {
    let keep = code.len() * rng.gen_range(40..85usize) / 100;
    code.chars().take(keep).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nada_dsl::seeds::{PENSIEVE_ARCH_SOURCE, PENSIEVE_STATE_SOURCE};
    use nada_dsl::{compile_arch, compile_state};
    use rand::SeedableRng;

    #[test]
    fn corrupted_states_never_compile() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let broken = corrupt(&mut rng, PENSIEVE_STATE_SOURCE);
            assert!(
                compile_state(&broken).is_err(),
                "corruption produced compilable code:\n{broken}"
            );
        }
    }

    #[test]
    fn corrupted_archs_never_compile() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let broken = corrupt(&mut rng, PENSIEVE_ARCH_SOURCE);
            assert!(
                compile_arch(&broken).is_err(),
                "corruption produced compilable arch:\n{broken}"
            );
        }
    }

    #[test]
    fn corruption_is_varied() {
        let mut rng = StdRng::seed_from_u64(3);
        let distinct: std::collections::HashSet<String> = (0..30)
            .map(|_| corrupt(&mut rng, PENSIEVE_STATE_SOURCE))
            .collect();
        assert!(distinct.len() > 4, "corruptions too uniform");
    }
}
