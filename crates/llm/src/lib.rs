//! LLM substrate for the NADA reproduction.
//!
//! The paper prompts GPT-3.5 and GPT-4 to rewrite two Pensieve code blocks —
//! the RL state function and the actor-critic network builder — and feeds
//! the returned code into its filtering pipeline. Hosted LLM endpoints are
//! not available to an offline Rust library, so this crate provides:
//!
//! * [`client::LlmClient`] — the provider-agnostic interface NADA consumes
//!   (a real HTTP client can implement it without touching the pipeline);
//! * [`prompt`] — the paper's §2.1 prompting strategies rendered as actual
//!   prompt text: chain-of-thought instructions, semantically renamed
//!   variables with explanatory comments, and the explicit normalization
//!   request for state prompts;
//! * [`mock::MockLlm`] — a grammar-based design sampler that mutates the
//!   seed code block with the motifs the paper reports (re-normalization,
//!   feature removal, smoothing, trend/prediction features, buffer-history
//!   features, architecture swaps) and injects syntax/normalization defects
//!   at per-model rates calibrated to Table 2;
//! * [`profile::ModelProfile`] — those calibrated rates for "GPT-3.5" and
//!   "GPT-4";
//! * [`replay`] — record/replay clients so real transcripts can be swapped
//!   in deterministically;
//! * [`cassette`] — the on-disk, prompt-fingerprinted recording format
//!   those clients persist through the serde-shim text codec (the
//!   `nada-llm-http` crate provides the real HTTP backend they wrap).

pub mod cassette;
pub mod client;
pub mod mock;
pub mod parallel;
pub mod profile;
pub mod prompt;
pub mod replay;

pub use cassette::{prompt_fingerprint, Cassette, CassetteEntry, CassetteError};
pub use client::{global_token_meter, Completion, DesignKind, LlmClient, TokenMeter, TokenUsage};
pub use mock::MockLlm;
pub use parallel::{ParallelGen, WaveWorker};
pub use profile::ModelProfile;
pub use prompt::{FeedbackContext, FeedbackWinner, Prompt, PromptOptions, TaskContext};
pub use replay::{RecordingClient, ReplayClient, Transcript};
