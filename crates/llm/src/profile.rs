//! Per-model generation-quality profiles calibrated to the paper's Table 2.
//!
//! Table 2 reports, out of 3 000 generated states per model:
//!
//! | model   | compilable      | well-normalized |
//! |---------|-----------------|-----------------|
//! | GPT-3.5 | 1 237 (41.2 %)  |   822 (27.4 %)  |
//! | GPT-4   | 2 059 (68.6 %)  | 1 505 (50.2 %)  |
//!
//! The mock model reproduces these as two independent defect processes: a
//! probability of emitting syntactically/semantically broken code
//! (`defect_rate` ≈ 1 − compilable) and a probability — *given* compilable
//! code — of forwarding an unnormalized feature
//! (`unnormalized_rate` ≈ 1 − normalized/compilable).

/// Defect rates and creativity parameters for one simulated model.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModelProfile {
    /// Model name used in reports (`"gpt-3.5"`, `"gpt-4"`).
    pub name: String,
    /// Probability a generated code block fails the compilation check.
    pub defect_rate: f64,
    /// Probability a *compilable* state design contains an unnormalized
    /// feature (fails the `T = 100` fuzz check).
    pub unnormalized_rate: f64,
    /// Mean number of design mutations per generation (drawn 1 + Poisson);
    /// higher = more adventurous rewrites.
    pub mean_mutations: f64,
}

impl ModelProfile {
    /// Profile calibrated to Table 2's GPT-3.5 row:
    /// 41.2 % compilable, 27.4 % normalized ⇒ defect 0.588, unnormalized
    /// 1 − 27.4/41.2 = 0.335.
    pub fn gpt35() -> Self {
        Self {
            name: "gpt-3.5".into(),
            defect_rate: 0.588,
            unnormalized_rate: 0.335,
            mean_mutations: 1.6,
        }
    }

    /// Profile calibrated to Table 2's GPT-4 row:
    /// 68.6 % compilable, 50.2 % normalized ⇒ defect 0.314, unnormalized
    /// 1 − 50.2/68.6 = 0.268.
    pub fn gpt4() -> Self {
        Self {
            name: "gpt-4".into(),
            defect_rate: 0.314,
            unnormalized_rate: 0.268,
            mean_mutations: 2.4,
        }
    }

    /// A defect-free profile for tests and for searching without the noise
    /// processes (every generation compiles and normalizes).
    pub fn perfect(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            defect_rate: 0.0,
            unnormalized_rate: 0.0,
            mean_mutations: 2.0,
        }
    }

    /// Expected fraction of generations passing the compilation check.
    pub fn expected_compilable(&self) -> f64 {
        1.0 - self.defect_rate
    }

    /// Expected fraction of generations passing both checks.
    pub fn expected_normalized(&self) -> f64 {
        self.expected_compilable() * (1.0 - self.unnormalized_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_table2() {
        let g35 = ModelProfile::gpt35();
        assert!((g35.expected_compilable() - 0.412).abs() < 0.001);
        assert!((g35.expected_normalized() - 0.274).abs() < 0.005);
        let g4 = ModelProfile::gpt4();
        assert!((g4.expected_compilable() - 0.686).abs() < 0.001);
        assert!((g4.expected_normalized() - 0.502).abs() < 0.005);
    }

    #[test]
    fn gpt4_is_strictly_better() {
        let (a, b) = (ModelProfile::gpt35(), ModelProfile::gpt4());
        assert!(b.expected_compilable() > a.expected_compilable());
        assert!(b.expected_normalized() > a.expected_normalized());
    }
}
