//! `ParallelGen` — the order-preserving wave dispatcher.
//!
//! A pooled backend holds N live connections and wants one wave of `k`
//! completions fanned across them. The dispatch discipline is the same as
//! `nada-exec`'s `WorkPool`: workers claim submission indices from a
//! shared counter and land each result in its submission-order slot, so
//! the caller sees `out[i]` = the `i`-th requested completion no matter
//! which worker served it or when it finished. The primitive lives here —
//! below the HTTP crate — so the ordering discipline is testable with
//! scripted workers and no sockets.
//!
//! `nada-llm` cannot depend on `nada-exec` (the exec pool's closures are
//! `Fn + Sync`, but a wave worker owns mutable per-connection state), so
//! the dispatcher is its own small scoped-thread loop with the same
//! guarantees: order preservation, exactly-once claims, and panic
//! propagation once every claimed slot is accounted for.

use crate::client::Completion;
use crate::prompt::Prompt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One worker a wave can be fanned across — typically a live pooled
/// connection plus its retry policy. `generate` receives the submission
/// slot it is filling so transports can tag requests for diagnostics.
pub trait WaveWorker: Send {
    /// Produces the completion for submission slot `slot`.
    fn generate(&mut self, prompt: &Prompt, slot: usize) -> Completion;
}

// Closures make convenient scripted workers in tests.
impl<F: FnMut(&Prompt, usize) -> Completion + Send> WaveWorker for F {
    fn generate(&mut self, prompt: &Prompt, slot: usize) -> Completion {
        self(prompt, slot)
    }
}

/// The dispatcher. Stateless — [`ParallelGen::dispatch`] is the whole
/// API; construction exists so callers can name the discipline.
#[derive(Debug, Default, Clone, Copy)]
pub struct ParallelGen;

impl ParallelGen {
    /// Fans `count` generations of `prompt` across `workers`, returning
    /// completions in submission order (`out[i]` is slot `i`'s result).
    ///
    /// With zero or one workers (or `count <= 1`) the dispatch degrades
    /// to a sequential loop on the calling thread — no threads spawned,
    /// bit-identical to serial generation. A panicking worker propagates
    /// to the caller after the scope joins.
    ///
    /// # Panics
    /// Panics when `workers` is empty and `count > 0` — there is nothing
    /// to generate with.
    pub fn dispatch<W: WaveWorker>(
        workers: &mut [W],
        prompt: &Prompt,
        count: usize,
    ) -> Vec<Completion> {
        if count == 0 {
            return Vec::new();
        }
        assert!(
            !workers.is_empty(),
            "cannot dispatch a wave of {count} across zero workers"
        );
        if workers.len() == 1 || count == 1 {
            let worker = &mut workers[0];
            return (0..count).map(|i| worker.generate(prompt, i)).collect();
        }

        let active = workers.len().min(count);
        let next = AtomicUsize::new(0);
        let out: Vec<Mutex<Option<Completion>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let (claims, slots) = (&next, &out);
        std::thread::scope(|scope| {
            for worker in workers[..active].iter_mut() {
                scope.spawn(move || loop {
                    let slot = claims.fetch_add(1, Ordering::Relaxed);
                    if slot >= count {
                        break;
                    }
                    let completion = worker.generate(prompt, slot);
                    *slots[slot].lock().expect("result slot lock") = Some(completion);
                });
            }
        });
        out.into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("scope joined")
                    .expect("every claimed slot was filled")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn completion(text: String) -> Completion {
        Completion {
            code: text,
            reasoning: None,
        }
    }

    #[test]
    fn empty_wave_dispatches_nothing() {
        let mut workers: Vec<fn(&Prompt, usize) -> Completion> = Vec::new();
        // Zero count never touches the (empty) worker set.
        assert!(ParallelGen::dispatch(&mut workers, &Prompt::state("s"), 0).is_empty());
    }

    #[test]
    fn results_land_in_submission_order_despite_completion_order() {
        // Worker latency inverts completion order: higher slots finish
        // first. Submission order must survive.
        let prompt = Prompt::state("s");
        let mut workers: Vec<_> = (0..4)
            .map(|_| {
                |_: &Prompt, slot: usize| {
                    std::thread::sleep(Duration::from_millis(
                        40u64.saturating_sub(slot as u64 * 9),
                    ));
                    completion(format!("slot {slot}\n"))
                }
            })
            .collect();
        let out = ParallelGen::dispatch(&mut workers, &prompt, 8);
        let got: Vec<String> = out.into_iter().map(|c| c.code).collect();
        let want: Vec<String> = (0..8).map(|i| format!("slot {i}\n")).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn each_slot_is_claimed_exactly_once_across_workers() {
        let prompt = Prompt::state("s");
        let claims = AtomicUsize::new(0);
        let mut workers: Vec<_> = (0..3)
            .map(|_| {
                let claims = &claims;
                move |_: &Prompt, slot: usize| {
                    claims.fetch_add(1, Ordering::Relaxed);
                    completion(format!("{slot}\n"))
                }
            })
            .collect();
        let out = ParallelGen::dispatch(&mut workers, &prompt, 10);
        assert_eq!(claims.load(Ordering::Relaxed), 10);
        let distinct: HashSet<String> = out.into_iter().map(|c| c.code).collect();
        assert_eq!(distinct.len(), 10);
    }

    #[test]
    fn single_worker_degrades_to_the_calling_thread() {
        let prompt = Prompt::state("s");
        let main_thread = std::thread::current().id();
        let mut workers = vec![move |_: &Prompt, slot: usize| {
            assert_eq!(std::thread::current().id(), main_thread);
            completion(format!("{slot}\n"))
        }];
        let out = ParallelGen::dispatch(&mut workers, &prompt, 3);
        assert_eq!(
            out.iter().map(|c| c.code.as_str()).collect::<Vec<_>>(),
            vec!["0\n", "1\n", "2\n"]
        );
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let prompt = Prompt::state("s");
        let result = std::panic::catch_unwind(|| {
            let mut workers: Vec<_> = (0..2)
                .map(|_| {
                    |_: &Prompt, slot: usize| {
                        if slot == 1 {
                            panic!("backend exploded");
                        }
                        completion("ok\n".to_string())
                    }
                })
                .collect();
            ParallelGen::dispatch(&mut workers, &prompt, 4)
        });
        assert!(result.is_err(), "a dead wave must not return quietly");
    }
}
