//! Prometheus-style text exposition of a [`MetricsSnapshot`], and the
//! inverse parser.
//!
//! The format is the Prometheus text format restricted to what the
//! registry produces: `# TYPE` comments, bare integer samples, histogram
//! `_bucket{le="..."}`/`_sum`/`_count` series with **cumulative** bucket
//! counts (the Prometheus convention; snapshots store non-cumulative).
//! Because metric names are `[a-z0-9_]` by construction, rendering needs
//! no escaping and [`parse_exposition`] recovers the snapshot exactly —
//! pinned by the round-trip tests.

use crate::registry::{HistogramSnapshot, MetricValue, MetricsSnapshot};
use std::fmt::Write as _;

/// Renders a snapshot in the Prometheus text format.
pub fn render_exposition(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.entries {
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (bound, count) in h.bounds.iter().zip(&h.buckets) {
                    cumulative += count;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                cumulative += h.buckets.last().copied().unwrap_or(0);
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {}", h.count);
            }
        }
    }
    out
}

/// Parses text produced by [`render_exposition`] back into a snapshot.
/// Strict by design: this parser exists so tests (and scrapers) can pin
/// the format, so anything it does not recognize is an error.
pub fn parse_exposition(text: &str) -> Result<MetricsSnapshot, String> {
    let mut entries = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let rest = line
            .strip_prefix("# TYPE ")
            .ok_or_else(|| format!("expected a `# TYPE` line, got `{line}`"))?;
        let (name, kind) = rest
            .split_once(' ')
            .ok_or_else(|| format!("malformed TYPE line `{line}`"))?;
        let value = match kind {
            "counter" => MetricValue::Counter(parse_sample(lines.next(), name)?),
            "gauge" => {
                let raw = sample_value(lines.next(), name)?;
                MetricValue::Gauge(
                    raw.parse()
                        .map_err(|_| format!("bad gauge value `{raw}` for `{name}`"))?,
                )
            }
            "histogram" => MetricValue::Histogram(parse_histogram(&mut lines, name)?),
            other => return Err(format!("unknown metric type `{other}` for `{name}`")),
        };
        entries.push((name.to_string(), value));
    }
    Ok(MetricsSnapshot { entries })
}

/// Pulls the value off a `name value` sample line.
fn sample_value<'a>(line: Option<&'a str>, name: &str) -> Result<&'a str, String> {
    let line = line.ok_or_else(|| format!("missing sample line for `{name}`"))?;
    let (sample_name, value) = line
        .split_once(' ')
        .ok_or_else(|| format!("malformed sample line `{line}`"))?;
    if sample_name != name {
        return Err(format!(
            "expected a sample of `{name}`, got `{sample_name}`"
        ));
    }
    Ok(value)
}

fn parse_sample(line: Option<&str>, name: &str) -> Result<u64, String> {
    let raw = sample_value(line, name)?;
    raw.parse()
        .map_err(|_| format!("bad value `{raw}` for `{name}`"))
}

fn parse_histogram<'a>(
    lines: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
    name: &str,
) -> Result<HistogramSnapshot, String> {
    let bucket_prefix = format!("{name}_bucket{{le=\"");
    let mut bounds = Vec::new();
    let mut cumulative = Vec::new();
    loop {
        let line = lines
            .next()
            .ok_or_else(|| format!("truncated histogram `{name}`"))?;
        if let Some(rest) = line.strip_prefix(&bucket_prefix) {
            let (le, count) = rest
                .split_once("\"} ")
                .ok_or_else(|| format!("malformed bucket line `{line}`"))?;
            let count: u64 = count
                .parse()
                .map_err(|_| format!("bad bucket count in `{line}`"))?;
            if le == "+Inf" {
                cumulative.push(count);
            } else {
                bounds.push(
                    le.parse()
                        .map_err(|_| format!("bad bucket bound in `{line}`"))?,
                );
                cumulative.push(count);
            }
        } else {
            // `_sum` then `_count` close the histogram.
            let sum = {
                let raw = line
                    .strip_prefix(&format!("{name}_sum "))
                    .ok_or_else(|| format!("expected `{name}_sum`, got `{line}`"))?;
                raw.parse::<u64>()
                    .map_err(|_| format!("bad sum in `{line}`"))?
            };
            let count = parse_sample(lines.next(), &format!("{name}_count"))?;
            if cumulative.len() != bounds.len() + 1 {
                return Err(format!("histogram `{name}` is missing its +Inf bucket"));
            }
            // De-cumulate back to the snapshot's per-bucket counts.
            let mut prev = 0u64;
            let mut buckets = Vec::with_capacity(cumulative.len());
            for &c in &cumulative {
                let d = c
                    .checked_sub(prev)
                    .ok_or_else(|| format!("histogram `{name}` has decreasing buckets"))?;
                prev = c;
                buckets.push(d);
            }
            return Ok(HistogramSnapshot {
                bounds,
                buckets,
                count,
                sum,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let r = MetricsRegistry::new();
        r.counter("requests_total").add(17);
        r.gauge("queue_depth").set(-2);
        let h = r.histogram("latency_ns", &[1_000, 1_000_000]);
        h.record(500);
        h.record(500);
        h.record(2_000);
        h.record(5_000_000);
        let snap = r.snapshot();
        let text = render_exposition(&snap);
        let back = parse_exposition(&text).expect("parse back");
        assert_eq!(back, snap);
    }

    #[test]
    fn rendered_buckets_are_cumulative() {
        let r = MetricsRegistry::new();
        let h = r.histogram("h", &[10, 20]);
        h.record(5);
        h.record(15);
        h.record(99);
        let text = render_exposition(&r.snapshot());
        assert!(text.contains("h_bucket{le=\"10\"} 1"), "{text}");
        assert!(text.contains("h_bucket{le=\"20\"} 2"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("h_sum 119"), "{text}");
        assert!(text.contains("h_count 3"), "{text}");
    }

    #[test]
    fn empty_snapshot_renders_and_parses_empty() {
        let snap = MetricsSnapshot::default();
        assert_eq!(parse_exposition(&render_exposition(&snap)).unwrap(), snap);
    }

    #[test]
    fn garbage_is_rejected_loudly() {
        assert!(parse_exposition("nonsense").is_err());
        assert!(parse_exposition("# TYPE x counter\ny 3").is_err());
        assert!(parse_exposition("# TYPE h histogram\nh_sum 0").is_err());
    }
}
