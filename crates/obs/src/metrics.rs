//! The three metric instruments: counters, gauges, fixed-bucket
//! histograms — plus the scoped [`SpanTimer`] that feeds a histogram.
//!
//! Every recording operation is a handful of atomic adds on `Relaxed`
//! ordering: no locks, no allocation, no branching beyond the bucket
//! scan. Telemetry must never perturb the measured system — recording is
//! cheap enough to leave on unconditionally, and nothing here feeds back
//! into search results (pinned by the workspace's bit-identity tests).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, busy workers, uptime).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of `u64` samples (latencies in nanoseconds,
/// by convention — see [`crate::DEFAULT_LATENCY_BOUNDS_NS`]).
///
/// Bucket bounds are fixed at registration: `bounds[i]` is the inclusive
/// upper edge of bucket `i`, and one implicit `+Inf` bucket catches the
/// rest. [`Histogram::record`] is a linear scan over the bounds (a dozen
/// or two comparisons) plus three atomic adds — lock-free and
/// allocation-free, so it is safe on any hot path.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[u64]>,
    /// `bounds.len() + 1` slots; the last is the `+Inf` bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Builds a histogram over `bounds`, which must be non-empty and
    /// strictly increasing (a malformed instrument is a programming
    /// error — fail loudly at registration, not silently at scrape).
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        Self {
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample: the first bucket whose bound is `>= value`
    /// takes it, else the `+Inf` bucket.
    pub fn record(&self, value: u64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a scoped timer that records into this histogram on drop.
    pub fn start_span(&self) -> SpanTimer<'_> {
        SpanTimer {
            histogram: self,
            start: Instant::now(),
        }
    }

    /// The bucket bounds this histogram was built with.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (`bounds.len() + 1` entries, `+Inf` last),
    /// non-cumulative. Concurrent recorders may land between the loads;
    /// each individual value is exact at its own load instant.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Scoped timer from [`Histogram::start_span`]: measures from creation to
/// drop and records the elapsed nanoseconds. Bind it to a named local
/// (`let _span = ...`) — `let _ = ...` drops immediately and records ~0.
#[must_use = "a span records on drop; an unbound span measures nothing"]
pub struct SpanTimer<'a> {
    histogram: &'a Histogram,
    start: Instant,
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.histogram.record_duration(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(5);
        g.inc();
        g.dec();
        g.add(-3);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_edges() {
        let h = Histogram::new(&[10, 100, 1000]);
        // Exactly on a bound → that bucket; one past → the next.
        h.record(0); // <= 10
        h.record(10); // <= 10 (inclusive edge)
        h.record(11); // <= 100
        h.record(100); // <= 100
        h.record(101); // <= 1000
        h.record(1000); // <= 1000
        h.record(1001); // +Inf
        h.record(u64::MAX); // +Inf
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn histogram_sum_and_count_track_samples() {
        let h = Histogram::new(&[5]);
        h.record(3);
        h.record(7);
        assert_eq!((h.count(), h.sum()), (2, 10));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    #[should_panic(expected = "at least one bound")]
    fn empty_bounds_are_rejected() {
        let _ = Histogram::new(&[]);
    }

    #[test]
    fn span_records_into_the_histogram() {
        let h = Histogram::new(&[u64::MAX / 2]);
        {
            let _span = h.start_span();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1_000_000, "1ms sleep records >= 1ms of ns");
    }
}
