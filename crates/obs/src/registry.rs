//! The process-wide metric registry and its snapshot types.
//!
//! Registration (name → instrument) takes a mutex once per call site —
//! call sites cache the returned `Arc` handle (typically in a
//! `OnceLock`), after which recording never touches the registry again.
//! Names are restricted to `[a-z0-9_]` so the Prometheus-style exposition
//! needs no sanitization and round-trips exactly.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};

/// One registered instrument.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named registry of metrics. One process-wide instance lives behind
/// [`MetricsRegistry::global`]; dedicated instances are for tests.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    // BTreeMap so snapshots come out name-sorted without a sort pass.
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// Asserts the naming convention that keeps exposition exact.
fn check_name(name: &str) {
    assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            && !name.starts_with(|c: char| c.is_ascii_digit()),
        "metric name `{name}` must match [a-z_][a-z0-9_]*"
    );
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry every instrumented crate records into.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Returns the counter `name`, registering it on first use. Panics if
    /// `name` is already registered as a different kind — two call sites
    /// disagreeing about an instrument is a bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        check_name(name);
        let mut metrics = self.metrics.lock().expect("metrics registry lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        check_name(name);
        let mut metrics = self.metrics.lock().expect("metrics registry lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram `name` with `bounds`, registering it on
    /// first use. Panics on a kind mismatch or if an existing histogram
    /// was registered with different bounds.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        check_name(name);
        let mut metrics = self.metrics.lock().expect("metrics registry lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => {
                assert!(
                    h.bounds() == bounds,
                    "histogram `{name}` was registered with bounds {:?}, not {bounds:?}",
                    h.bounds()
                );
                h.clone()
            }
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.lock().expect("metrics registry lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every metric, name-sorted. Values are read
    /// per-atomic, so a histogram scraped mid-record may briefly show
    /// `count` ahead of its bucket total — fine for telemetry, documented
    /// so nobody builds invariants on top.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().expect("metrics registry lock");
        MetricsSnapshot {
            entries: metrics
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(HistogramSnapshot {
                            bounds: h.bounds().to_vec(),
                            buckets: h.bucket_counts(),
                            count: h.count(),
                            sum: h.sum(),
                        }),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of a registry, name-sorted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in ascending name order.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Looks one metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }
}

/// One metric's value in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

/// A histogram's state in a snapshot. `buckets` are non-cumulative and
/// have `bounds.len() + 1` entries (`+Inf` last).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_once_then_share_the_handle() {
        let r = MetricsRegistry::new();
        let a = r.counter("hits_total");
        let b = r.counter("hits_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    #[should_panic(expected = "bounds")]
    fn histogram_bounds_mismatch_panics() {
        let r = MetricsRegistry::new();
        let _ = r.histogram("h", &[1, 2]);
        let _ = r.histogram("h", &[1, 3]);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn invalid_names_are_rejected() {
        let r = MetricsRegistry::new();
        let _ = r.counter("bad/name");
    }

    #[test]
    fn snapshot_is_name_sorted_and_lookup_works() {
        let r = MetricsRegistry::new();
        r.counter("zz").add(1);
        r.gauge("aa").set(-5);
        r.histogram("mm", &[10]).record(4);
        let snap = r.snapshot();
        let names: Vec<_> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["aa", "mm", "zz"]);
        assert_eq!(snap.get("aa"), Some(&MetricValue::Gauge(-5)));
        assert_eq!(snap.get("zz"), Some(&MetricValue::Counter(1)));
        assert!(snap.get("absent").is_none());
        match snap.get("mm") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.buckets, vec![1, 0]);
                assert_eq!((h.count, h.sum), (1, 4));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
