//! `nada-obs` — process-wide telemetry for the NADA workspace.
//!
//! A dependency-free metrics subsystem in the house style: a
//! [`MetricsRegistry`] of named atomic [`Counter`]s, [`Gauge`]s and
//! fixed-bucket [`Histogram`]s, plus [`span!`]-style scoped timers.
//! Everything above `std`, nothing below this crate — `nada-obs` sits at
//! the bottom of the dependency graph so every layer (the exec pool, the
//! HTTP LLM client, the pipeline, the serve daemon) can record into one
//! process-wide registry without cycles.
//!
//! # Design rules
//!
//! * **Lock-free hot path.** Registration (name → handle) takes a mutex
//!   once; call sites cache the `Arc` handle in a `OnceLock` and every
//!   subsequent record is a few `Relaxed` atomic adds — zero allocation,
//!   zero locks (pinned by `tests/record_alloc.rs`).
//! * **Observational only.** Nothing here feeds back into the measured
//!   system. Search results are bit-identical with telemetry hot or cold;
//!   the workspace pins that with dedicated identity tests.
//! * **Exact exposition.** Names are `[a-z0-9_]` by construction, so the
//!   Prometheus-style text format ([`render_exposition`]) needs no
//!   sanitization and [`parse_exposition`] inverts it exactly.
//!
//! # Recording
//!
//! ```
//! // Cache the handle; record for free afterwards.
//! use std::sync::{Arc, OnceLock};
//! static REQS: OnceLock<Arc<nada_obs::Counter>> = OnceLock::new();
//! REQS.get_or_init(|| nada_obs::counter("example_requests_total")).inc();
//!
//! // Scoped timing into a default-bucket latency histogram:
//! {
//!     let _span = nada_obs::span!("example_request_duration_ns");
//!     // ... the measured work ...
//! }
//! let snap = nada_obs::MetricsRegistry::global().snapshot();
//! assert!(snap.get("example_requests_total").is_some());
//! ```

mod expose;
mod metrics;
mod registry;

pub use expose::{parse_exposition, render_exposition};
pub use metrics::{Counter, Gauge, Histogram, SpanTimer};
pub use registry::{HistogramSnapshot, MetricValue, MetricsRegistry, MetricsSnapshot};

use std::sync::Arc;

/// Default bucket bounds for latency histograms, in nanoseconds:
/// powers of four from 1 µs to 64 s. Fourteen buckets plus `+Inf` cover
/// everything from a cache lookup to a paper-scale training round with
/// ~2x resolution per decade.
pub const DEFAULT_LATENCY_BOUNDS_NS: [u64; 14] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_000_000_000,
    4_000_000_000,
    16_000_000_000,
    64_000_000_000,
];

/// [`MetricsRegistry::counter`] on the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    MetricsRegistry::global().counter(name)
}

/// [`MetricsRegistry::gauge`] on the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    MetricsRegistry::global().gauge(name)
}

/// [`MetricsRegistry::histogram`] on the global registry.
pub fn histogram(name: &str, bounds: &[u64]) -> Arc<Histogram> {
    MetricsRegistry::global().histogram(name, bounds)
}

/// A global histogram with [`DEFAULT_LATENCY_BOUNDS_NS`] — the standard
/// shape for duration metrics (name them `*_duration_ns`).
pub fn latency_histogram(name: &str) -> Arc<Histogram> {
    MetricsRegistry::global().histogram(name, &DEFAULT_LATENCY_BOUNDS_NS)
}

/// Times the enclosing scope into a global latency histogram.
///
/// Expands to a [`SpanTimer`] guard backed by a per-call-site cached
/// handle, so repeated executions never touch the registry mutex. Bind
/// the result to a named local:
///
/// ```
/// let _span = nada_obs::span!("example_span_duration_ns");
/// // ... measured until the end of scope ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::latency_histogram($name))
            .start_span()
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_helpers_share_one_registry() {
        counter("lib_test_total").add(3);
        assert_eq!(counter("lib_test_total").get(), 3);
        let snap = MetricsRegistry::global().snapshot();
        assert_eq!(snap.get("lib_test_total"), Some(&MetricValue::Counter(3)));
    }

    #[test]
    fn span_macro_records_into_the_global_registry() {
        {
            let _span = span!("lib_test_span_duration_ns");
        }
        {
            let _span = span!("lib_test_span_duration_ns");
        }
        assert_eq!(latency_histogram("lib_test_span_duration_ns").count(), 2);
    }

    #[test]
    fn default_latency_bounds_are_strictly_increasing() {
        assert!(DEFAULT_LATENCY_BOUNDS_NS.windows(2).all(|w| w[0] < w[1]));
    }
}
