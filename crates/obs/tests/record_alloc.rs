//! The record path allocates nothing.
//!
//! Counters, gauges, histogram records and span timers are advertised as
//! safe for any hot path — that claim only holds if recording touches no
//! allocator. Pinned with a counting global allocator, same discipline as
//! the NN/DSL steady-state allocation tests.
//!
//! (Kept as its own integration-test binary so the global allocator does
//! not interfere with unrelated tests.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn recording_is_allocation_free() {
    let registry = nada_obs::MetricsRegistry::new();
    // Registration may allocate (names, handles) — do it up front.
    let counter = registry.counter("hot_total");
    let gauge = registry.gauge("hot_depth");
    let histogram = registry.histogram("hot_duration_ns", &nada_obs::DEFAULT_LATENCY_BOUNDS_NS);
    // Warm the span path once: `Instant::now` has no heap footprint, but
    // run one full cycle anyway before the measured region.
    drop(histogram.start_span());

    let before = allocations();
    for i in 0..10_000u64 {
        counter.inc();
        counter.add(i);
        gauge.inc();
        gauge.dec();
        histogram.record(i * 997);
        let _span = histogram.start_span();
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "metric recording must not touch the allocator"
    );
    assert_eq!(counter.get(), 10_000 + (0..10_000u64).sum::<u64>());
    // 10k records + 10k spans + the warm-up span.
    assert_eq!(histogram.count(), 20_001);
}
