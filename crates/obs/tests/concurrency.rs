//! Concurrent recorders never lose counts.
//!
//! The whole point of the lock-free record path is that any number of
//! threads can hammer one instrument and every increment lands. These
//! properties drive randomized thread/iteration shapes through counters,
//! gauges and histograms and check the totals are exact.

use nada_obs::MetricsRegistry;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn concurrent_counter_increments_all_land(threads in 2usize..8, per_thread in 1u64..2_000) {
        let r = MetricsRegistry::new();
        let c = r.counter("hits_total");
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        prop_assert_eq!(c.get(), threads as u64 * per_thread);
    }

    #[test]
    fn concurrent_histogram_records_preserve_count_and_sum(
        threads in 2usize..8,
        per_thread in 1u64..1_000,
        value in 0u64..100_000,
    ) {
        let r = MetricsRegistry::new();
        let h = r.histogram("latency_ns", &[10, 1_000, 100_000]);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let h = h.clone();
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        h.record(value);
                    }
                });
            }
        });
        let n = threads as u64 * per_thread;
        prop_assert_eq!(h.count(), n);
        prop_assert_eq!(h.sum(), n * value);
        // Every sample is identical, so exactly one bucket holds them all.
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), n);
        prop_assert_eq!(h.bucket_counts().iter().filter(|&&c| c > 0).count(), 1);
    }

    #[test]
    fn concurrent_gauge_adds_balance_out(threads in 2usize..8, per_thread in 1u64..2_000) {
        let r = MetricsRegistry::new();
        let g = r.gauge("depth");
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let g = g.clone();
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        g.inc();
                        g.dec();
                    }
                });
            }
        });
        prop_assert_eq!(g.get(), 0);
    }
}

#[test]
fn concurrent_registration_yields_one_instrument() {
    let r = MetricsRegistry::new();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let r = &r;
            scope.spawn(move || r.counter("contested_total").inc());
        }
    });
    assert_eq!(r.counter("contested_total").get(), 8);
    assert_eq!(r.len(), 1);
}
