//! Deterministic parallel execution utilities.
//!
//! The NADA pipeline fans training runs out across CPU cores in several
//! places (probe training, screening, finalist evaluation, experiment
//! harnesses). They all share one primitive: an **order-preserving parallel
//! map** over an owned work list. It lives here so `nada-core` and
//! `nada-bench` use a single implementation with a single test suite.
//!
//! Two engines provide that primitive:
//!
//! * [`parallel_map`] — the original scoped-thread fan-out: spawns workers
//!   per call, joins them before returning. Simple, but each call pays
//!   thread spawn/join latency and two concurrent calls oversubscribe the
//!   machine instead of sharing it.
//! * [`WorkPool`] / [`pool_map`] — a process-wide pool of long-lived
//!   workers pulling from a shared injector queue. Concurrent maps (e.g.
//!   episodes of different candidate designs) share the same cores: when
//!   one batch runs out of unclaimed items, workers immediately flow to
//!   the next queued batch instead of idling at a join barrier. The
//!   calling thread always participates, claiming items from its own
//!   batch, so nested maps cannot deadlock and a pool with zero workers
//!   degrades to sequential execution.
//!
//! Guarantees (both engines):
//!
//! * **Order preservation** — slot `i` of the output is `f(items[i])`,
//!   regardless of which worker ran it or when it finished.
//! * **Determinism** — `f` receives each item exactly once; nothing about
//!   scheduling leaks into the results (provided `f` itself is pure).
//! * **Panic propagation** — a panic inside `f` propagates to the caller
//!   once every item of the batch has been accounted for.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Process-wide pool telemetry (`nada-obs` global registry). Handles are
/// resolved once and cached; recording is a relaxed atomic add, so the
/// hot path stays lock- and allocation-free. Telemetry is observational
/// only — nothing here feeds back into scheduling or results.
struct PoolMetrics {
    batches: Arc<nada_obs::Counter>,
    items: Arc<nada_obs::Counter>,
    queue_depth: Arc<nada_obs::Gauge>,
    workers_busy: Arc<nada_obs::Gauge>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        batches: nada_obs::counter("workpool_batches_total"),
        items: nada_obs::counter("workpool_items_total"),
        queue_depth: nada_obs::gauge("workpool_queue_depth"),
        workers_busy: nada_obs::gauge("workpool_workers_busy"),
    })
}

/// Order-preserving parallel map over an owned vector using scoped threads,
/// with one worker per available CPU core (capped at the item count).
pub fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    parallel_map_workers(items, available_workers(), f)
}

/// [`parallel_map`] with an explicit worker budget. `max_workers` is clamped
/// to `1..=items.len()`, so `0` degrades to sequential execution rather than
/// deadlocking.
pub fn parallel_map_workers<T: Send, R: Send>(
    items: Vec<T>,
    max_workers: usize,
    f: &(impl Fn(T) -> R + Sync),
) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = max_workers.clamp(1, n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("no poisoned locks: workers do not panic while holding them")
                    .take()
                    .expect("each slot is taken exactly once");
                let result = f(item);
                *out[i].lock().expect("result slot lock") = Some(result);
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("scope joined")
                .expect("all slots filled")
        })
        .collect()
}

/// The default worker budget: one per available CPU core.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The configured worker budget: `NADA_WORKERS` if set to a valid count,
/// else one per available CPU core. `NADA_WORKERS=0` (or `1`) forces
/// fully sequential execution — useful for debugging and for bit-exact
/// single-core reproductions.
pub fn configured_workers() -> usize {
    match std::env::var("NADA_WORKERS") {
        Ok(s) => s.trim().parse().unwrap_or_else(|_| available_workers()),
        Err(_) => available_workers(),
    }
}

/// How many *scheduler lanes* (concurrently progressing jobs) a service
/// multiplexing searches over the shared pool should run for a given
/// worker budget. Pure so it is testable: `0`/`1` workers degrade to one
/// lane — fully sequential, mirroring what `pool_map` does with no pool
/// threads — and wider machines cap at four lanes, since each job already
/// fans its training waves out across the whole pool and extra lanes past
/// that point only grow the working set.
pub fn lanes_for(workers: usize) -> usize {
    workers.clamp(1, 4)
}

/// The scheduler-lane count for this process's configured worker budget
/// (`NADA_WORKERS` honored exactly like [`configured_workers`]).
pub fn scheduler_lanes() -> usize {
    lanes_for(configured_workers())
}

/// The process-wide [`WorkPool`], sized by [`configured_workers`] on first
/// use. All pipeline fan-outs share it, so concurrent stages and nested
/// maps share cores instead of oversubscribing them.
pub fn global_pool() -> &'static WorkPool {
    static POOL: OnceLock<WorkPool> = OnceLock::new();
    POOL.get_or_init(|| WorkPool::new(configured_workers()))
}

/// Order-preserving parallel map over the process-wide pool — a drop-in
/// replacement for [`parallel_map`] that shares workers across concurrent
/// callers instead of spawning a fresh thread set per call.
pub fn pool_map<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    global_pool().map(items, f)
}

/// Index-space variant of [`pool_map`]: `f(i)` fills slot `i` for
/// `i in 0..n`. Lets callers fan out over borrowed state without building
/// an owned work list first.
pub fn pool_map_indexed<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    global_pool().map_indexed(n, f)
}

/// One batch of map work shared between the submitting thread and the
/// pool's workers. `ctx`/`run` type-erase the closure and result slots,
/// which live on the submitter's stack: `map_indexed` does not return
/// until `finished == n`, and claims stop as soon as `next >= n`, so the
/// pointer never outlives the frame it points into.
struct BatchState {
    /// Claim counter: item `i` belongs to whoever fetch-adds `i`.
    next: AtomicUsize,
    n: usize,
    done: Mutex<DoneState>,
    done_cv: Condvar,
    run: unsafe fn(*const (), usize) -> Option<Box<dyn Any + Send>>,
    ctx: *const (),
}

// SAFETY: `ctx` is only dereferenced through `run` for claimed indices
// `< n`, all of which complete before `map_indexed` returns and frees the
// pointee; everything else in the struct is already thread-safe.
unsafe impl Send for BatchState {}
unsafe impl Sync for BatchState {}

struct DoneState {
    finished: usize,
    panic: Option<Box<dyn Any + Send>>,
}

struct PoolQueue {
    batches: VecDeque<Arc<BatchState>>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    cv: Condvar,
}

/// Borrowed-closure context for one `map_indexed` call; lives on the
/// caller's stack for the duration of the call.
struct MapCtx<'a, F, R> {
    f: &'a F,
    slots: &'a [Mutex<Option<R>>],
}

/// Type-erased entry point: runs `f(i)`, stores the result in slot `i`,
/// and returns the panic payload instead if `f` panicked.
///
/// SAFETY: `ctx` must point to a live `MapCtx<F, R>` and `i` must be in
/// `0..slots.len()`; `map_indexed` upholds both.
unsafe fn run_entry<F, R>(ctx: *const (), i: usize) -> Option<Box<dyn Any + Send>>
where
    F: Fn(usize) -> R + Sync,
    R: Send,
{
    let ctx = unsafe { &*(ctx as *const MapCtx<'_, F, R>) };
    match catch_unwind(AssertUnwindSafe(|| (ctx.f)(i))) {
        Ok(r) => {
            *ctx.slots[i].lock().expect("result slot lock") = Some(r);
            None
        }
        Err(payload) => Some(payload),
    }
}

fn record_done(batch: &BatchState, panic: Option<Box<dyn Any + Send>>) {
    let mut done = batch.done.lock().expect("done lock");
    done.finished += 1;
    if done.panic.is_none() {
        done.panic = panic;
    }
    if done.finished == batch.n {
        batch.done_cv.notify_all();
    }
}

/// A pool of long-lived worker threads draining a shared queue of map
/// batches.
///
/// * Batches are served FIFO; when the front batch runs out of unclaimed
///   items, workers flow to the next batch immediately — concurrent maps
///   (different candidate designs, different pipeline stages) share cores
///   with no join barrier between them.
/// * The submitting thread always participates in its own batch, so a
///   pool with zero workers degrades to plain sequential execution and a
///   worker that submits a nested map from inside an item keeps making
///   progress instead of deadlocking: whoever claims an item runs it to
///   completion without ever waiting on the pool.
/// * Results land in their submission-order slot, so output order — and
///   with a pure `f`, output *content* — is independent of worker count
///   and scheduling. One global instance lives behind [`global_pool`];
///   dedicated instances are for tests.
pub struct WorkPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkPool {
    /// Creates a pool with `total_workers` total concurrency: the
    /// submitting thread plus `total_workers - 1` pool threads. `0` and
    /// `1` both mean "no pool threads" (sequential execution).
    pub fn new(total_workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                batches: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let workers = (0..total_workers.saturating_sub(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, workers }
    }

    /// Order-preserving indexed map: returns `[f(0), f(1), ..., f(n-1)]`.
    /// Items run on pool workers and the calling thread; a panic in `f`
    /// resurfaces here once all `n` items are accounted for.
    pub fn map_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let ctx = MapCtx {
            f: &f,
            slots: &slots,
        };
        let batch = Arc::new(BatchState {
            next: AtomicUsize::new(0),
            n,
            done: Mutex::new(DoneState {
                finished: 0,
                panic: None,
            }),
            done_cv: Condvar::new(),
            run: run_entry::<F, R>,
            ctx: &ctx as *const MapCtx<'_, F, R> as *const (),
        });

        let metrics = pool_metrics();
        metrics.batches.inc();
        if !self.workers.is_empty() {
            let mut q = self.shared.queue.lock().expect("pool queue lock");
            q.batches.push_back(batch.clone());
            metrics.queue_depth.set(q.batches.len() as i64);
            drop(q);
            self.shared.cv.notify_all();
        }

        // Participate: claim and run items until none are left unclaimed.
        loop {
            let i = batch.next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            metrics.workers_busy.inc();
            let panic = unsafe { (batch.run)(batch.ctx, i) };
            metrics.workers_busy.dec();
            metrics.items.inc();
            record_done(&batch, panic);
        }

        // Wait for items claimed by workers, then surface the first panic.
        let panic = {
            let mut done = batch.done.lock().expect("done lock");
            while done.finished < n {
                done = batch.done_cv.wait(done).expect("done wait");
            }
            done.panic.take()
        };
        if !self.workers.is_empty() {
            let mut q = self.shared.queue.lock().expect("pool queue lock");
            q.batches.retain(|b| !Arc::ptr_eq(b, &batch));
            metrics.queue_depth.set(q.batches.len() as i64);
        }
        drop(batch);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("batch complete")
                    .expect("all slots filled")
            })
            .collect()
    }

    /// Order-preserving parallel map over an owned work list — the pool
    /// counterpart of [`parallel_map`].
    pub fn map<T: Send, R: Send>(&self, items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
        let n = items.len();
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.map_indexed(n, |i| {
            let item = slots[i]
                .lock()
                .expect("item slot lock")
                .take()
                .expect("each item is taken exactly once");
            f(item)
        })
    }

    /// Total concurrency this pool provides (pool threads + the caller).
    pub fn concurrency(&self) -> usize {
        self.workers.len() + 1
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue lock");
            q.shutdown = true;
        }
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut q = shared.queue.lock().expect("pool queue lock");
    loop {
        if q.shutdown {
            return;
        }
        // Claim one item from the oldest batch that still has any, popping
        // exhausted batches along the way (their claimed items may still
        // be running elsewhere; the submitter tracks completion).
        let metrics = pool_metrics();
        let mut claimed = None;
        while let Some(front) = q.batches.front() {
            let i = front.next.fetch_add(1, Ordering::Relaxed);
            if i < front.n {
                claimed = Some((front.clone(), i));
                break;
            }
            q.batches.pop_front();
            metrics.queue_depth.set(q.batches.len() as i64);
        }
        match claimed {
            Some((batch, i)) => {
                drop(q);
                metrics.workers_busy.inc();
                let panic = unsafe { (batch.run)(batch.ctx, i) };
                metrics.workers_busy.dec();
                metrics.items.inc();
                record_done(&batch, panic);
                q = shared.queue.lock().expect("pool queue lock");
            }
            None => {
                q = shared.cv.wait(q).expect("pool queue wait");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let xs: Vec<usize> = (0..500).collect();
        let ys = parallel_map(xs, &|x| x * 2);
        assert_eq!(ys, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn lane_counts_degrade_to_sequential_and_cap_at_four() {
        assert_eq!(lanes_for(0), 1);
        assert_eq!(lanes_for(1), 1);
        assert_eq!(lanes_for(2), 2);
        assert_eq!(lanes_for(4), 4);
        assert_eq!(lanes_for(64), 4);
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let calls = AtomicUsize::new(0);
        let ys = parallel_map((0..256).collect(), &|x: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 256);
        assert_eq!(ys.len(), 256);
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let ys: Vec<usize> = parallel_map(Vec::<usize>::new(), &|x| x);
        assert!(ys.is_empty());
    }

    #[test]
    fn worker_count_is_clamped() {
        // 0 workers degrades to sequential; absurd worker counts clamp to n.
        assert_eq!(
            parallel_map_workers(vec![1, 2, 3], 0, &|x| x + 1),
            vec![2, 3, 4]
        );
        assert_eq!(
            parallel_map_workers((0..4).collect(), 10_000, &|x: usize| x),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn single_worker_matches_sequential() {
        let xs: Vec<i64> = (0..64).collect();
        let seq: Vec<i64> = xs.iter().map(|x| x * x).collect();
        assert_eq!(parallel_map_workers(xs, 1, &|x| x * x), seq);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            parallel_map((0..64).collect(), &|x: usize| {
                if x == 17 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn results_do_not_depend_on_worker_count() {
        let xs: Vec<u64> = (0..200).collect();
        let expect: Vec<u64> = xs
            .iter()
            .map(|x| x.wrapping_mul(31).rotate_left(7))
            .collect();
        for workers in [1, 2, 3, 8] {
            let got =
                parallel_map_workers(xs.clone(), workers, &|x| x.wrapping_mul(31).rotate_left(7));
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn pool_preserves_order() {
        let pool = WorkPool::new(4);
        let ys = pool.map((0..500).collect(), &|x: usize| x * 2);
        assert_eq!(ys, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_matches_parallel_map_for_any_worker_count() {
        // The pool and the scoped-thread engine must produce identical
        // outputs for a pure f, at every concurrency including the
        // degenerate 0 ("no pool threads") and 1.
        let xs: Vec<u64> = (0..300).collect();
        let expect = parallel_map(xs.clone(), &|x| x.wrapping_mul(37).rotate_left(11));
        for workers in [0, 1, 2, 3, 8] {
            let pool = WorkPool::new(workers);
            let got = pool.map(xs.clone(), &|x| x.wrapping_mul(37).rotate_left(11));
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn pool_runs_every_item_exactly_once() {
        let pool = WorkPool::new(3);
        let calls = AtomicUsize::new(0);
        let ys = pool.map_indexed(256, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 256);
        assert_eq!(ys, (0..256).collect::<Vec<_>>());
    }

    #[test]
    fn pool_empty_input_is_a_no_op() {
        let pool = WorkPool::new(2);
        let ys: Vec<usize> = pool.map(Vec::new(), &|x| x);
        assert!(ys.is_empty());
    }

    #[test]
    fn pool_supports_nested_maps() {
        // An item that fans out again through the same pool must complete
        // even when items outnumber threads at both levels.
        let pool = WorkPool::new(2);
        let got = pool.map_indexed(8, |i| {
            let inner = pool.map_indexed(8, |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn pool_concurrent_batches_share_workers() {
        // Two threads submitting batches at once: both complete and both
        // stay ordered.
        let pool = WorkPool::new(3);
        std::thread::scope(|scope| {
            let a = scope.spawn(|| pool.map_indexed(100, |i| i + 1));
            let b = scope.spawn(|| pool.map_indexed(100, |i| i * 3));
            assert_eq!(a.join().unwrap(), (1..=100).collect::<Vec<_>>());
            assert_eq!(
                b.join().unwrap(),
                (0..100).map(|i| i * 3).collect::<Vec<_>>()
            );
        });
    }

    #[test]
    fn pool_panics_propagate_to_the_submitter() {
        let pool = WorkPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed(64, |i| {
                if i == 17 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        assert!(result.is_err(), "item panic must reach the submitter");
        // The pool must stay usable after a panicked batch.
        assert_eq!(pool.map_indexed(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn pool_records_batch_and_item_telemetry() {
        // Metrics are process-global and other tests record concurrently,
        // so assert deltas are at least what this map contributes.
        let m = pool_metrics();
        let (batches0, items0) = (m.batches.get(), m.items.get());
        let pool = WorkPool::new(2);
        let _ = pool.map_indexed(64, |i| i);
        assert!(m.batches.get() > batches0);
        assert!(m.items.get() >= items0 + 64);
    }

    #[test]
    fn global_pool_is_shared_and_usable() {
        let ys = pool_map((0..64).collect(), &|x: usize| x + 7);
        assert_eq!(ys, (7..71).collect::<Vec<_>>());
        let zs = pool_map_indexed(16, |i| i * i);
        assert_eq!(zs, (0..16).map(|i| i * i).collect::<Vec<_>>());
        assert!(global_pool().concurrency() >= 1);
    }
}
