//! Deterministic scoped-thread execution utilities.
//!
//! The NADA pipeline fans training runs out across CPU cores in several
//! places (probe training, screening, finalist evaluation, experiment
//! harnesses). They all share one primitive: an **order-preserving parallel
//! map** over an owned work list. It lives here so `nada-core` and
//! `nada-bench` use a single implementation with a single test suite.
//!
//! Guarantees:
//!
//! * **Order preservation** — slot `i` of the output is `f(items[i])`,
//!   regardless of which worker ran it or when it finished.
//! * **Determinism** — `f` receives each item exactly once; nothing about
//!   scheduling leaks into the results (provided `f` itself is pure).
//! * **Panic propagation** — a panic inside `f` propagates to the caller
//!   once all workers have stopped picking up new items.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Order-preserving parallel map over an owned vector using scoped threads,
/// with one worker per available CPU core (capped at the item count).
pub fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    parallel_map_workers(items, available_workers(), f)
}

/// [`parallel_map`] with an explicit worker budget. `max_workers` is clamped
/// to `1..=items.len()`, so `0` degrades to sequential execution rather than
/// deadlocking.
pub fn parallel_map_workers<T: Send, R: Send>(
    items: Vec<T>,
    max_workers: usize,
    f: &(impl Fn(T) -> R + Sync),
) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = max_workers.clamp(1, n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("no poisoned locks: workers do not panic while holding them")
                    .take()
                    .expect("each slot is taken exactly once");
                let result = f(item);
                *out[i].lock().expect("result slot lock") = Some(result);
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("scope joined")
                .expect("all slots filled")
        })
        .collect()
}

/// The default worker budget: one per available CPU core.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let xs: Vec<usize> = (0..500).collect();
        let ys = parallel_map(xs, &|x| x * 2);
        assert_eq!(ys, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let calls = AtomicUsize::new(0);
        let ys = parallel_map((0..256).collect(), &|x: usize| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 256);
        assert_eq!(ys.len(), 256);
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let ys: Vec<usize> = parallel_map(Vec::<usize>::new(), &|x| x);
        assert!(ys.is_empty());
    }

    #[test]
    fn worker_count_is_clamped() {
        // 0 workers degrades to sequential; absurd worker counts clamp to n.
        assert_eq!(
            parallel_map_workers(vec![1, 2, 3], 0, &|x| x + 1),
            vec![2, 3, 4]
        );
        assert_eq!(
            parallel_map_workers((0..4).collect(), 10_000, &|x: usize| x),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn single_worker_matches_sequential() {
        let xs: Vec<i64> = (0..64).collect();
        let seq: Vec<i64> = xs.iter().map(|x| x * x).collect();
        assert_eq!(parallel_map_workers(xs, 1, &|x| x * x), seq);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            parallel_map((0..64).collect(), &|x: usize| {
                if x == 17 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn results_do_not_depend_on_worker_count() {
        let xs: Vec<u64> = (0..200).collect();
        let expect: Vec<u64> = xs
            .iter()
            .map(|x| x.wrapping_mul(31).rotate_left(7))
            .collect();
        for workers in [1, 2, 3, 8] {
            let got =
                parallel_map_workers(xs.clone(), workers, &|x| x.wrapping_mul(31).rotate_left(7));
            assert_eq!(got, expect, "workers={workers}");
        }
    }
}
