//! Perturbed / heavy-traffic trace generators.
//!
//! The paper scores designs on one fixed trace set per dataset; AutoRNet
//! (arXiv:2410.17656) argues winners should instead be scored across a
//! *distribution* of stressed conditions. This module wraps any existing
//! [`Trace`] into seeded stressed variants so finalists can be evaluated
//! under conditions the search never saw:
//!
//! * **AR(1) scale shifts** — a slow multiplicative log-space envelope
//!   (congestion epochs, cross-traffic waves) modulates capacity;
//! * **outage injection** — Poisson-arriving windows where capacity
//!   collapses to the generator floor (handover failures, tunnels);
//! * **jitter amplification** — deviations from a rolling local mean are
//!   magnified, making a smooth trace choppy without moving its center;
//! * **load multiplier** — the capacity left for this flow is divided by a
//!   heavy-traffic factor (competing tenants on the bottleneck).
//!
//! Every transform is deterministic in `(config, trace, seed)` and clamps
//! through [`crate::synth::MIN_BANDWIDTH_MBPS`], so stressed variants stay
//! valid replayable traces.

use crate::model::Trace;
use crate::synth::ar1::LogAr1;
use crate::synth::MIN_BANDWIDTH_MBPS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Half-width of the rolling window (in samples) used as the local mean
/// for jitter amplification.
const JITTER_WINDOW: usize = 4;

/// One perturbation distribution over traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbConfig {
    /// Autocorrelation of the AR(1) scale envelope, in `[0, 1)`.
    pub scale_rho: f64,
    /// Innovation std of the AR(1) scale envelope (log space); `0`
    /// disables the envelope.
    pub scale_sigma: f64,
    /// Mean outages per minute of trace time (Poisson); `0` disables
    /// outage injection.
    pub outage_rate_per_min: f64,
    /// Mean outage duration, seconds (exponential).
    pub outage_duration_s: f64,
    /// Multiplier on deviations from the rolling local mean; `1` leaves
    /// jitter unchanged.
    pub jitter_amp: f64,
    /// Background-load factor the capacity is divided by; `1` means the
    /// flow has the link to itself.
    pub load_multiplier: f64,
}

impl Default for PerturbConfig {
    /// The identity: no perturbation at all.
    fn default() -> Self {
        Self {
            scale_rho: 0.0,
            scale_sigma: 0.0,
            outage_rate_per_min: 0.0,
            outage_duration_s: 0.0,
            jitter_amp: 1.0,
            load_multiplier: 1.0,
        }
    }
}

impl PerturbConfig {
    /// Heavy traffic: the link is shared with aggressive cross-traffic —
    /// halved effective capacity plus slow congestion waves.
    pub fn heavy_traffic() -> Self {
        Self {
            scale_rho: 0.98,
            scale_sigma: 0.08,
            load_multiplier: 2.0,
            ..Self::default()
        }
    }

    /// Outage-prone: a nominal link that keeps falling off a cliff
    /// (handover failures, obstructions) — roughly two multi-second
    /// outages per minute.
    pub fn outage_prone() -> Self {
        Self {
            outage_rate_per_min: 2.0,
            outage_duration_s: 3.0,
            ..Self::default()
        }
    }

    /// Jittery: same average capacity, far choppier sample-to-sample —
    /// amplified local deviations plus a light fast envelope.
    pub fn jittery() -> Self {
        Self {
            scale_rho: 0.6,
            scale_sigma: 0.12,
            jitter_amp: 2.5,
            ..Self::default()
        }
    }

    /// Everything at once: the worst plausible network.
    pub fn worst_case() -> Self {
        Self {
            scale_rho: 0.95,
            scale_sigma: 0.1,
            outage_rate_per_min: 1.0,
            outage_duration_s: 2.0,
            jitter_amp: 1.5,
            load_multiplier: 1.5,
        }
    }

    /// The named stress presets, for harnesses that sweep all of them.
    pub fn presets() -> Vec<(&'static str, Self)> {
        vec![
            ("heavy_traffic", Self::heavy_traffic()),
            ("outage_prone", Self::outage_prone()),
            ("jittery", Self::jittery()),
            ("worst_case", Self::worst_case()),
        ]
    }

    /// Produces one stressed variant of `trace`. Deterministic in
    /// `(self, trace, seed)`; the variant keeps the source timestamps and
    /// is named `"<source>+stress<seed>"`.
    pub fn perturb(&self, trace: &Trace, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5732_E550_0000_0011);
        let points = trace.points();
        let raw: Vec<f64> = points.iter().map(|p| p.bandwidth_mbps).collect();
        let max_mbps = raw.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        // Jitter amplification around a rolling local mean.
        let mut bw: Vec<f64> = (0..raw.len())
            .map(|i| {
                if self.jitter_amp == 1.0 {
                    return raw[i];
                }
                let lo = i.saturating_sub(JITTER_WINDOW);
                let hi = (i + JITTER_WINDOW + 1).min(raw.len());
                let local = raw[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
                local + self.jitter_amp * (raw[i] - local)
            })
            .collect();

        // AR(1) multiplicative scale envelope, mean 1 in linear space.
        if self.scale_sigma > 0.0 {
            let envelope = LogAr1::with_mean(1.0, self.scale_rho, self.scale_sigma);
            let mut x = envelope.init_state(&mut rng);
            for b in bw.iter_mut() {
                x = envelope.step(x, &mut rng);
                *b *= x.exp();
            }
        }

        // Poisson outages with exponential durations, walked over the
        // trace timeline.
        if self.outage_rate_per_min > 0.0 {
            let rate_per_s = self.outage_rate_per_min / 60.0;
            let mut t = next_exponential(&mut rng, rate_per_s);
            let end = trace.duration_s();
            while t < end {
                let dur = next_exponential(&mut rng, 1.0 / self.outage_duration_s.max(1e-6));
                for (p, b) in points.iter().zip(bw.iter_mut()) {
                    if p.time_s >= t && p.time_s < t + dur {
                        *b = 0.0;
                    }
                }
                t += dur + next_exponential(&mut rng, rate_per_s);
            }
        }

        // Heavy background load: this flow gets its fair share.
        let bw: Vec<f64> = bw
            .iter()
            .map(|b| (b / self.load_multiplier).clamp(MIN_BANDWIDTH_MBPS, max_mbps.max(1.0)))
            .collect();

        let stressed: Vec<crate::model::TracePoint> = points
            .iter()
            .zip(&bw)
            .map(|(p, &b)| crate::model::TracePoint::new(p.time_s, b))
            .collect();
        Trace::new(format!("{}+stress{seed}", trace.name()), stressed)
            .expect("perturbation preserves trace invariants")
    }

    /// Produces `variants_per_trace` stressed variants of every trace in
    /// `traces`, with seeds derived splitmix-style from `seed` so each
    /// variant is independent yet reproducible.
    pub fn stressed_set(
        &self,
        traces: &[Trace],
        variants_per_trace: usize,
        seed: u64,
    ) -> Vec<Trace> {
        let mut out = Vec::with_capacity(traces.len() * variants_per_trace);
        for (i, trace) in traces.iter().enumerate() {
            for v in 0..variants_per_trace {
                let mix = (i * variants_per_trace + v) as u64;
                out.push(self.perturb(trace, seed ^ mix.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            }
        }
        out
    }
}

/// Exponential draw with the given rate, via inverse transform.
fn next_exponential<R: Rng>(rng: &mut R, rate: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / rate.max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source() -> Trace {
        let bw: Vec<f64> = (0..300).map(|i| 4.0 + (i % 5) as f64 * 0.5).collect();
        Trace::from_uniform("src", 1.0, &bw).unwrap()
    }

    #[test]
    fn identity_config_changes_nothing_but_the_name() {
        let t = source();
        let p = PerturbConfig::default().perturb(&t, 7);
        assert_eq!(p.points().len(), t.points().len());
        for (a, b) in t.points().iter().zip(p.points()) {
            assert_eq!(a.time_s, b.time_s);
            assert_eq!(a.bandwidth_mbps, b.bandwidth_mbps);
        }
        assert_eq!(p.name(), "src+stress7");
    }

    #[test]
    fn perturbation_is_deterministic_in_seed() {
        let t = source();
        let cfg = PerturbConfig::worst_case();
        assert_eq!(cfg.perturb(&t, 3), cfg.perturb(&t, 3));
        assert_ne!(
            cfg.perturb(&t, 3).points(),
            cfg.perturb(&t, 4).points(),
            "different seeds must produce different stress"
        );
    }

    #[test]
    fn stressed_traces_stay_valid_and_floored() {
        let t = source();
        for (name, cfg) in PerturbConfig::presets() {
            let p = cfg.perturb(&t, 11);
            assert!(p.min_mbps() >= MIN_BANDWIDTH_MBPS, "{name}");
            assert_eq!(p.points().len(), t.points().len(), "{name}");
            assert!(p.max_mbps().is_finite(), "{name}");
        }
    }

    #[test]
    fn heavy_traffic_reduces_mean_capacity() {
        let t = source();
        let p = PerturbConfig::heavy_traffic().perturb(&t, 5);
        assert!(
            p.mean_mbps() < 0.8 * t.mean_mbps(),
            "heavy traffic should cut capacity: {} vs {}",
            p.mean_mbps(),
            t.mean_mbps()
        );
    }

    #[test]
    fn outages_floor_some_samples() {
        let t = source();
        let p = PerturbConfig::outage_prone().perturb(&t, 9);
        let floored = p
            .points()
            .iter()
            .filter(|p| p.bandwidth_mbps <= MIN_BANDWIDTH_MBPS)
            .count();
        assert!(floored > 0, "an outage-prone minute should contain outages");
        assert!(
            floored < p.points().len(),
            "the link must not be down the whole time"
        );
    }

    #[test]
    fn jitter_amplification_raises_variance_not_center() {
        let t = source();
        // ×2 keeps the amplified samples inside the clamp range (the
        // ceiling is the source max), so the center genuinely holds.
        let p = PerturbConfig {
            jitter_amp: 2.0,
            ..PerturbConfig::default()
        }
        .perturb(&t, 2);
        assert!(p.std_mbps() > 1.5 * t.std_mbps());
        let drift = (p.mean_mbps() - t.mean_mbps()).abs() / t.mean_mbps();
        assert!(drift < 0.1, "center drifted {drift}");
    }

    #[test]
    fn stressed_set_covers_every_trace_and_variant() {
        let traces = vec![source(), source().scaled(2.0).unwrap()];
        let set = PerturbConfig::jittery().stressed_set(&traces, 3, 42);
        assert_eq!(set.len(), 6);
        // All variants distinct (seeds diverge per slot).
        for i in 0..set.len() {
            for j in i + 1..set.len() {
                assert_ne!(set[i].points(), set[j].points(), "{i} vs {j}");
            }
        }
    }
}
