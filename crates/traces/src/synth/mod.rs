//! Synthetic trace generators calibrated to the paper's Table 1 datasets.
//!
//! The paper's measurement traces (FCC broadband, Starlink RV terminal, 4G
//! and 5G drive measurements) were not released, so each dataset is replaced
//! by a stochastic generator with the qualitative character the paper
//! describes and a mean throughput calibrated to Table 1:
//!
//! | dataset  | mean (paper) | generator character |
//! |----------|--------------|---------------------|
//! | FCC      | 1.3 Mbps     | low, stable, occasional congestion epochs |
//! | Starlink | 1.6 Mbps     | 15-s satellite handover dips, obstruction fades, peak-hour capacity reduced to 1/8 (paper §3.1) |
//! | 4G       | 19.8 Mbps    | strong cell-quality regimes, handover outages |
//! | 5G       | 30.2 Mbps    | very bursty mmWave line-of-sight vs blockage |
//!
//! All generators are built on the same machinery: a Markov regime chain
//! ([`markov::RegimeChain`]) whose regimes each run a log-space AR(1) process
//! ([`ar1::LogAr1`]), plus dataset-specific deterministic events (e.g.
//! Starlink handovers).

pub mod ar1;
pub mod fcc;
pub mod lte4g;
pub mod markov;
pub mod nr5g;
pub mod starlink;

pub use fcc::FccSynth;
pub use lte4g::Lte4gSynth;
pub use nr5g::Nr5gSynth;
pub use starlink::StarlinkSynth;

use crate::model::Trace;

/// A deterministic, seedable trace generator.
pub trait TraceSynthesizer {
    /// Generates one trace of (approximately) `duration_s` seconds.
    /// Equal `(seed, duration_s)` inputs must yield identical traces.
    fn generate(&self, seed: u64, duration_s: f64) -> Trace;

    /// Short identifier used in generated trace names (e.g. `"fcc"`).
    fn tag(&self) -> &'static str;
}

/// Floor applied to every generated bandwidth sample, in Mbps. Keeps traces
/// strictly usable by replay (a trace of all-zero capacity would deadlock
/// a download) while still allowing effectively-outage samples.
pub const MIN_BANDWIDTH_MBPS: f64 = 0.01;

/// Clamps a raw sample into the valid bandwidth range.
pub(crate) fn clamp_bw(x: f64, max_mbps: f64) -> f64 {
    x.clamp(MIN_BANDWIDTH_MBPS, max_mbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every bundled synthesizer must be deterministic and produce valid
    /// traces of roughly the requested duration.
    #[test]
    fn all_synths_are_deterministic_and_valid() {
        let synths: Vec<Box<dyn TraceSynthesizer>> = vec![
            Box::new(FccSynth::default()),
            Box::new(StarlinkSynth::default()),
            Box::new(Lte4gSynth::default()),
            Box::new(Nr5gSynth::default()),
        ];
        for s in &synths {
            let a = s.generate(123, 120.0);
            let b = s.generate(123, 120.0);
            assert_eq!(a, b, "{} not deterministic", s.tag());
            assert!(a.duration_s() >= 100.0, "{} too short", s.tag());
            assert!(a.min_mbps() >= MIN_BANDWIDTH_MBPS);
            let c = s.generate(124, 120.0);
            assert_ne!(a.points(), c.points(), "{} ignores seed", s.tag());
        }
    }
}
