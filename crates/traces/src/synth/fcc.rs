//! FCC broadband trace generator.
//!
//! The paper's FCC dataset comes from the FCC "Measuring Broadband America"
//! program: fixed-line US broadband, averaging 1.3 Mbps in the selected
//! traces. Fixed broadband is comparatively stable, with occasional
//! congestion epochs (shared-segment contention in the evening), so the
//! generator uses two regimes: `steady` and `congested`.

use super::ar1::LogAr1;
use super::markov::{Regime, RegimeChain};
use super::{clamp_bw, TraceSynthesizer};
use crate::model::Trace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Synthesizer for FCC-like fixed broadband traces (Table 1: 1.3 Mbps mean).
#[derive(Debug, Clone)]
pub struct FccSynth {
    /// Mean throughput of the uncongested regime, Mbps.
    pub steady_mean_mbps: f64,
    /// Mean throughput during congestion epochs, Mbps.
    pub congested_mean_mbps: f64,
    /// Sampling interval of the generated trace, seconds.
    pub dt_s: f64,
    /// Upper clamp on generated bandwidth, Mbps.
    pub max_mbps: f64,
}

impl Default for FccSynth {
    fn default() -> Self {
        Self {
            // Dwell-weighted mean (120 s steady @1.55, 40 s congested @0.65)
            // = 1.33 Mbps, matching Table 1's 1.3 Mbps.
            steady_mean_mbps: 1.55,
            congested_mean_mbps: 0.65,
            dt_s: 1.0,
            max_mbps: 12.0,
        }
    }
}

impl FccSynth {
    fn chain(&self) -> RegimeChain {
        RegimeChain::new(vec![
            Regime {
                name: "steady",
                process: LogAr1::with_mean(self.steady_mean_mbps, 0.97, 0.05),
                mean_dwell_s: 120.0,
                exit_weights: vec![0.0, 1.0],
            },
            Regime {
                name: "congested",
                process: LogAr1::with_mean(self.congested_mean_mbps, 0.90, 0.15),
                mean_dwell_s: 40.0,
                exit_weights: vec![1.0, 0.0],
            },
        ])
    }
}

impl TraceSynthesizer for FccSynth {
    fn generate(&self, seed: u64, duration_s: f64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFCC0_0000_0000_0001);
        let n = (duration_s / self.dt_s).ceil().max(2.0) as usize;
        let raw = self.chain().sample(&mut rng, n, self.dt_s);
        let bw: Vec<f64> = raw
            .into_iter()
            .map(|x| clamp_bw(x, self.max_mbps))
            .collect();
        Trace::from_uniform(format!("fcc-{seed:08x}"), self.dt_s, &bw)
            .expect("generator emits valid samples")
    }

    fn tag(&self) -> &'static str {
        "fcc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_near_table1_target() {
        let s = FccSynth::default();
        // Average many traces to beat regime-sampling noise.
        let mut acc = 0.0;
        let n = 40;
        for seed in 0..n {
            acc += s.generate(seed, 600.0).mean_mbps();
        }
        let mean = acc / n as f64;
        assert!(
            (mean - 1.3).abs() < 0.35,
            "mean {mean} too far from 1.3 Mbps"
        );
    }

    #[test]
    fn traces_are_comparatively_stable() {
        let s = FccSynth::default();
        let t = s.generate(9, 600.0);
        // Coefficient of variation well below the cellular generators'.
        let cv = t.std_mbps() / t.mean_mbps();
        assert!(cv < 1.0, "cv {cv} too bursty for broadband");
    }
}
