//! Markov regime switching over AR(1) throughput processes.
//!
//! Real access networks move between qualitatively different operating
//! regimes — a congested cable segment, a 4G cell edge, a blocked mmWave
//! beam. Each [`Regime`] couples a [`LogAr1`] throughput process with an
//! exponential dwell time; the [`RegimeChain`] switches between regimes with
//! configurable transition weights.

use super::ar1::LogAr1;
use rand::Rng;

/// One operating regime: an AR(1) throughput process plus dwell dynamics.
#[derive(Debug, Clone)]
pub struct Regime {
    /// Human-readable label (appears in docs/tests, not in traces).
    pub name: &'static str,
    /// Log-space AR(1) process generating throughput while in this regime.
    pub process: LogAr1,
    /// Mean sojourn time in seconds (exponentially distributed).
    pub mean_dwell_s: f64,
    /// Relative transition weights *into* each regime when leaving this one.
    /// Length must equal the number of regimes; the self-weight is ignored.
    pub exit_weights: Vec<f64>,
}

/// A continuous-time Markov chain over [`Regime`]s producing a throughput
/// sample stream at fixed `dt_s` steps.
#[derive(Debug, Clone)]
pub struct RegimeChain {
    regimes: Vec<Regime>,
}

impl RegimeChain {
    /// Builds a chain, validating that exit weights are consistent.
    ///
    /// # Panics
    /// Panics if `regimes` is empty or an `exit_weights` length mismatches —
    /// these are programmer errors in generator calibration, not user input.
    pub fn new(regimes: Vec<Regime>) -> Self {
        assert!(!regimes.is_empty(), "need at least one regime");
        let n = regimes.len();
        for r in &regimes {
            assert_eq!(
                r.exit_weights.len(),
                n,
                "exit_weights length mismatch in {}",
                r.name
            );
            assert!(r.mean_dwell_s > 0.0, "dwell must be positive in {}", r.name);
        }
        Self { regimes }
    }

    /// The configured regimes.
    pub fn regimes(&self) -> &[Regime] {
        &self.regimes
    }

    /// Approximate stationary linear-mean throughput of the chain, weighting
    /// each regime's stationary mean by its expected dwell share. Exact for
    /// symmetric exit weights; used only for calibration sanity checks.
    pub fn approx_mean_mbps(&self) -> f64 {
        let total: f64 = self.regimes.iter().map(|r| r.mean_dwell_s).sum();
        self.regimes
            .iter()
            .map(|r| r.process.stationary_mean() * r.mean_dwell_s / total)
            .sum()
    }

    /// Runs the chain for `n_steps` samples spaced `dt_s` apart, returning
    /// raw (unclamped) throughput samples in Mbps.
    pub fn sample<R: Rng>(&self, rng: &mut R, n_steps: usize, dt_s: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(n_steps);
        let mut regime = rng.gen_range(0..self.regimes.len());
        let mut state = self.regimes[regime].process.init_state(rng);
        let mut dwell_left = exponential(rng, self.regimes[regime].mean_dwell_s);
        for _ in 0..n_steps {
            let r = &self.regimes[regime];
            state = r.process.step(state, rng);
            out.push(state.exp());
            dwell_left -= dt_s;
            if dwell_left <= 0.0 {
                regime = self.pick_next(rng, regime);
                let r = &self.regimes[regime];
                dwell_left = exponential(rng, r.mean_dwell_s);
                // Re-anchor the AR state near the new regime's mean so the
                // switch is visible (fast re-convergence, not a hard jump).
                state = 0.5 * state + 0.5 * r.process.init_state(rng);
            }
        }
        out
    }

    fn pick_next<R: Rng>(&self, rng: &mut R, from: usize) -> usize {
        let w = &self.regimes[from].exit_weights;
        let total: f64 = w
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != from)
            .map(|(_, x)| *x)
            .sum();
        if total <= 0.0 {
            return from; // absorbing regime
        }
        let mut draw = rng.gen::<f64>() * total;
        for (i, &x) in w.iter().enumerate() {
            if i == from {
                continue;
            }
            draw -= x;
            if draw <= 0.0 {
                return i;
            }
        }
        from
    }
}

/// Exponential draw with the given mean.
pub fn exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_regime_chain() -> RegimeChain {
        RegimeChain::new(vec![
            Regime {
                name: "good",
                process: LogAr1::with_mean(10.0, 0.8, 0.1),
                mean_dwell_s: 30.0,
                exit_weights: vec![0.0, 1.0],
            },
            Regime {
                name: "bad",
                process: LogAr1::with_mean(1.0, 0.8, 0.1),
                mean_dwell_s: 10.0,
                exit_weights: vec![1.0, 0.0],
            },
        ])
    }

    #[test]
    fn approx_mean_is_dwell_weighted() {
        let c = two_regime_chain();
        let expected = (10.0 * 30.0 + 1.0 * 10.0) / 40.0;
        assert!((c.approx_mean_mbps() - expected).abs() < 1e-9);
    }

    #[test]
    fn sampling_visits_both_regimes() {
        let c = two_regime_chain();
        let mut rng = StdRng::seed_from_u64(3);
        let xs = c.sample(&mut rng, 5_000, 1.0);
        let lows = xs.iter().filter(|&&x| x < 3.0).count();
        let highs = xs.iter().filter(|&&x| x > 5.0).count();
        assert!(lows > 100, "never saw the bad regime ({lows})");
        assert!(highs > 1_000, "never saw the good regime ({highs})");
    }

    #[test]
    fn empirical_mean_tracks_dwell_weighting() {
        let c = two_regime_chain();
        let mut rng = StdRng::seed_from_u64(4);
        let xs = c.sample(&mut rng, 200_000, 1.0);
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let expected = c.approx_mean_mbps();
        assert!(
            (mean - expected).abs() / expected < 0.15,
            "empirical {mean} vs expected {expected}"
        );
    }

    #[test]
    fn exponential_mean_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, 7.0)).sum::<f64>() / n as f64;
        assert!((mean - 7.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "exit_weights")]
    fn rejects_mismatched_exit_weights() {
        let _ = RegimeChain::new(vec![Regime {
            name: "solo",
            process: LogAr1::with_mean(1.0, 0.5, 0.1),
            mean_dwell_s: 1.0,
            exit_weights: vec![1.0, 1.0],
        }]);
    }
}
