//! Log-space AR(1) throughput process.
//!
//! Throughput processes are heavy-tailed and strictly positive, so we model
//! `log` throughput as a first-order autoregressive process:
//!
//! ```text
//! x_{t+1} = mu + rho * (x_t - mu) + sigma * eps,   eps ~ N(0, 1)
//! ```
//!
//! and emit `exp(x_t)`. The stationary distribution is lognormal with
//! log-mean `mu` and log-variance `sigma^2 / (1 - rho^2)`; [`LogAr1::with_mean`]
//! solves for `mu` so the *linear* stationary mean hits a calibration target.

use rand::Rng;

/// AR(1) process over log-throughput. See the module docs for the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogAr1 {
    /// Stationary mean of the log process.
    pub mu_log: f64,
    /// Autocorrelation, in `[0, 1)`. Higher = smoother.
    pub rho: f64,
    /// Innovation standard deviation (log space).
    pub sigma: f64,
}

impl LogAr1 {
    /// Builds a process whose stationary *linear* mean is `mean_mbps`, with
    /// autocorrelation `rho` and innovation std `sigma` (log space).
    ///
    /// Uses the lognormal mean identity `E[exp(x)] = exp(mu + v/2)` with
    /// `v = sigma^2 / (1 - rho^2)`.
    pub fn with_mean(mean_mbps: f64, rho: f64, sigma: f64) -> Self {
        assert!(mean_mbps > 0.0, "mean must be positive");
        assert!((0.0..1.0).contains(&rho), "rho must be in [0,1)");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        let v = sigma * sigma / (1.0 - rho * rho);
        Self {
            mu_log: mean_mbps.ln() - v / 2.0,
            rho,
            sigma,
        }
    }

    /// Stationary linear mean of the emitted (exponentiated) process, Mbps.
    pub fn stationary_mean(&self) -> f64 {
        let v = self.sigma * self.sigma / (1.0 - self.rho * self.rho);
        (self.mu_log + v / 2.0).exp()
    }

    /// Draws an initial log-state from the stationary distribution.
    pub fn init_state<R: Rng>(&self, rng: &mut R) -> f64 {
        let stationary_sd = self.sigma / (1.0 - self.rho * self.rho).sqrt();
        self.mu_log + stationary_sd * gaussian(rng)
    }

    /// Advances the log-state by one step and returns the new log-state.
    pub fn step<R: Rng>(&self, state: f64, rng: &mut R) -> f64 {
        self.mu_log + self.rho * (state - self.mu_log) + self.sigma * gaussian(rng)
    }
}

/// Standard normal draw via Box–Muller (avoids an extra distribution crate).
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stationary_mean_matches_target() {
        let p = LogAr1::with_mean(19.8, 0.9, 0.3);
        assert!((p.stationary_mean() - 19.8).abs() < 1e-9);
    }

    #[test]
    fn empirical_mean_converges_to_target() {
        let p = LogAr1::with_mean(5.0, 0.8, 0.25);
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = p.init_state(&mut rng);
        let mut acc = 0.0;
        let n = 200_000;
        for _ in 0..n {
            x = p.step(x, &mut rng);
            acc += x.exp();
        }
        let mean = acc / n as f64;
        assert!(
            (mean - 5.0).abs() / 5.0 < 0.05,
            "empirical mean {mean} too far from 5.0"
        );
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let (mut m, mut v) = (0.0, 0.0);
        for _ in 0..n {
            let g = gaussian(&mut rng);
            m += g;
            v += g * g;
        }
        m /= n as f64;
        v = v / n as f64 - m * m;
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.05, "var {v}");
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn rejects_rho_out_of_range() {
        let _ = LogAr1::with_mean(1.0, 1.0, 0.1);
    }
}
