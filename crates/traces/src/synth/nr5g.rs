//! 5G/NR cellular trace generator.
//!
//! The paper measured downlink throughput of US 5G networks (Table 1 mean:
//! 30.2 Mbps). 5G — particularly mmWave — is extremely bursty: line-of-sight
//! beams deliver very high rates, while blockage (a passing truck, the user's
//! own body) collapses throughput within milliseconds. The generator uses a
//! `los` / `midband` / `blocked` regime chain with short blockage dwells.

use super::ar1::LogAr1;
use super::markov::{Regime, RegimeChain};
use super::{clamp_bw, TraceSynthesizer};
use crate::model::Trace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Synthesizer for 5G/NR-like cellular traces (Table 1: 30.2 Mbps mean).
#[derive(Debug, Clone)]
pub struct Nr5gSynth {
    /// Mean throughput with a line-of-sight mmWave beam, Mbps.
    pub los_mean_mbps: f64,
    /// Mean throughput on mid-band carriers, Mbps.
    pub midband_mean_mbps: f64,
    /// Mean throughput during blockage, Mbps.
    pub blocked_mean_mbps: f64,
    /// Sampling interval, seconds.
    pub dt_s: f64,
    /// Upper clamp on generated bandwidth, Mbps.
    pub max_mbps: f64,
}

impl Default for Nr5gSynth {
    fn default() -> Self {
        Self {
            // Dwell-weighted mean (25 s @52, 40 s @22, 5 s @3) = 31.4 Mbps,
            // matching Table 1's 30.2 Mbps.
            los_mean_mbps: 52.0,
            midband_mean_mbps: 22.0,
            blocked_mean_mbps: 3.0,
            dt_s: 0.5,
            max_mbps: 220.0,
        }
    }
}

impl Nr5gSynth {
    fn chain(&self) -> RegimeChain {
        RegimeChain::new(vec![
            Regime {
                name: "los",
                process: LogAr1::with_mean(self.los_mean_mbps, 0.90, 0.35),
                mean_dwell_s: 25.0,
                exit_weights: vec![0.0, 2.0, 2.0],
            },
            Regime {
                name: "midband",
                process: LogAr1::with_mean(self.midband_mean_mbps, 0.93, 0.25),
                mean_dwell_s: 40.0,
                exit_weights: vec![2.0, 0.0, 1.0],
            },
            Regime {
                name: "blocked",
                process: LogAr1::with_mean(self.blocked_mean_mbps, 0.85, 0.50),
                mean_dwell_s: 5.0,
                exit_weights: vec![2.0, 2.0, 0.0],
            },
        ])
    }
}

impl TraceSynthesizer for Nr5gSynth {
    fn generate(&self, seed: u64, duration_s: f64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5650_0000_0000_0004);
        let n = (duration_s / self.dt_s).ceil().max(2.0) as usize;
        let raw = self.chain().sample(&mut rng, n, self.dt_s);
        let bw: Vec<f64> = raw
            .into_iter()
            .map(|x| clamp_bw(x, self.max_mbps))
            .collect();
        Trace::from_uniform(format!("5g-{seed:08x}"), self.dt_s, &bw)
            .expect("generator emits valid samples")
    }

    fn tag(&self) -> &'static str {
        "5g"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_near_table1_target() {
        let s = Nr5gSynth::default();
        let mut acc = 0.0;
        let n = 40;
        for seed in 0..n {
            acc += s.generate(seed, 400.0).mean_mbps();
        }
        let mean = acc / n as f64;
        assert!(
            (mean - 30.2).abs() < 7.0,
            "mean {mean} too far from 30.2 Mbps"
        );
    }

    #[test]
    fn blockage_produces_deep_fades() {
        let t = Nr5gSynth::default().generate(17, 600.0);
        let deep = t.points().iter().filter(|p| p.bandwidth_mbps < 5.0).count();
        assert!(deep > 5, "expected blockage fades, found {deep}");
    }

    #[test]
    fn faster_than_4g_on_average() {
        let g5 = Nr5gSynth::default().generate(2, 600.0).mean_mbps();
        let g4 = super::super::lte4g::Lte4gSynth::default()
            .generate(2, 600.0)
            .mean_mbps();
        assert!(g5 > g4, "5G mean {g5} should exceed 4G mean {g4}");
    }
}
