//! 4G/LTE cellular trace generator.
//!
//! The paper measured downlink throughput of US 4G networks (Table 1 mean:
//! 19.8 Mbps). LTE throughput is dominated by cell quality — near-cell,
//! mid-cell and cell-edge conditions — with brief outages at handovers.
//! The generator uses a three-regime chain plus exponential handover events.

use super::ar1::LogAr1;
use super::markov::{exponential, Regime, RegimeChain};
use super::{clamp_bw, TraceSynthesizer, MIN_BANDWIDTH_MBPS};
use crate::model::Trace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Synthesizer for 4G/LTE-like cellular traces (Table 1: 19.8 Mbps mean).
#[derive(Debug, Clone)]
pub struct Lte4gSynth {
    /// Mean throughput near the cell center, Mbps.
    pub good_mean_mbps: f64,
    /// Mean throughput in mid-cell conditions, Mbps.
    pub mid_mean_mbps: f64,
    /// Mean throughput at the cell edge, Mbps.
    pub edge_mean_mbps: f64,
    /// Mean time between handover outages, seconds.
    pub handover_interval_s: f64,
    /// Duration of a handover outage, seconds.
    pub handover_outage_s: f64,
    /// Sampling interval, seconds.
    pub dt_s: f64,
    /// Upper clamp on generated bandwidth, Mbps.
    pub max_mbps: f64,
}

impl Default for Lte4gSynth {
    fn default() -> Self {
        Self {
            // Dwell-weighted mean (45 s @29, 30 s @14, 12 s @3.5) = 20.3 Mbps,
            // matching Table 1's 19.8 Mbps.
            good_mean_mbps: 29.0,
            mid_mean_mbps: 14.0,
            edge_mean_mbps: 3.5,
            handover_interval_s: 25.0,
            handover_outage_s: 0.4,
            dt_s: 0.5,
            max_mbps: 110.0,
        }
    }
}

impl Lte4gSynth {
    fn chain(&self) -> RegimeChain {
        RegimeChain::new(vec![
            Regime {
                name: "good",
                process: LogAr1::with_mean(self.good_mean_mbps, 0.95, 0.30),
                mean_dwell_s: 45.0,
                exit_weights: vec![0.0, 3.0, 1.0],
            },
            Regime {
                name: "mid",
                process: LogAr1::with_mean(self.mid_mean_mbps, 0.92, 0.35),
                mean_dwell_s: 30.0,
                exit_weights: vec![2.0, 0.0, 2.0],
            },
            Regime {
                name: "edge",
                process: LogAr1::with_mean(self.edge_mean_mbps, 0.90, 0.45),
                mean_dwell_s: 12.0,
                exit_weights: vec![1.0, 3.0, 0.0],
            },
        ])
    }
}

impl TraceSynthesizer for Lte4gSynth {
    fn generate(&self, seed: u64, duration_s: f64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4643_0000_0000_0003);
        let n = (duration_s / self.dt_s).ceil().max(2.0) as usize;
        let mut bw = self.chain().sample(&mut rng, n, self.dt_s);

        // Handover outages: exponential inter-arrivals, hard drop to the floor.
        let outage_steps = (self.handover_outage_s / self.dt_s).ceil() as usize;
        let mut t_next = exponential(&mut rng, self.handover_interval_s);
        let mut i = 0usize;
        while i < n {
            let t = i as f64 * self.dt_s;
            if t >= t_next {
                for sample in bw.iter_mut().skip(i).take(outage_steps) {
                    *sample = MIN_BANDWIDTH_MBPS;
                }
                t_next = t + exponential(&mut rng, self.handover_interval_s);
                i += outage_steps.max(1);
            } else {
                i += 1;
            }
        }

        let bw: Vec<f64> = bw.into_iter().map(|x| clamp_bw(x, self.max_mbps)).collect();
        Trace::from_uniform(format!("4g-{seed:08x}"), self.dt_s, &bw)
            .expect("generator emits valid samples")
    }

    fn tag(&self) -> &'static str {
        "4g"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_near_table1_target() {
        let s = Lte4gSynth::default();
        let mut acc = 0.0;
        let n = 40;
        for seed in 0..n {
            acc += s.generate(seed, 400.0).mean_mbps();
        }
        let mean = acc / n as f64;
        assert!(
            (mean - 19.8).abs() < 5.0,
            "mean {mean} too far from 19.8 Mbps"
        );
    }

    #[test]
    fn handover_outages_hit_the_floor() {
        let t = Lte4gSynth::default().generate(21, 600.0);
        let floors = t
            .points()
            .iter()
            .filter(|p| p.bandwidth_mbps <= MIN_BANDWIDTH_MBPS + 1e-12)
            .count();
        assert!(floors > 0, "expected at least one handover outage");
    }

    #[test]
    fn high_variance_regimes() {
        let t = Lte4gSynth::default().generate(8, 600.0);
        let cv = t.std_mbps() / t.mean_mbps();
        assert!(cv > 0.35, "cv {cv} too smooth for drive-test LTE");
    }
}
