//! Starlink satellite trace generator.
//!
//! The paper collected throughput from a stationary Starlink RV terminal and
//! then *reduced the link capacity to one-eighth* to model peak-hour
//! contention (§3.1). LEO satellite links have two distinctive artifacts this
//! generator reproduces:
//!
//! * **15-second handovers** — the terminal re-points to a new satellite on a
//!   fixed 15 s schedule, causing a short, deep throughput dip;
//! * **obstruction fades** — trees/weather cause sporadic multi-second
//!   near-outages.
//!
//! The regime chain models off-peak capacity (`clear`/`contended`/
//! `obstructed`); [`StarlinkSynth::capacity_scale`] then applies the paper's
//! 1/8 reduction, landing the mean near Table 1's 1.6 Mbps.

use super::ar1::LogAr1;
use super::markov::{exponential, Regime, RegimeChain};
use super::{clamp_bw, TraceSynthesizer};
use crate::model::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesizer for Starlink-like LEO satellite traces
/// (Table 1: 1.6 Mbps mean after the 1/8 peak-hour reduction).
#[derive(Debug, Clone)]
pub struct StarlinkSynth {
    /// Mean off-peak throughput with a clear sky view, Mbps.
    pub clear_mean_mbps: f64,
    /// Mean throughput while the cell is contended, Mbps.
    pub contended_mean_mbps: f64,
    /// Mean throughput under partial obstruction, Mbps.
    pub obstructed_mean_mbps: f64,
    /// Satellite handover period, seconds (Starlink reschedules every 15 s).
    pub handover_period_s: f64,
    /// Duration of each handover dip, seconds.
    pub handover_dip_s: f64,
    /// Multiplier applied to throughput during a handover dip.
    pub handover_dip_factor: f64,
    /// Global capacity multiplier; the paper uses 1/8 for peak hours.
    pub capacity_scale: f64,
    /// Sampling interval, seconds.
    pub dt_s: f64,
    /// Upper clamp on generated bandwidth (pre-scaling), Mbps.
    pub max_mbps: f64,
}

impl Default for StarlinkSynth {
    fn default() -> Self {
        Self {
            clear_mean_mbps: 17.0,
            contended_mean_mbps: 8.0,
            obstructed_mean_mbps: 2.0,
            handover_period_s: 15.0,
            handover_dip_s: 0.8,
            handover_dip_factor: 0.35,
            capacity_scale: 1.0 / 8.0,
            dt_s: 0.4,
            max_mbps: 60.0,
        }
    }
}

impl StarlinkSynth {
    /// An off-peak variant (no 1/8 reduction) for what-if experiments.
    pub fn off_peak() -> Self {
        Self {
            capacity_scale: 1.0,
            ..Self::default()
        }
    }

    fn chain(&self) -> RegimeChain {
        RegimeChain::new(vec![
            Regime {
                name: "clear",
                process: LogAr1::with_mean(self.clear_mean_mbps, 0.90, 0.20),
                mean_dwell_s: 60.0,
                exit_weights: vec![0.0, 3.0, 1.0],
            },
            Regime {
                name: "contended",
                process: LogAr1::with_mean(self.contended_mean_mbps, 0.85, 0.35),
                mean_dwell_s: 30.0,
                exit_weights: vec![3.0, 0.0, 1.0],
            },
            Regime {
                name: "obstructed",
                process: LogAr1::with_mean(self.obstructed_mean_mbps, 0.80, 0.50),
                mean_dwell_s: 6.0,
                exit_weights: vec![2.0, 1.0, 0.0],
            },
        ])
    }
}

impl TraceSynthesizer for StarlinkSynth {
    fn generate(&self, seed: u64, duration_s: f64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A7E_111E_0000_0002);
        let n = (duration_s / self.dt_s).ceil().max(2.0) as usize;
        let mut bw = self.chain().sample(&mut rng, n, self.dt_s);

        // Deterministic 15-s handover schedule with per-trace phase jitter.
        let phase = rng.gen::<f64>() * self.handover_period_s;
        let mut next_handover = phase + exponential(&mut rng, 0.2); // tiny extra jitter
        let dip_steps = (self.handover_dip_s / self.dt_s).ceil() as usize;
        let mut i = 0usize;
        while i < n {
            let t = i as f64 * self.dt_s;
            if t >= next_handover {
                for sample in bw.iter_mut().skip(i).take(dip_steps) {
                    *sample *= self.handover_dip_factor;
                }
                next_handover += self.handover_period_s;
                i += dip_steps.max(1);
            } else {
                i += 1;
            }
        }

        let bw: Vec<f64> = bw
            .into_iter()
            .map(|x| clamp_bw(x, self.max_mbps) * self.capacity_scale)
            .map(|x| x.max(super::MIN_BANDWIDTH_MBPS))
            .collect();
        Trace::from_uniform(format!("starlink-{seed:08x}"), self.dt_s, &bw)
            .expect("generator emits valid samples")
    }

    fn tag(&self) -> &'static str {
        "starlink"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_near_table1_target() {
        let s = StarlinkSynth::default();
        let mut acc = 0.0;
        let n = 40;
        for seed in 0..n {
            acc += s.generate(seed, 400.0).mean_mbps();
        }
        let mean = acc / n as f64;
        assert!(
            (mean - 1.6).abs() < 0.5,
            "mean {mean} too far from 1.6 Mbps"
        );
    }

    #[test]
    fn peak_hour_scale_divides_capacity_by_eight() {
        let peak = StarlinkSynth::default().generate(5, 400.0);
        let off = StarlinkSynth::off_peak().generate(5, 400.0);
        let ratio = off.mean_mbps() / peak.mean_mbps();
        assert!(
            (ratio - 8.0).abs() < 0.8,
            "scale ratio {ratio} should be ~8"
        );
    }

    #[test]
    fn handover_dips_are_visible() {
        // With dips every 15 s, a 400 s trace must contain many samples far
        // below the trace median.
        let t = StarlinkSynth::off_peak().generate(11, 400.0);
        let mut v: Vec<f64> = t.points().iter().map(|p| p.bandwidth_mbps).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        let deep = v.iter().filter(|&&x| x < 0.5 * median).count();
        assert!(
            deep > 10,
            "expected handover dips, found {deep} deep samples"
        );
    }

    #[test]
    fn bursty_compared_to_broadband() {
        let t = StarlinkSynth::default().generate(3, 400.0);
        let cv = t.std_mbps() / t.mean_mbps();
        assert!(cv > 0.3, "cv {cv} suspiciously smooth for satellite");
    }
}
