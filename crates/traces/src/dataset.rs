//! Dataset registry: the paper's Table 1 constants and train/test splits.

use crate::model::Trace;
use crate::stats::DatasetStats;
use crate::synth::{FccSynth, Lte4gSynth, Nr5gSynth, StarlinkSynth, TraceSynthesizer};

/// The four network environments evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DatasetKind {
    /// US fixed broadband (FCC "Measuring Broadband America").
    Fcc,
    /// Starlink RV terminal with peak-hour 1/8 capacity reduction.
    Starlink,
    /// US 4G/LTE downlink drive measurements.
    Lte4g,
    /// US 5G/NR downlink drive measurements.
    Nr5g,
}

impl DatasetKind {
    /// All datasets, in the paper's presentation order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Fcc,
        DatasetKind::Starlink,
        DatasetKind::Lte4g,
        DatasetKind::Nr5g,
    ];

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Fcc => "FCC",
            DatasetKind::Starlink => "Starlink",
            DatasetKind::Lte4g => "4G",
            DatasetKind::Nr5g => "5G",
        }
    }

    /// Inverse of [`DatasetKind::name`], case-insensitively (CLI/wire
    /// lookups).
    pub fn from_name(name: &str) -> Option<Self> {
        DatasetKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name))
    }

    /// Table 1 row for this dataset (paper-reported values).
    pub fn paper_spec(&self) -> DatasetSpec {
        match self {
            DatasetKind::Fcc => DatasetSpec {
                kind: *self,
                train_traces: 85,
                train_hours: 10.0,
                test_traces: 290,
                test_hours: 25.7,
                mean_throughput_mbps: 1.3,
                train_epochs: 40_000,
                test_interval: 500,
            },
            DatasetKind::Starlink => DatasetSpec {
                kind: *self,
                train_traces: 13,
                train_hours: 0.9,
                test_traces: 12,
                test_hours: 0.8,
                mean_throughput_mbps: 1.6,
                train_epochs: 4_000,
                test_interval: 100,
            },
            DatasetKind::Lte4g => DatasetSpec {
                kind: *self,
                train_traces: 119,
                train_hours: 10.0,
                test_traces: 121,
                test_hours: 10.0,
                mean_throughput_mbps: 19.8,
                train_epochs: 40_000,
                test_interval: 500,
            },
            DatasetKind::Nr5g => DatasetSpec {
                kind: *self,
                train_traces: 117,
                train_hours: 10.0,
                test_traces: 119,
                test_hours: 10.0,
                mean_throughput_mbps: 30.2,
                train_epochs: 40_000,
                test_interval: 500,
            },
        }
    }

    /// The synthesizer that replaces this dataset's measurements.
    pub fn synthesizer(&self) -> Box<dyn TraceSynthesizer> {
        match self {
            DatasetKind::Fcc => Box::new(FccSynth::default()),
            DatasetKind::Starlink => Box::new(StarlinkSynth::default()),
            DatasetKind::Lte4g => Box::new(Lte4gSynth::default()),
            DatasetKind::Nr5g => Box::new(Nr5gSynth::default()),
        }
    }
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DatasetSpec {
    /// Which dataset this row describes.
    pub kind: DatasetKind,
    /// Number of traces in the training split.
    pub train_traces: usize,
    /// Total duration of the training split, hours.
    pub train_hours: f64,
    /// Number of traces in the testing split.
    pub test_traces: usize,
    /// Total duration of the testing split, hours.
    pub test_hours: f64,
    /// Average throughput across the dataset, Mbps.
    pub mean_throughput_mbps: f64,
    /// RL training epochs the paper runs on this dataset.
    pub train_epochs: usize,
    /// Epochs between checkpoint evaluations on the test set.
    pub test_interval: usize,
}

/// Synthesis scale: paper-sized datasets are large (hundreds of traces,
/// dozens of hours); `Quick` shrinks counts and durations for CI/examples
/// while preserving each dataset's statistical character.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DatasetScale {
    /// Table 1 trace counts and total durations.
    Paper,
    /// ~10% of the trace count, ~6 minutes per trace.
    Quick,
    /// A handful of short traces; used by unit tests.
    Tiny,
}

/// A synthesized (or loaded) dataset with train/test splits.
#[derive(Debug, Clone)]
pub struct TraceDataset {
    /// Which environment the traces model.
    pub kind: DatasetKind,
    /// Training traces.
    pub train: Vec<Trace>,
    /// Held-out testing traces.
    pub test: Vec<Trace>,
}

impl TraceDataset {
    /// Synthesizes the dataset at the requested scale. Deterministic in
    /// `(kind, scale, seed)`.
    pub fn synthesize(kind: DatasetKind, scale: DatasetScale, seed: u64) -> Self {
        let spec = kind.paper_spec();
        let synth = kind.synthesizer();
        let (train_n, test_n) = match scale {
            DatasetScale::Paper => (spec.train_traces, spec.test_traces),
            DatasetScale::Quick => (
                (spec.train_traces / 10).max(4),
                (spec.test_traces / 10).max(4),
            ),
            DatasetScale::Tiny => (2, 2),
        };
        let (train_dur, test_dur) = match scale {
            DatasetScale::Paper => (
                spec.train_hours * 3600.0 / spec.train_traces as f64,
                spec.test_hours * 3600.0 / spec.test_traces as f64,
            ),
            DatasetScale::Quick => (360.0, 360.0),
            DatasetScale::Tiny => (120.0, 120.0),
        };
        let train = (0..train_n)
            .map(|i| synth.generate(splitmix(seed, i as u64), train_dur))
            .collect();
        let test = (0..test_n)
            .map(|i| synth.generate(splitmix(seed ^ 0xDEAD_BEEF, 1_000_000 + i as u64), test_dur))
            .collect();
        Self { kind, train, test }
    }

    /// Builds a dataset from externally loaded traces (e.g. real
    /// cooked/Mahimahi files).
    pub fn from_traces(kind: DatasetKind, train: Vec<Trace>, test: Vec<Trace>) -> Self {
        Self { kind, train, test }
    }

    /// Summary statistics over all (train + test) traces.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::from_dataset(self)
    }
}

/// SplitMix64 sub-seed derivation so per-trace seeds never collide between
/// train/test or across datasets.
fn splitmix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_match_table1() {
        let fcc = DatasetKind::Fcc.paper_spec();
        assert_eq!(fcc.train_traces, 85);
        assert_eq!(fcc.test_traces, 290);
        assert_eq!(fcc.train_epochs, 40_000);
        let sl = DatasetKind::Starlink.paper_spec();
        assert_eq!(sl.train_epochs, 4_000);
        assert_eq!(sl.test_interval, 100);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = TraceDataset::synthesize(DatasetKind::Fcc, DatasetScale::Tiny, 5);
        let b = TraceDataset::synthesize(DatasetKind::Fcc, DatasetScale::Tiny, 5);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn train_and_test_do_not_share_traces() {
        let d = TraceDataset::synthesize(DatasetKind::Lte4g, DatasetScale::Tiny, 5);
        for tr in &d.train {
            for te in &d.test {
                assert_ne!(tr.points(), te.points());
            }
        }
    }

    #[test]
    fn quick_scale_counts() {
        let d = TraceDataset::synthesize(DatasetKind::Nr5g, DatasetScale::Quick, 1);
        assert_eq!(d.train.len(), 11); // 117/10 = 11
        assert_eq!(d.test.len(), 11);
    }

    #[test]
    fn all_kinds_synthesize() {
        for kind in DatasetKind::ALL {
            let d = TraceDataset::synthesize(kind, DatasetScale::Tiny, 9);
            assert!(!d.train.is_empty());
            assert!(d.stats().mean_throughput_mbps > 0.0);
        }
    }
}
