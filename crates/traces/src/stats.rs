//! Dataset summary statistics — the measured side of the paper's Table 1.

use crate::dataset::TraceDataset;
use crate::model::Trace;

/// Aggregate statistics for a [`TraceDataset`], mirroring Table 1 columns.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DatasetStats {
    /// Number of training traces.
    pub train_traces: usize,
    /// Total training duration, hours.
    pub train_hours: f64,
    /// Number of testing traces.
    pub test_traces: usize,
    /// Total testing duration, hours.
    pub test_hours: f64,
    /// Duration-weighted mean throughput over all traces, Mbps.
    pub mean_throughput_mbps: f64,
    /// Duration-weighted throughput standard deviation, Mbps.
    pub std_throughput_mbps: f64,
    /// Minimum single sample over all traces, Mbps.
    pub min_throughput_mbps: f64,
    /// Maximum single sample over all traces, Mbps.
    pub max_throughput_mbps: f64,
}

impl DatasetStats {
    /// Computes statistics from a dataset's train and test splits.
    pub fn from_dataset(ds: &TraceDataset) -> Self {
        let all: Vec<&Trace> = ds.train.iter().chain(ds.test.iter()).collect();
        let total_s: f64 = all.iter().map(|t| t.duration_s()).sum();
        let mean = all
            .iter()
            .map(|t| t.mean_mbps() * t.duration_s())
            .sum::<f64>()
            / total_s;
        // Pooled variance: E[X^2] - mean^2, duration-weighted.
        let ex2 = all
            .iter()
            .map(|t| {
                let m = t.mean_mbps();
                let s = t.std_mbps();
                (s * s + m * m) * t.duration_s()
            })
            .sum::<f64>()
            / total_s;
        Self {
            train_traces: ds.train.len(),
            train_hours: ds.train.iter().map(|t| t.duration_s()).sum::<f64>() / 3600.0,
            test_traces: ds.test.len(),
            test_hours: ds.test.iter().map(|t| t.duration_s()).sum::<f64>() / 3600.0,
            mean_throughput_mbps: mean,
            std_throughput_mbps: (ex2 - mean * mean).max(0.0).sqrt(),
            min_throughput_mbps: all
                .iter()
                .map(|t| t.min_mbps())
                .fold(f64::INFINITY, f64::min),
            max_throughput_mbps: all.iter().map(|t| t.max_mbps()).fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetKind, DatasetScale};

    #[test]
    fn stats_cover_both_splits() {
        let ds = TraceDataset::synthesize(DatasetKind::Fcc, DatasetScale::Tiny, 1);
        let s = ds.stats();
        assert_eq!(s.train_traces, 2);
        assert_eq!(s.test_traces, 2);
        assert!(s.train_hours > 0.0 && s.test_hours > 0.0);
        assert!(s.min_throughput_mbps <= s.mean_throughput_mbps);
        assert!(s.mean_throughput_mbps <= s.max_throughput_mbps);
        assert!(s.std_throughput_mbps >= 0.0);
    }

    #[test]
    fn flat_dataset_has_zero_std() {
        let t1 = Trace::from_uniform("a", 1.0, &[5.0; 10]).unwrap();
        let t2 = Trace::from_uniform("b", 1.0, &[5.0; 10]).unwrap();
        let ds = TraceDataset::from_traces(DatasetKind::Fcc, vec![t1], vec![t2]);
        let s = ds.stats();
        assert!((s.mean_throughput_mbps - 5.0).abs() < 1e-9);
        assert!(s.std_throughput_mbps < 1e-6);
    }
}
