//! Trace replay: walking a trace while downloading bytes.
//!
//! The chunk simulator and the emulator both need the same primitive: "at the
//! cursor's current position in the trace, how long does it take to transfer
//! N bytes?", with the trace wrapping around when a session outlives it (the
//! behaviour of Pensieve's `fixed_env.py`).

use crate::model::Trace;

/// Number of payload bytes in one Mahimahi-style MTU packet.
pub const PACKET_PAYLOAD_BYTES: f64 = 1500.0;

/// A replay cursor over a [`Trace`].
///
/// The cursor tracks a position `(segment index, offset within segment)` and
/// advances as bytes are transferred at the piecewise-constant trace
/// bandwidth. When the trace ends the cursor wraps to the beginning, so a
/// video session can be longer than the trace.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a Trace,
    /// Index of the current segment (points[seg] is in effect).
    seg: usize,
    /// Seconds elapsed within the current segment.
    offset_s: f64,
    /// Total seconds of (virtual, wrapped) trace time consumed so far.
    elapsed_s: f64,
    /// How many times the cursor wrapped past the trace end.
    wraps: u32,
}

/// Result of a byte transfer performed through [`TraceCursor::download`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Wall-clock seconds the transfer took (trace time, excludes RTT).
    pub duration_s: f64,
    /// Average throughput over the transfer, in Mbps.
    pub throughput_mbps: f64,
}

impl<'a> TraceCursor<'a> {
    /// Creates a cursor positioned at the start of `trace`.
    pub fn new(trace: &'a Trace) -> Self {
        Self {
            trace,
            seg: 0,
            offset_s: 0.0,
            elapsed_s: 0.0,
            wraps: 0,
        }
    }

    /// Creates a cursor at a pseudo-random start offset derived from `seed`,
    /// matching Pensieve's practice of starting each training episode at a
    /// random point of the trace.
    pub fn with_random_start(trace: &'a Trace, seed: u64) -> Self {
        // SplitMix64 so we do not need a full RNG for one draw.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let frac = (z >> 11) as f64 / (1u64 << 53) as f64;
        let mut c = Self::new(trace);
        c.advance_time(frac * trace.duration_s());
        // A fresh session starts here: forget warm-up accounting.
        c.elapsed_s = 0.0;
        c.wraps = 0;
        c
    }

    /// The trace this cursor replays.
    pub fn trace(&self) -> &'a Trace {
        self.trace
    }

    /// Total trace seconds consumed via this cursor.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// How many times the cursor wrapped past the end of the trace.
    pub fn wraps(&self) -> u32 {
        self.wraps
    }

    /// Bandwidth in effect at the cursor position, in Mbps.
    pub fn current_bandwidth_mbps(&self) -> f64 {
        self.trace.points()[self.seg].bandwidth_mbps
    }

    /// Seconds remaining in the current piecewise-constant segment.
    fn segment_remaining_s(&self) -> f64 {
        let pts = self.trace.points();
        let seg_end = if self.seg + 1 < pts.len() {
            pts[self.seg + 1].time_s
        } else {
            self.trace.duration_s()
        };
        (seg_end - pts[self.seg].time_s) - self.offset_s
    }

    fn step_segment(&mut self) {
        self.seg += 1;
        self.offset_s = 0.0;
        if self.seg >= self.trace.points().len() {
            self.seg = 0;
            self.wraps += 1;
        }
    }

    /// Advances the cursor by `dt_s` seconds without transferring data
    /// (used for playback-only intervals, e.g. Pensieve's 500 ms sleeps).
    pub fn advance_time(&mut self, dt_s: f64) {
        assert!(
            dt_s.is_finite() && dt_s >= 0.0,
            "advance_time requires dt_s >= 0"
        );
        let mut rem = dt_s;
        self.elapsed_s += dt_s;
        loop {
            let seg_rem = self.segment_remaining_s();
            if rem < seg_rem {
                self.offset_s += rem;
                return;
            }
            rem -= seg_rem;
            self.step_segment();
        }
    }

    /// Transfers `bytes` through the link starting at the cursor position and
    /// returns the wall-clock duration, advancing the cursor.
    ///
    /// Zero-bandwidth (outage) segments are crossed by waiting them out; if
    /// the *whole* trace has zero mean bandwidth this would never finish, so
    /// traces validated by dataset construction always carry positive mean.
    pub fn download(&mut self, bytes: f64) -> Transfer {
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "download requires bytes >= 0"
        );
        let mut remaining_bits = bytes * 8.0;
        let mut duration_s = 0.0;
        while remaining_bits > 0.0 {
            let bw_bits_per_s = self.current_bandwidth_mbps() * 1e6;
            let seg_rem = self.segment_remaining_s();
            if bw_bits_per_s <= 0.0 {
                duration_s += seg_rem;
                self.step_segment();
                continue;
            }
            let seg_capacity_bits = bw_bits_per_s * seg_rem;
            if seg_capacity_bits >= remaining_bits {
                let dt = remaining_bits / bw_bits_per_s;
                duration_s += dt;
                self.offset_s += dt;
                remaining_bits = 0.0;
            } else {
                remaining_bits -= seg_capacity_bits;
                duration_s += seg_rem;
                self.step_segment();
            }
        }
        self.elapsed_s += duration_s;
        let throughput_mbps = if duration_s > 0.0 {
            bytes * 8.0 / duration_s / 1e6
        } else {
            self.current_bandwidth_mbps()
        };
        Transfer {
            duration_s,
            throughput_mbps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Trace;

    fn flat(mbps: f64) -> Trace {
        Trace::from_uniform("flat", 1.0, &[mbps; 10]).unwrap()
    }

    #[test]
    fn download_on_flat_link_matches_arithmetic() {
        let t = flat(8.0); // 8 Mbps = 1 MB/s
        let mut c = TraceCursor::new(&t);
        let tr = c.download(2_000_000.0);
        assert!((tr.duration_s - 2.0).abs() < 1e-9);
        assert!((tr.throughput_mbps - 8.0).abs() < 1e-9);
    }

    #[test]
    fn download_spanning_segments_uses_both_rates() {
        // 1s at 8 Mbps (1 MB), then 80 Mbps.
        let t = Trace::from_uniform("step", 1.0, &[8.0, 80.0]).unwrap();
        let mut c = TraceCursor::new(&t);
        // 2 MB: first MB takes 1 s, second MB takes 0.1 s.
        let tr = c.download(2_000_000.0);
        assert!((tr.duration_s - 1.1).abs() < 1e-9);
    }

    #[test]
    fn outage_segments_are_waited_out() {
        let t = Trace::from_uniform("outage", 1.0, &[0.0, 8.0]).unwrap();
        let mut c = TraceCursor::new(&t);
        let tr = c.download(1_000_000.0);
        // 1 s outage + 1 s transfer.
        assert!((tr.duration_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cursor_wraps_around_trace_end() {
        let t = Trace::from_uniform("short", 1.0, &[8.0, 8.0]).unwrap(); // 2 s long
        let mut c = TraceCursor::new(&t);
        c.download(4_000_000.0); // needs 4 s => wraps once
        assert!(c.wraps() >= 1);
        assert!((c.elapsed_s() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn advance_time_skips_bandwidth() {
        let t = Trace::from_uniform("step", 1.0, &[8.0, 80.0]).unwrap();
        let mut c = TraceCursor::new(&t);
        c.advance_time(1.5);
        assert!((c.current_bandwidth_mbps() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn random_start_is_deterministic_per_seed() {
        let t = flat(8.0);
        let a = TraceCursor::with_random_start(&t, 42).seg;
        let b = TraceCursor::with_random_start(&t, 42).seg;
        let c = TraceCursor::with_random_start(&t, 43).seg;
        assert_eq!(a, b);
        // Different seeds usually land elsewhere; don't require it strictly,
        // but the offsets must be valid either way.
        let _ = c;
    }

    #[test]
    fn zero_byte_download_is_instant() {
        let t = flat(8.0);
        let mut c = TraceCursor::new(&t);
        let tr = c.download(0.0);
        assert_eq!(tr.duration_s, 0.0);
    }
}
