//! Core trace data model: a validated, piecewise-constant bandwidth series.

use std::fmt;

/// One sample of a network trace: from `time_s` until the next point's time,
/// the link delivers `bandwidth_mbps` megabits per second.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TracePoint {
    /// Timestamp of this sample, seconds from trace start. Non-negative and
    /// strictly increasing within a [`Trace`].
    pub time_s: f64,
    /// Link capacity from this timestamp onwards, in megabits per second.
    /// Non-negative; zero models a complete outage.
    pub bandwidth_mbps: f64,
}

impl TracePoint {
    /// Convenience constructor.
    pub fn new(time_s: f64, bandwidth_mbps: f64) -> Self {
        Self {
            time_s,
            bandwidth_mbps,
        }
    }
}

/// Errors produced while constructing or parsing a [`Trace`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The trace has no points.
    Empty,
    /// Timestamps are not strictly increasing at the given index.
    NonMonotonicTime { index: usize },
    /// A bandwidth sample is negative or not finite at the given index.
    InvalidBandwidth { index: usize, value: f64 },
    /// A timestamp is negative or not finite at the given index.
    InvalidTime { index: usize, value: f64 },
    /// A trace file line could not be parsed.
    Parse { line: usize, message: String },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace has no points"),
            TraceError::NonMonotonicTime { index } => {
                write!(
                    f,
                    "trace timestamps not strictly increasing at index {index}"
                )
            }
            TraceError::InvalidBandwidth { index, value } => {
                write!(f, "invalid bandwidth {value} at index {index}")
            }
            TraceError::InvalidTime { index, value } => {
                write!(f, "invalid timestamp {value} at index {index}")
            }
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A network throughput trace: a named, validated series of [`TracePoint`]s.
///
/// Bandwidth is piecewise-constant: between `points[i].time_s` and
/// `points[i+1].time_s` the link runs at `points[i].bandwidth_mbps`. The final
/// point's bandwidth extends to [`Trace::duration_s`] (the last timestamp plus
/// the median inter-sample gap), and replay wraps around for longer sessions.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Trace {
    name: String,
    points: Vec<TracePoint>,
    duration_s: f64,
}

impl Trace {
    /// Builds a trace from points, validating the invariants:
    /// at least one point, finite non-negative bandwidths, finite non-negative
    /// strictly-increasing timestamps.
    pub fn new(name: impl Into<String>, points: Vec<TracePoint>) -> Result<Self, TraceError> {
        if points.is_empty() {
            return Err(TraceError::Empty);
        }
        let mut prev = f64::NEG_INFINITY;
        for (index, p) in points.iter().enumerate() {
            if !p.time_s.is_finite() || p.time_s < 0.0 {
                return Err(TraceError::InvalidTime {
                    index,
                    value: p.time_s,
                });
            }
            if !p.bandwidth_mbps.is_finite() || p.bandwidth_mbps < 0.0 {
                return Err(TraceError::InvalidBandwidth {
                    index,
                    value: p.bandwidth_mbps,
                });
            }
            if p.time_s <= prev {
                return Err(TraceError::NonMonotonicTime { index });
            }
            prev = p.time_s;
        }
        let duration_s = Self::infer_duration(&points);
        Ok(Self {
            name: name.into(),
            points,
            duration_s,
        })
    }

    /// Builds a trace from uniformly spaced samples starting at t = 0.
    pub fn from_uniform(
        name: impl Into<String>,
        dt_s: f64,
        bandwidths_mbps: &[f64],
    ) -> Result<Self, TraceError> {
        let points = bandwidths_mbps
            .iter()
            .enumerate()
            .map(|(i, &b)| TracePoint::new(i as f64 * dt_s, b))
            .collect();
        Self::new(name, points)
    }

    fn infer_duration(points: &[TracePoint]) -> f64 {
        let last = points.last().expect("validated non-empty").time_s;
        if points.len() < 2 {
            return last + 1.0;
        }
        let mut gaps: Vec<f64> = points
            .windows(2)
            .map(|w| w[1].time_s - w[0].time_s)
            .collect();
        gaps.sort_by(|a, b| a.partial_cmp(b).expect("gaps are finite"));
        last + gaps[gaps.len() / 2]
    }

    /// The trace name (used in dataset listings and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The validated sample series.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the trace holds no samples (never true for a constructed trace).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total covered duration in seconds: the final timestamp extended by the
    /// median sampling interval, so the last sample carries real width.
    pub fn duration_s(&self) -> f64 {
        self.duration_s
    }

    /// Time-weighted mean throughput in Mbps.
    pub fn mean_mbps(&self) -> f64 {
        let mut acc = 0.0;
        for w in self.points.windows(2) {
            acc += w[0].bandwidth_mbps * (w[1].time_s - w[0].time_s);
        }
        let last = self.points.last().expect("non-empty");
        acc += last.bandwidth_mbps * (self.duration_s - last.time_s);
        acc / self.duration_s
    }

    /// Minimum bandwidth sample in Mbps.
    pub fn min_mbps(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.bandwidth_mbps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum bandwidth sample in Mbps.
    pub fn max_mbps(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.bandwidth_mbps)
            .fold(0.0, f64::max)
    }

    /// Time-weighted standard deviation of throughput in Mbps.
    pub fn std_mbps(&self) -> f64 {
        let mean = self.mean_mbps();
        let mut acc = 0.0;
        for w in self.points.windows(2) {
            let d = w[0].bandwidth_mbps - mean;
            acc += d * d * (w[1].time_s - w[0].time_s);
        }
        let last = self.points.last().expect("non-empty");
        let d = last.bandwidth_mbps - mean;
        acc += d * d * (self.duration_s - last.time_s);
        (acc / self.duration_s).sqrt()
    }

    /// Bandwidth in effect at time `t_s` (piecewise-constant lookup, no wrap).
    /// Times beyond the last sample return the last sample's bandwidth; the
    /// caller handles wrap-around (see [`crate::replay::TraceCursor`]).
    pub fn bandwidth_at(&self, t_s: f64) -> f64 {
        match self
            .points
            .binary_search_by(|p| p.time_s.partial_cmp(&t_s).expect("finite times"))
        {
            Ok(i) => self.points[i].bandwidth_mbps,
            Err(0) => self.points[0].bandwidth_mbps,
            Err(i) => self.points[i - 1].bandwidth_mbps,
        }
    }

    /// Returns a copy with every bandwidth multiplied by `factor`
    /// (the paper divides Starlink capacity by 8 to model peak hours).
    pub fn scaled(&self, factor: f64) -> Result<Self, TraceError> {
        let points = self
            .points
            .iter()
            .map(|p| TracePoint::new(p.time_s, p.bandwidth_mbps * factor))
            .collect();
        let mut t = Self::new(self.name.clone(), points)?;
        t.name = format!("{}-x{factor:.4}", self.name);
        Ok(t)
    }

    /// Returns a copy truncated to at most `max_duration_s` seconds.
    pub fn truncated(&self, max_duration_s: f64) -> Result<Self, TraceError> {
        let points: Vec<TracePoint> = self
            .points
            .iter()
            .copied()
            .take_while(|p| p.time_s < max_duration_s)
            .collect();
        Self::new(self.name.clone(), points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri_trace() -> Trace {
        Trace::from_uniform("tri", 1.0, &[1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Trace::new("e", vec![]), Err(TraceError::Empty));
    }

    #[test]
    fn rejects_non_monotonic_time() {
        let pts = vec![TracePoint::new(0.0, 1.0), TracePoint::new(0.0, 2.0)];
        assert_eq!(
            Trace::new("t", pts),
            Err(TraceError::NonMonotonicTime { index: 1 })
        );
    }

    #[test]
    fn rejects_negative_bandwidth() {
        let pts = vec![TracePoint::new(0.0, -1.0)];
        assert!(matches!(
            Trace::new("t", pts),
            Err(TraceError::InvalidBandwidth { index: 0, .. })
        ));
    }

    #[test]
    fn rejects_nan_time() {
        let pts = vec![TracePoint::new(f64::NAN, 1.0)];
        assert!(matches!(
            Trace::new("t", pts),
            Err(TraceError::InvalidTime { index: 0, .. })
        ));
    }

    #[test]
    fn duration_extends_by_median_gap() {
        let t = tri_trace();
        assert!((t.duration_s() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_is_time_weighted() {
        let t = tri_trace();
        // 1 Mbps for 1s, 2 for 1s, 3 for 1s => mean 2.
        assert!((t.mean_mbps() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_lookup_is_piecewise_constant() {
        let t = tri_trace();
        assert_eq!(t.bandwidth_at(0.0), 1.0);
        assert_eq!(t.bandwidth_at(0.5), 1.0);
        assert_eq!(t.bandwidth_at(1.0), 2.0);
        assert_eq!(t.bandwidth_at(2.7), 3.0);
        assert_eq!(t.bandwidth_at(99.0), 3.0);
    }

    #[test]
    fn scaling_scales_mean() {
        let t = tri_trace().scaled(0.5).unwrap();
        assert!((t.mean_mbps() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncation_keeps_prefix() {
        let t = tri_trace().truncated(2.0).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.max_mbps(), 2.0);
    }

    #[test]
    fn min_max_std() {
        let t = tri_trace();
        assert_eq!(t.min_mbps(), 1.0);
        assert_eq!(t.max_mbps(), 3.0);
        let expected_var = ((1.0f64 - 2.0).powi(2) + 0.0 + (3.0f64 - 2.0).powi(2)) / 3.0;
        assert!((t.std_mbps() - expected_var.sqrt()).abs() < 1e-12);
    }
}
