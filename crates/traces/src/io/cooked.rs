//! Pensieve "cooked trace" format: one `time_s bandwidth_mbps` pair per line.
//!
//! This is the format consumed by the original Pensieve simulator
//! (`load_trace.py`): whitespace-separated floats, timestamps in seconds,
//! bandwidth in Mbps. Round-trips exactly (modulo float formatting).

use crate::model::{Trace, TraceError, TracePoint};
use std::fmt::Write as _;

/// Serializes a trace to cooked format.
pub fn write_cooked(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 24);
    for p in trace.points() {
        writeln!(out, "{:.6}\t{:.6}", p.time_s, p.bandwidth_mbps).expect("string write");
    }
    out
}

/// Parses a cooked-format trace. Blank lines and `#` comments are skipped.
pub fn read_cooked(name: impl Into<String>, text: &str) -> Result<Trace, TraceError> {
    let mut points = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let t: f64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing timestamp"))?
            .parse()
            .map_err(|e| parse_err(lineno, &format!("bad timestamp: {e}")))?;
        let bw: f64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing bandwidth"))?
            .parse()
            .map_err(|e| parse_err(lineno, &format!("bad bandwidth: {e}")))?;
        if it.next().is_some() {
            return Err(parse_err(lineno, "trailing fields"));
        }
        points.push(TracePoint::new(t, bw));
    }
    Trace::new(name, points)
}

fn parse_err(lineno: usize, message: &str) -> TraceError {
    TraceError::Parse {
        line: lineno + 1,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_points() {
        let t = Trace::from_uniform("rt", 0.5, &[1.25, 2.5, 0.75]).unwrap();
        let text = write_cooked(&t);
        let back = read_cooked("rt", &text).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in back.points().iter().zip(t.points()) {
            assert!((a.time_s - b.time_s).abs() < 1e-6);
            assert!((a.bandwidth_mbps - b.bandwidth_mbps).abs() < 1e-6);
        }
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n\n0.0 1.0\n1.0 2.0\n";
        let t = read_cooked("c", text).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn reports_line_numbers_on_error() {
        let text = "0.0 1.0\nnot_a_number 2.0\n";
        match read_cooked("bad", text) {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_fields() {
        let text = "0.0 1.0 99\n";
        assert!(matches!(
            read_cooked("bad", text),
            Err(TraceError::Parse { .. })
        ));
    }
}
