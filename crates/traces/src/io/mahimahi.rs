//! Mahimahi packet-delivery trace format.
//!
//! Mahimahi's `mm-link` replays a file with one integer per line: the
//! millisecond (from link start) at which one MTU-sized (1500-byte) packet
//! may be delivered. Several packets in the same millisecond appear as
//! repeated lines. The paper's emulation experiments run dash.js over
//! Mahimahi, so we support both directions:
//!
//! * [`write_mahimahi`] — quantizes a [`Trace`] into a packet schedule using
//!   error-diffusion so long-run throughput is preserved exactly;
//! * [`read_mahimahi`] — buckets a packet schedule back into a
//!   piecewise-constant Mbps series at a configurable bin width.

use crate::model::{Trace, TraceError, TracePoint};
use crate::replay::PACKET_PAYLOAD_BYTES;
use std::fmt::Write as _;

/// Converts a trace to a Mahimahi packet schedule (millisecond timestamps).
///
/// Uses carry-forward error diffusion: fractional packets accumulate instead
/// of being truncated each millisecond, so the emitted packet count matches
/// the trace's byte volume to within one packet.
pub fn write_mahimahi(trace: &Trace) -> String {
    let mut out = String::new();
    let total_ms = (trace.duration_s() * 1000.0).floor() as u64;
    let mut carry_pkts = 0.0f64;
    for ms in 0..total_ms {
        let t = ms as f64 / 1000.0;
        let bw_mbps = trace.bandwidth_at(t);
        let bytes_this_ms = bw_mbps * 1e6 / 8.0 / 1000.0;
        carry_pkts += bytes_this_ms / PACKET_PAYLOAD_BYTES;
        while carry_pkts >= 1.0 {
            writeln!(out, "{}", ms + 1).expect("string write");
            carry_pkts -= 1.0;
        }
    }
    out
}

/// Parses a Mahimahi packet schedule into a trace with `bin_s`-wide
/// piecewise-constant bandwidth samples.
pub fn read_mahimahi(name: impl Into<String>, text: &str, bin_s: f64) -> Result<Trace, TraceError> {
    assert!(bin_s > 0.0, "bin width must be positive");
    let mut last_ms: u64 = 0;
    let mut stamps_ms: Vec<u64> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let ms: u64 = line.parse().map_err(|e| TraceError::Parse {
            line: lineno + 1,
            message: format!("bad packet timestamp: {e}"),
        })?;
        if ms < last_ms {
            return Err(TraceError::Parse {
                line: lineno + 1,
                message: format!("timestamps decrease ({ms} after {last_ms})"),
            });
        }
        last_ms = ms;
        stamps_ms.push(ms);
    }
    if stamps_ms.is_empty() {
        return Err(TraceError::Empty);
    }
    let duration_s = (*stamps_ms.last().expect("non-empty") as f64 / 1000.0).max(bin_s);
    let n_bins = (duration_s / bin_s).ceil() as usize;
    let mut pkts_per_bin = vec![0u64; n_bins];
    for ms in stamps_ms {
        // A stamp of `ms` means "delivered by the end of millisecond ms";
        // stamp 0..=bin edge maps into the covering bin.
        let idx = (((ms.saturating_sub(1)) as f64 / 1000.0) / bin_s) as usize;
        pkts_per_bin[idx.min(n_bins - 1)] += 1;
    }
    let points = pkts_per_bin
        .iter()
        .enumerate()
        .map(|(i, &pkts)| {
            let mbps = pkts as f64 * PACKET_PAYLOAD_BYTES * 8.0 / bin_s / 1e6;
            TracePoint::new(i as f64 * bin_s, mbps)
        })
        .collect();
    Trace::new(name, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_trace_round_trips_within_tolerance() {
        let t = Trace::from_uniform("flat", 1.0, &[12.0; 20]).unwrap();
        let text = write_mahimahi(&t);
        let back = read_mahimahi("flat", &text, 1.0).unwrap();
        let err = (back.mean_mbps() - 12.0).abs() / 12.0;
        assert!(err < 0.02, "round-trip mean error {err}");
    }

    #[test]
    fn byte_volume_is_preserved() {
        let t = Trace::from_uniform("vary", 1.0, &[3.0, 9.0, 1.5, 6.0]).unwrap();
        let text = write_mahimahi(&t);
        let pkts = text.lines().count() as f64;
        let expected_bytes = t.mean_mbps() * t.duration_s() * 1e6 / 8.0;
        let got_bytes = pkts * PACKET_PAYLOAD_BYTES;
        assert!(
            (got_bytes - expected_bytes).abs() <= 2.0 * PACKET_PAYLOAD_BYTES,
            "expected ~{expected_bytes} bytes, schedule carries {got_bytes}"
        );
    }

    #[test]
    fn read_rejects_decreasing_timestamps() {
        let text = "5\n3\n";
        assert!(matches!(
            read_mahimahi("bad", text, 1.0),
            Err(TraceError::Parse { .. })
        ));
    }

    #[test]
    fn read_rejects_empty_schedule() {
        assert!(matches!(
            read_mahimahi("empty", "", 1.0),
            Err(TraceError::Empty)
        ));
    }

    #[test]
    fn outage_bins_read_back_as_zero() {
        // 1 s at 12 Mbps, 2 s outage, 1 s at 12 Mbps.
        let t = Trace::from_uniform("gap", 1.0, &[12.0, 0.0, 0.0, 12.0]).unwrap();
        let text = write_mahimahi(&t);
        let back = read_mahimahi("gap", &text, 1.0).unwrap();
        let mid = back.bandwidth_at(1.5);
        assert!(mid < 0.5, "outage bin should be ~0, got {mid}");
    }
}
