//! Trace file formats.
//!
//! Two formats are supported so that real measurement traces can replace the
//! synthetic datasets without touching any other code:
//!
//! * [`mahimahi`] — the packet-delivery schedule format used by the Mahimahi
//!   link emulator (one millisecond timestamp per 1500-byte packet
//!   opportunity per line), which the paper uses for emulation;
//! * [`cooked`] — the two-column `time_s bandwidth_mbps` format used by the
//!   Pensieve artifact ("cooked traces"), which the paper uses for
//!   simulation.

pub mod cooked;
pub mod mahimahi;
