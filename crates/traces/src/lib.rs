//! Network trace substrate for the NADA reproduction.
//!
//! The NADA paper ([He et al., HotNets 2024]) evaluates LLM-generated ABR
//! algorithms on four trace datasets — FCC broadband, Starlink satellite, 4G
//! and 5G cellular (its Table 1). The measurement traces themselves were never
//! released, so this crate provides:
//!
//! * a [`Trace`] model: a piecewise-constant `(time, bandwidth)` series with
//!   validated invariants ([`model`]),
//! * calibrated synthetic generators for each dataset with the qualitative
//!   character the paper describes ([`synth`]) — e.g. the Starlink generator
//!   models 15-second satellite handovers and applies the paper's 1/8
//!   peak-hour capacity reduction,
//! * perturbed/heavy-traffic generators ([`perturb`]) that wrap any trace
//!   into stressed variants (AR(1) scale shifts, outage injection, jitter
//!   amplification, load multipliers) so finalists can be scored across a
//!   distribution of conditions the search never saw,
//! * trace file I/O in Mahimahi packet-schedule format and Pensieve
//!   "cooked" format so real traces can be dropped in ([`io`]),
//! * a [`replay::TraceCursor`] used by the simulator/emulator to walk a trace
//!   while downloading bytes,
//! * a dataset registry with the paper's Table 1 constants and train/test
//!   splits ([`dataset`]), and summary statistics ([`stats`]).
//!
//! Everything is deterministic: generators take explicit seeds and never read
//! OS randomness.
//!
//! ```
//! use nada_traces::dataset::{DatasetKind, DatasetScale, TraceDataset};
//!
//! let ds = TraceDataset::synthesize(DatasetKind::Starlink, DatasetScale::Quick, 7);
//! assert!(!ds.train.is_empty() && !ds.test.is_empty());
//! let stats = ds.stats();
//! assert!(stats.mean_throughput_mbps > 0.0);
//! ```
//!
//! [He et al., HotNets 2024]: https://arxiv.org/abs/2404.01617

pub mod dataset;
pub mod io;
pub mod model;
pub mod perturb;
pub mod replay;
pub mod stats;
pub mod synth;

pub use dataset::{DatasetKind, DatasetScale, TraceDataset};
pub use model::{Trace, TraceError, TracePoint};
pub use perturb::PerturbConfig;
pub use replay::{TraceCursor, PACKET_PAYLOAD_BYTES};
pub use stats::DatasetStats;
