//! HTTP behavior against the loopback scripted servers — no real network.

use nada_llm::{LlmClient, Prompt};
use nada_llm_http::{
    ApiKey, ConnPool, Endpoint, HttpClient, HttpConfig, HttpError, PoolBehavior, PoolServer,
    PooledClient, RateGovernor, Scripted, TestServer, REDACTED,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CODE: &str = "state s { input buffer_s: scalar; feature b = buffer_s / 10.0; }";

fn fast_cfg(base: String) -> HttpConfig {
    let mut cfg = HttpConfig::new(base, "gpt-4-test");
    cfg.max_retries = 3;
    cfg.backoff = Duration::from_millis(1);
    cfg.timeout = Duration::from_secs(5);
    cfg
}

fn fenced(code: &str) -> String {
    format!("Here is an idea: smooth the features.\n```\n{code}\n```\n")
}

#[test]
fn happy_path_round_trips_a_completion() {
    let server = TestServer::start(vec![Scripted::Completion(fenced(CODE))]);
    let mut cfg = fast_cfg(server.base());
    cfg.api_key = Some(ApiKey::new("sk-test-key-123"));
    let mut client = HttpClient::new(cfg).unwrap();
    let completion = client.generate(&Prompt::state(CODE));
    assert_eq!(completion.code, format!("{CODE}\n"));
    assert_eq!(
        completion.reasoning.as_deref(),
        Some("Here is an idea: smooth the features.")
    );

    // The request reached the chat-completions route with auth attached.
    let reqs = server.requests();
    assert_eq!(reqs.len(), 1);
    assert_eq!(reqs[0].path, "/v1/chat/completions");
    assert_eq!(
        reqs[0].header("authorization"),
        Some("Bearer sk-test-key-123")
    );
    assert!(reqs[0].body.contains("gpt-4-test"));
    assert!(reqs[0].body.contains("STATE REPRESENTATION"));
}

#[test]
fn server_errors_are_retried_until_success() {
    // Telemetry counters are process-global and tests run concurrently,
    // so assert deltas are at least what this client contributes.
    let requests = nada_obs::counter("llm_http_requests_total");
    let retries = nada_obs::counter("llm_http_retries_total");
    let server_errors = nada_obs::counter("llm_http_server_errors_total");
    let duration = nada_obs::latency_histogram("llm_http_request_duration_ns");
    let (req0, retry0, err0, dur0) = (
        requests.get(),
        retries.get(),
        server_errors.get(),
        duration.count(),
    );
    let server = TestServer::start(vec![
        Scripted::Status(500, r#"{"error":{"message":"boom"}}"#.into()),
        Scripted::Status(503, "overloaded".into()),
        Scripted::Completion(fenced(CODE)),
    ]);
    let mut client = HttpClient::new(fast_cfg(server.base())).unwrap();
    let completion = client.try_generate(&Prompt::state(CODE)).unwrap();
    assert_eq!(completion.code, format!("{CODE}\n"));
    assert_eq!(client.requests_sent(), 3);
    assert!(requests.get() >= req0 + 3);
    assert!(retries.get() >= retry0 + 2);
    assert!(server_errors.get() >= err0 + 2);
    assert!(duration.count() >= dur0 + 3);
}

#[test]
fn persistent_server_errors_surface_the_status() {
    let script = vec![Scripted::Status(500, "down".into()); 4];
    let server = TestServer::start(script);
    let mut client = HttpClient::new(fast_cfg(server.base())).unwrap();
    let err = client.try_generate(&Prompt::state(CODE)).unwrap_err();
    assert!(matches!(err, HttpError::Status { code: 500, .. }), "{err}");
    // First attempt + max_retries.
    assert_eq!(client.requests_sent(), 4);
}

#[test]
fn truncated_bodies_are_retried() {
    let server = TestServer::start(vec![
        Scripted::Truncated(r#"{"choices":[{"mess"#.into()),
        Scripted::Completion(fenced(CODE)),
    ]);
    let mut cfg = fast_cfg(server.base());
    // The truncated connection closes early, so detection is immediate.
    cfg.timeout = Duration::from_secs(2);
    let mut client = HttpClient::new(cfg).unwrap();
    let completion = client.try_generate(&Prompt::state(CODE)).unwrap();
    assert_eq!(completion.code, format!("{CODE}\n"));
    assert_eq!(client.requests_sent(), 2);
}

#[test]
fn rate_limits_back_off_and_recover() {
    let server = TestServer::start(vec![
        Scripted::RateLimited(0),
        Scripted::RateLimited(0),
        Scripted::Completion(fenced(CODE)),
    ]);
    let mut client = HttpClient::new(fast_cfg(server.base())).unwrap();
    let completion = client.try_generate(&Prompt::state(CODE)).unwrap();
    assert_eq!(completion.code, format!("{CODE}\n"));
    assert_eq!(client.requests_sent(), 3);
}

#[test]
fn client_errors_fail_fast_without_retries() {
    let server = TestServer::start(vec![Scripted::Status(
        401,
        r#"{"error":{"message":"bad key"}}"#.into(),
    )]);
    let mut client = HttpClient::new(fast_cfg(server.base())).unwrap();
    let err = client.try_generate(&Prompt::state(CODE)).unwrap_err();
    assert!(matches!(err, HttpError::Status { code: 401, .. }), "{err}");
    assert_eq!(client.requests_sent(), 1);
}

#[test]
fn error_bodies_echoing_the_key_are_redacted() {
    // A hostile/buggy endpoint echoes the Authorization header back in its
    // error body; the surfaced error must not contain the key.
    let key = "sk-leaky-key-456";
    let server = TestServer::start(vec![Scripted::Status(
        400,
        format!(r#"{{"error":{{"message":"token Bearer {key} is malformed"}}}}"#),
    )]);
    let mut cfg = fast_cfg(server.base());
    cfg.api_key = Some(ApiKey::new(key));
    let mut client = HttpClient::new(cfg).unwrap();
    let err = client.try_generate(&Prompt::state(CODE)).unwrap_err();
    let msg = err.to_string();
    assert!(!msg.contains(key), "leaked: {msg}");
    assert!(msg.contains(REDACTED), "{msg}");
}

#[test]
fn keys_straddling_the_snippet_cut_are_still_redacted() {
    // Regression: error snippets used to truncate the body *before*
    // redaction, so a key crossing the 200-char boundary survived as a
    // partial leak (redact looks for the full secret).
    let key = "sk-straddle-key-0123456789abcdef";
    let padding = "x".repeat(190);
    let server = TestServer::start(vec![Scripted::Status(
        400,
        format!(r#"{{"error":{{"message":"{padding}{key} rejected"}}}}"#),
    )]);
    let mut cfg = fast_cfg(server.base());
    cfg.api_key = Some(ApiKey::new(key));
    let mut client = HttpClient::new(cfg).unwrap();
    let msg = client
        .try_generate(&Prompt::state(CODE))
        .unwrap_err()
        .to_string();
    assert!(!msg.contains("sk-straddle"), "partial key leaked: {msg}");
}

#[test]
fn generate_batch_while_caps_requests_at_the_source() {
    let server = TestServer::start(vec![
        Scripted::Completion(fenced(CODE)),
        Scripted::Completion(fenced(CODE)),
    ]);
    let mut client = HttpClient::new(fast_cfg(server.base())).unwrap();
    let out = client.generate_batch_while(&Prompt::state(CODE), 10, &mut |made| made < 2);
    assert_eq!(out.len(), 2);
    // Only the budgeted completions were ever requested over the wire.
    assert_eq!(client.requests_sent(), 2);
}

#[test]
fn unreachable_endpoints_error_after_retries() {
    // Port 1 on loopback: nothing listens there.
    let mut cfg = fast_cfg("http://127.0.0.1:1/v1".to_string());
    cfg.max_retries = 1;
    let mut client = HttpClient::new(cfg).unwrap();
    let err = client.try_generate(&Prompt::state(CODE)).unwrap_err();
    assert!(matches!(err, HttpError::Connect(_)), "{err}");
    assert_eq!(client.requests_sent(), 2);
}

// ---- pooled client against the concurrent keep-alive server ----------

/// A pooled client of width `conns` over a *private* pool and governor,
/// so scripted 429s cannot pause other tests' dispatch.
fn pooled(server_base: String, conns: usize) -> PooledClient {
    let cfg = fast_cfg(server_base.clone());
    let endpoint = Endpoint::parse(&server_base).unwrap();
    let pool = Arc::new(ConnPool::new(endpoint, cfg.timeout, conns));
    PooledClient::with_parts(cfg, pool, Arc::new(RateGovernor::new(None)))
}

#[test]
fn pooled_waves_put_multiple_requests_in_flight() {
    // The gate holds the first 2 responses until both requests have
    // arrived: a serial client would stall into the server's safety
    // timeout; the pool sails through because both are truly in flight.
    let server = PoolServer::start(PoolBehavior {
        content: "```\nslot {slot}\n```".into(),
        gate: Some(2),
        ..PoolBehavior::default()
    });
    let mut client = pooled(server.base(), 2);
    assert_eq!(client.wave_size(), 2);
    let start = Instant::now();
    let out = client.generate_wave(&Prompt::state(CODE), 2);
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "gate was never released — requests were not concurrent"
    );
    assert_eq!(server.max_in_flight(), 2, "both requests in flight at once");
    let codes: Vec<&str> = out.iter().map(|c| c.code.as_str()).collect();
    assert_eq!(codes, vec!["slot 0\n", "slot 1\n"]);
}

#[test]
fn out_of_order_completions_land_in_submission_order() {
    // All 4 responses are gated, then released latest-arrival-first: the
    // server completes the wave in reverse, but the client must still
    // return slot i's completion at position i.
    let server = PoolServer::start(PoolBehavior {
        content: "```\nslot {slot}\n```".into(),
        gate: Some(4),
        reverse_release: true,
        ..PoolBehavior::default()
    });
    let mut client = pooled(server.base(), 4);
    let out = client.generate_wave(&Prompt::state(CODE), 4);
    let codes: Vec<&str> = out.iter().map(|c| c.code.as_str()).collect();
    assert_eq!(codes, vec!["slot 0\n", "slot 1\n", "slot 2\n", "slot 3\n"]);
    // Every submission slot reached the wire exactly once.
    let mut slots: Vec<usize> = server.arrivals().iter().filter_map(|a| a.slot).collect();
    slots.sort_unstable();
    assert_eq!(slots, vec![0, 1, 2, 3]);
}

#[test]
fn one_rate_limit_throttles_every_connection() {
    let throttled = nada_obs::counter("llm_pool_throttled_total");
    let throttled0 = throttled.get();
    // 8 completions over 4 connections; the very first arrival is 429'd
    // with Retry-After: 1. The in-service requests (100ms latency) ride
    // out, but everything dispatched *after* the 429 — the retry and the
    // whole second half of the batch, on every connection — must wait out
    // the shared pause.
    let server = PoolServer::start(PoolBehavior {
        latency: Duration::from_millis(100),
        content: "```\nslot {slot}\n```".into(),
        rate_limit_at: vec![0],
        retry_after: 1,
        ..PoolBehavior::default()
    });
    let mut client = pooled(server.base(), 4);
    let out = client.generate_batch(&Prompt::state(CODE), 8);
    assert_eq!(out.len(), 8);
    // Slots are per-wave (two waves of 4), and the retry keeps its slot.
    let codes: Vec<String> = out.into_iter().map(|c| c.code).collect();
    let want: Vec<String> = (0..8).map(|i| format!("slot {}\n", i % 4)).collect();
    assert_eq!(codes, want, "retry kept its submission slot");

    assert!(
        throttled.get() > throttled0,
        "the shared governor never recorded a pause"
    );
    let arrivals = server.arrivals();
    assert_eq!(arrivals.len(), 9, "8 requests + 1 retry of the 429");
    let limited = arrivals
        .iter()
        .find(|a| a.status == 429)
        .expect("the injected 429");
    // Every request dispatched after the 429 honored the shared pause —
    // including ones on connections that never saw the 429 themselves.
    let after_pause: Vec<_> = arrivals.iter().filter(|a| a.index >= 4).collect();
    assert!(after_pause.len() >= 5);
    for a in &after_pause {
        let gap = a.at.duration_since(limited.at);
        assert!(
            gap >= Duration::from_millis(900),
            "arrival {} (slot {:?}) dispatched {}ms after the 429 — \
             the pause was not shared",
            a.index,
            a.slot,
            gap.as_millis()
        );
    }
}

#[test]
fn pooled_batches_reuse_their_connections_across_waves() {
    let server = PoolServer::start(PoolBehavior {
        content: "```\nslot {slot}\n```".into(),
        usage: Some((100, 20)),
        ..PoolBehavior::default()
    });
    let mut client = pooled(server.base(), 2);
    let before = nada_llm::global_token_meter().snapshot();
    let out = client.generate_batch(&Prompt::state(CODE), 6);
    assert_eq!(out.len(), 6);
    assert_eq!(client.requests_sent(), 6);
    // 3 waves of 2 over the same two sockets: at least 4 requests rode an
    // already-open connection.
    assert!(
        client.pool().reuse_count() >= 4,
        "reuse_count = {}",
        client.pool().reuse_count()
    );
    // The scripted usage object fed the process-wide token meter.
    let spent = nada_llm::global_token_meter().snapshot();
    assert!(spent.prompt_tokens >= before.prompt_tokens + 600);
    assert!(spent.completion_tokens >= before.completion_tokens + 120);
}
