//! The connection pool and the pooled chat-completions client.
//!
//! A [`ConnPool`] holds N persistent keep-alive [`Transport`]s to one
//! endpoint; a [`PooledClient`] implements [`LlmClient`] on top of it,
//! reporting `wave_size() == N` and fanning each wave across the
//! connections with `nada_llm::ParallelGen` — completions land in
//! submission-order slots, so pooled results are order-stable no matter
//! how the backend interleaves its responses. Every connection runs the
//! same request engine as the serial client (retry, redaction, token
//! accounting) and consults the same [`RateGovernor`], so one 429 pauses
//! the whole pool.
//!
//! Pools are shared process-wide per endpoint ([`ConnPool::shared`]):
//! daemon lanes that resolve the same base URL reuse one set of sockets
//! instead of opening `lanes × N` of them. Pool width comes from
//! [`CONNS_ENV`], defaulting to `nada_exec::scheduler_lanes()` so LLM
//! concurrency scales with the same knob as everything else in the
//! process.

use crate::client::{generate_over, HttpConfig};
use crate::governor::RateGovernor;
use crate::http::{Endpoint, HttpError, Transport};
use nada_llm::{Completion, LlmClient, ParallelGen, Prompt, WaveWorker};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Environment variable fixing the pool width (number of persistent
/// connections / in-flight requests). Unset: `nada_exec::scheduler_lanes()`.
pub const CONNS_ENV: &str = "NADA_LLM_CONNS";

/// The configured pool width: [`CONNS_ENV`] when set to a positive
/// integer, else the process's scheduler-lane count.
pub fn configured_conns() -> usize {
    std::env::var(CONNS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|n| *n > 0)
        .unwrap_or_else(nada_exec::scheduler_lanes)
}

/// N persistent keep-alive connections to one endpoint. Each slot is a
/// [`Transport`] behind its own lock, so N requests proceed in parallel
/// while a single wave worker drives each connection at a time.
#[derive(Debug)]
pub struct ConnPool {
    endpoint: Endpoint,
    slots: Vec<Mutex<Transport>>,
}

impl ConnPool {
    /// A private pool of `conns` connections (connections open lazily on
    /// first use).
    pub fn new(endpoint: Endpoint, timeout: Duration, conns: usize) -> Self {
        let conns = conns.max(1);
        Self {
            slots: (0..conns)
                .map(|_| Mutex::new(Transport::new(endpoint.clone(), timeout)))
                .collect(),
            endpoint,
        }
    }

    /// The process-wide pool for `endpoint`, created with `conns`
    /// connections on first request. Later callers share the existing
    /// pool whatever width they asked for — one endpoint, one socket set.
    pub fn shared(endpoint: &Endpoint, timeout: Duration, conns: usize) -> Arc<ConnPool> {
        static POOLS: OnceLock<Mutex<HashMap<String, Arc<ConnPool>>>> = OnceLock::new();
        let key = format!("{}:{}{}", endpoint.host, endpoint.port, endpoint.base_path);
        let mut pools = POOLS
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("pool registry lock");
        Arc::clone(
            pools
                .entry(key)
                .or_insert_with(|| Arc::new(ConnPool::new(endpoint.clone(), timeout, conns))),
        )
    }

    /// Pool width (persistent connections).
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// The endpoint all connections speak to.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Total requests that rode an already-open connection, across slots.
    pub fn reuse_count(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.lock().expect("conn slot lock").reuse_count())
            .sum()
    }
}

/// One wave worker: drives one pool slot's connection through the shared
/// request engine.
struct PoolWorker<'a> {
    pool: &'a ConnPool,
    conn: usize,
    cfg: &'a HttpConfig,
    governor: &'a RateGovernor,
    requests_sent: &'a AtomicUsize,
}

impl WaveWorker for PoolWorker<'_> {
    fn generate(&mut self, prompt: &Prompt, slot: usize) -> Completion {
        let mut transport = self.pool.slots[self.conn].lock().expect("conn slot lock");
        let mut sent = 0usize;
        let result = generate_over(
            &mut transport,
            self.cfg,
            self.governor,
            prompt,
            Some(slot),
            &mut sent,
        );
        self.requests_sent.fetch_add(sent, Ordering::Relaxed);
        // Same contract as the serial client: the trait is infallible, so
        // an exhausted backend aborts the search loudly (the panic crosses
        // the wave scope back to the caller). Already redacted.
        result.unwrap_or_else(|e| panic!("http LLM backend failed after retries: {e}"))
    }
}

/// A chat-completions client that fans waves across a [`ConnPool`].
#[derive(Debug)]
pub struct PooledClient {
    cfg: HttpConfig,
    pool: Arc<ConnPool>,
    governor: Arc<RateGovernor>,
    requests_sent: AtomicUsize,
}

impl PooledClient {
    /// Builds a pooled client over the [shared](ConnPool::shared) pool
    /// for the config's endpoint ([`configured_conns`] wide) and the
    /// [global governor](RateGovernor::global).
    pub fn new(cfg: HttpConfig) -> Result<Self, HttpError> {
        let endpoint = Endpoint::parse(&cfg.base)?;
        let pool = ConnPool::shared(&endpoint, cfg.timeout, configured_conns());
        Ok(Self::with_parts(
            cfg,
            pool,
            Arc::clone(RateGovernor::global()),
        ))
    }

    /// Builds a pooled client from the environment (base URL from
    /// `NADA_API_BASE`, key from `NADA_API_KEY`).
    pub fn from_env(model: &str) -> Result<Self, HttpError> {
        Self::new(HttpConfig::from_env(model)?)
    }

    /// Builds a pooled client over an explicit pool and governor (tests
    /// inject private ones so scripted 429s cannot pause unrelated
    /// clients and pool width is under the test's control).
    pub fn with_parts(cfg: HttpConfig, pool: Arc<ConnPool>, governor: Arc<RateGovernor>) -> Self {
        Self {
            cfg,
            pool,
            governor,
            requests_sent: AtomicUsize::new(0),
        }
    }

    /// Requests actually sent (includes retries), across all connections.
    pub fn requests_sent(&self) -> usize {
        self.requests_sent.load(Ordering::Relaxed)
    }

    /// The pool this client dispatches over.
    pub fn pool(&self) -> &Arc<ConnPool> {
        &self.pool
    }

    /// One generation with a `Result` surface (wave dispatch goes through
    /// the infallible trait; see [`PooledClient::generate_wave`]).
    pub fn try_generate(&mut self, prompt: &Prompt) -> Result<Completion, HttpError> {
        let mut transport = self.pool.slots[0].lock().expect("conn slot lock");
        let mut sent = 0usize;
        let result = generate_over(
            &mut transport,
            &self.cfg,
            &self.governor,
            prompt,
            None,
            &mut sent,
        );
        self.requests_sent.fetch_add(sent, Ordering::Relaxed);
        result
    }
}

impl LlmClient for PooledClient {
    fn model_name(&self) -> &str {
        &self.cfg.model
    }

    fn generate(&mut self, prompt: &Prompt) -> Completion {
        self.try_generate(prompt)
            .unwrap_or_else(|e| panic!("http LLM backend failed after retries: {e}"))
    }

    fn wave_size(&self) -> usize {
        self.pool.size()
    }

    fn generate_wave(&mut self, prompt: &Prompt, count: usize) -> Vec<Completion> {
        let mut workers: Vec<PoolWorker> = (0..self.pool.size().min(count.max(1)))
            .map(|conn| PoolWorker {
                pool: &self.pool,
                conn,
                cfg: &self.cfg,
                governor: &self.governor,
                requests_sent: &self.requests_sent,
            })
            .collect();
        ParallelGen::dispatch(&mut workers, prompt, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_width_prefers_env_then_lanes() {
        // Cannot mutate the environment safely under the parallel test
        // runner; assert the fallback shape instead.
        let n = configured_conns();
        assert!(n >= 1);
        if std::env::var(CONNS_ENV).is_err() {
            assert_eq!(n, nada_exec::scheduler_lanes());
        }
    }

    #[test]
    fn pools_are_shared_per_endpoint() {
        let a = Endpoint::parse("http://127.0.0.1:39991/v1").unwrap();
        let b = Endpoint::parse("http://127.0.0.1:39992/v1").unwrap();
        let p1 = ConnPool::shared(&a, Duration::from_secs(1), 3);
        let p2 = ConnPool::shared(&a, Duration::from_secs(1), 7);
        let p3 = ConnPool::shared(&b, Duration::from_secs(1), 2);
        assert!(Arc::ptr_eq(&p1, &p2), "same endpoint shares one pool");
        assert_eq!(p2.size(), 3, "first creation fixes the width");
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(p3.size(), 2);
    }

    #[test]
    fn pool_width_has_a_floor_of_one() {
        let e = Endpoint::parse("http://127.0.0.1:39993/v1").unwrap();
        assert_eq!(ConnPool::new(e, Duration::from_secs(1), 0).size(), 1);
    }
}
