//! Secret hygiene for the HTTP backend.
//!
//! The API key enters the process through `NADA_API_KEY` and leaves it in
//! exactly one place: the `Authorization` request header. Everything else
//! that could carry it outward — error messages, `Debug` output, logged
//! response snippets — goes through [`redact`] first, and the key itself
//! lives in an [`ApiKey`] wrapper whose `Debug`/`Display` never print the
//! value.

use std::fmt;

/// Placeholder substituted for a secret in outward-facing text.
pub const REDACTED: &str = "[REDACTED]";

/// An API key that cannot be printed by accident. `Debug` and `Display`
/// render [`REDACTED`]; only [`ApiKey::expose`] yields the real value.
#[derive(Clone, PartialEq, Eq)]
pub struct ApiKey(String);

impl ApiKey {
    /// Wraps a key.
    pub fn new(key: impl Into<String>) -> Self {
        Self(key.into())
    }

    /// The real value — call sites are the audit surface, and the only
    /// legitimate one is building the `Authorization` header.
    pub fn expose(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for ApiKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ApiKey({REDACTED})")
    }
}

impl fmt::Display for ApiKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(REDACTED)
    }
}

/// Replaces every occurrence of `secret` in `text` with [`REDACTED`].
/// Empty secrets redact nothing (there is nothing to leak).
pub fn redact(text: &str, secret: &str) -> String {
    if secret.is_empty() {
        text.to_string()
    } else {
        text.replace(secret, REDACTED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_key_never_prints_its_value() {
        let key = ApiKey::new("sk-very-secret-123");
        assert!(!format!("{key:?}").contains("very-secret"));
        assert!(!format!("{key}").contains("very-secret"));
        assert_eq!(key.expose(), "sk-very-secret-123");
    }

    #[test]
    fn redact_replaces_every_occurrence() {
        let out = redact(
            "error: Bearer sk-abc rejected (key sk-abc expired)",
            "sk-abc",
        );
        assert!(!out.contains("sk-abc"));
        assert_eq!(out.matches(REDACTED).count(), 2);
        // Empty secrets are a no-op, not a panic or a full wipe.
        assert_eq!(redact("body", ""), "body");
    }
}
