//! A loopback scripted HTTP server for integration tests.
//!
//! CI has no network, so HTTP behavior is tested against a
//! `std::net::TcpListener` bound to `127.0.0.1:0`: the test scripts a
//! sequence of [`Scripted`] responses, points an
//! [`HttpClient`](crate::HttpClient) at [`TestServer::base`], and asserts
//! on outcomes plus the [recorded requests](TestServer::requests). One
//! connection per scripted response (the client sends
//! `Connection: close`).

use crate::json::Json;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::{Arc, Mutex};

/// One scripted response, served to the next connection.
#[derive(Debug, Clone)]
pub enum Scripted {
    /// 200 with a well-formed chat-completions body carrying this content.
    Completion(String),
    /// An arbitrary status and raw body.
    Status(u16, String),
    /// 429 with a `Retry-After` header (seconds).
    RateLimited(u64),
    /// 200 declaring a large `Content-Length` but sending only this
    /// prefix before closing — a truncated body.
    Truncated(String),
}

/// One request as the server saw it.
#[derive(Debug, Clone)]
pub struct Received {
    /// Request line path (e.g. `/v1/chat/completions`).
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body.
    pub body: String,
}

impl Received {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A scripted loopback server. The listener thread serves the script in
/// order and exits; it is detached, so an unfinished script simply stops
/// accepting when the test ends.
pub struct TestServer {
    port: u16,
    requests: Arc<Mutex<Vec<Received>>>,
}

impl TestServer {
    /// Binds `127.0.0.1:0` and starts serving `script`.
    pub fn start(script: Vec<Scripted>) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let port = listener.local_addr().expect("local addr").port();
        let requests = Arc::new(Mutex::new(Vec::new()));
        let seen = Arc::clone(&requests);
        std::thread::spawn(move || {
            for response in script {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                let Some(received) = read_request(&mut stream) else {
                    continue;
                };
                seen.lock().expect("requests lock").push(received);
                let _ = stream.write_all(render_response(&response).as_bytes());
            }
        });
        Self { port, requests }
    }

    /// The base URL to hand to `HttpConfig::new`.
    pub fn base(&self) -> String {
        format!("http://127.0.0.1:{}/v1", self.port)
    }

    /// Every request served so far.
    pub fn requests(&self) -> Vec<Received> {
        self.requests.lock().expect("requests lock").clone()
    }
}

fn read_request(stream: &mut std::net::TcpStream) -> Option<Received> {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(_) => return None,
        }
    };
    let head = String::from_utf8_lossy(&raw[..header_end]).to_string();
    let mut lines = head.split("\r\n");
    let request_line = lines.next()?;
    let path = request_line.split(' ').nth(1)?.to_string();
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = raw[header_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    Some(Received {
        path,
        headers,
        body: String::from_utf8_lossy(&body).to_string(),
    })
}

fn render_response(scripted: &Scripted) -> String {
    match scripted {
        Scripted::Completion(content) => {
            let body = Json::Obj(vec![
                ("id".into(), Json::Str("cmpl-test".into())),
                ("object".into(), Json::Str("chat.completion".into())),
                (
                    "choices".into(),
                    Json::Arr(vec![Json::Obj(vec![
                        ("index".into(), Json::Num(0.0)),
                        (
                            "message".into(),
                            Json::Obj(vec![
                                ("role".into(), Json::Str("assistant".into())),
                                ("content".into(), Json::Str(content.clone())),
                            ]),
                        ),
                        ("finish_reason".into(), Json::Str("stop".into())),
                    ])]),
                ),
            ])
            .render();
            format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{}",
                body.len(),
                body
            )
        }
        Scripted::Status(code, body) => format!(
            "HTTP/1.1 {code} X\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        ),
        Scripted::RateLimited(retry_after) => {
            let body = r#"{"error":{"message":"rate limited"}}"#;
            format!(
                "HTTP/1.1 429 Too Many Requests\r\nRetry-After: {retry_after}\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{}",
                body.len(),
                body
            )
        }
        Scripted::Truncated(prefix) => format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            prefix.len() + 10_000,
            prefix
        ),
    }
}
