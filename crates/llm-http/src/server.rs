//! Loopback scripted HTTP servers for integration tests.
//!
//! CI has no network, so HTTP behavior is tested against
//! `std::net::TcpListener`s bound to `127.0.0.1:0`:
//!
//! * [`TestServer`] — the original sequential server: scripts a sequence
//!   of [`Scripted`] responses, one connection per response;
//! * [`PoolServer`] — a concurrent keep-alive server for exercising the
//!   connection pool: every connection gets its own handler thread, each
//!   request is served after a fixed latency, and a [`PoolBehavior`] can
//!   gate a wave (prove requests overlap), release responses in reverse
//!   arrival order (prove submission-order delivery), and inject 429s
//!   (prove the shared governor throttles everyone). It also backs the
//!   fixed-latency serial-vs-pooled comparison in `bench_snapshot` and
//!   the `llm_stub` CI end-to-end fixture.

use crate::json::Json;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One scripted response, served to the next connection.
#[derive(Debug, Clone)]
pub enum Scripted {
    /// 200 with a well-formed chat-completions body carrying this content.
    Completion(String),
    /// An arbitrary status and raw body.
    Status(u16, String),
    /// 429 with a `Retry-After` header (seconds).
    RateLimited(u64),
    /// 200 declaring a large `Content-Length` but sending only this
    /// prefix before closing — a truncated body.
    Truncated(String),
}

/// One request as the server saw it.
#[derive(Debug, Clone)]
pub struct Received {
    /// Request line path (e.g. `/v1/chat/completions`).
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body.
    pub body: String,
}

impl Received {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A scripted loopback server. The listener thread serves the script in
/// order and exits; it is detached, so an unfinished script simply stops
/// accepting when the test ends.
pub struct TestServer {
    port: u16,
    requests: Arc<Mutex<Vec<Received>>>,
}

impl TestServer {
    /// Binds `127.0.0.1:0` and starts serving `script`.
    pub fn start(script: Vec<Scripted>) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let port = listener.local_addr().expect("local addr").port();
        let requests = Arc::new(Mutex::new(Vec::new()));
        let seen = Arc::clone(&requests);
        std::thread::spawn(move || {
            for response in script {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                let Some(received) = read_request(&mut stream) else {
                    continue;
                };
                seen.lock().expect("requests lock").push(received);
                let _ = stream.write_all(render_response(&response).as_bytes());
            }
        });
        Self { port, requests }
    }

    /// The base URL to hand to `HttpConfig::new`.
    pub fn base(&self) -> String {
        format!("http://127.0.0.1:{}/v1", self.port)
    }

    /// Every request served so far.
    pub fn requests(&self) -> Vec<Received> {
        self.requests.lock().expect("requests lock").clone()
    }
}

fn read_request(stream: &mut std::net::TcpStream) -> Option<Received> {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(_) => return None,
        }
    };
    let head = String::from_utf8_lossy(&raw[..header_end]).to_string();
    let mut lines = head.split("\r\n");
    let request_line = lines.next()?;
    let path = request_line.split(' ').nth(1)?.to_string();
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = raw[header_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    Some(Received {
        path,
        headers,
        body: String::from_utf8_lossy(&body).to_string(),
    })
}

/// A chat-completions 200 body for `content`, with an optional `usage`
/// object carrying `(prompt_tokens, completion_tokens)`.
fn chat_completion_body(content: &str, usage: Option<(u64, u64)>) -> String {
    let mut fields = vec![
        ("id".into(), Json::Str("cmpl-test".into())),
        ("object".into(), Json::Str("chat.completion".into())),
        (
            "choices".into(),
            Json::Arr(vec![Json::Obj(vec![
                ("index".into(), Json::Num(0.0)),
                (
                    "message".into(),
                    Json::Obj(vec![
                        ("role".into(), Json::Str("assistant".into())),
                        ("content".into(), Json::Str(content.to_string())),
                    ]),
                ),
                ("finish_reason".into(), Json::Str("stop".into())),
            ])]),
        ),
    ];
    if let Some((prompt, completion)) = usage {
        fields.push((
            "usage".into(),
            Json::Obj(vec![
                ("prompt_tokens".into(), Json::Num(prompt as f64)),
                ("completion_tokens".into(), Json::Num(completion as f64)),
                (
                    "total_tokens".into(),
                    Json::Num((prompt + completion) as f64),
                ),
            ]),
        ));
    }
    Json::Obj(fields).render()
}

fn render_response(scripted: &Scripted) -> String {
    match scripted {
        Scripted::Completion(content) => {
            let body = chat_completion_body(content, None);
            format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{}",
                body.len(),
                body
            )
        }
        Scripted::Status(code, body) => format!(
            "HTTP/1.1 {code} X\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        ),
        Scripted::RateLimited(retry_after) => {
            let body = r#"{"error":{"message":"rate limited"}}"#;
            format!(
                "HTTP/1.1 429 Too Many Requests\r\nRetry-After: {retry_after}\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{}",
                body.len(),
                body
            )
        }
        Scripted::Truncated(prefix) => format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            prefix.len() + 10_000,
            prefix
        ),
    }
}

/// How a [`PoolServer`] treats each request.
#[derive(Debug, Clone)]
pub struct PoolBehavior {
    /// Service time per 200 response (after any gate), modeling a
    /// fixed-latency backend.
    pub latency: Duration,
    /// Completion content served on 200s. The literal `{slot}` is
    /// replaced with the request's `X-NADA-Slot` header (or the arrival
    /// index when absent) so waves produce distinguishable completions.
    pub content: String,
    /// `(prompt_tokens, completion_tokens)` reported in each 200's
    /// `usage` object.
    pub usage: Option<(u64, u64)>,
    /// Hold the first `gate` arrivals until all of them have arrived
    /// before responding — a serial client deadlocks into the 5s safety
    /// timeout, a pooled one sails through, so tests can prove requests
    /// were genuinely concurrent.
    pub gate: Option<usize>,
    /// With a gate: release the gated responses in *reverse* arrival
    /// order (latest-arrived answered first), so tests can prove
    /// submission-order delivery survives completion reordering.
    pub reverse_release: bool,
    /// Arrival indices (0-based, counting every request) answered 429.
    pub rate_limit_at: Vec<usize>,
    /// Additionally answer every k-th arrival 429 (indices k-1, 2k-1, …).
    pub rate_limit_every: Option<usize>,
    /// `Retry-After` (seconds) sent with every 429.
    pub retry_after: u64,
}

impl Default for PoolBehavior {
    fn default() -> Self {
        Self {
            latency: Duration::ZERO,
            content: "```\nstate s { input buffer_s: scalar; feature b = buffer_s / 10.0; }\n```"
                .into(),
            usage: None,
            gate: None,
            reverse_release: false,
            rate_limit_at: Vec::new(),
            rate_limit_every: None,
            retry_after: 0,
        }
    }
}

/// One request as the pool server saw it, with arrival metadata.
#[derive(Debug, Clone)]
pub struct PoolArrival {
    /// Global arrival index (0-based, every request counts).
    pub index: usize,
    /// When the request was read off the socket.
    pub at: Instant,
    /// The `X-NADA-Slot` header, when the client sent one.
    pub slot: Option<usize>,
    /// Status this request was answered with.
    pub status: u16,
    /// Request path.
    pub path: String,
    /// Request body.
    pub body: String,
}

struct PoolState {
    behavior: PoolBehavior,
    arrivals: Mutex<Vec<PoolArrival>>,
    gate_cv: Condvar,
    arrival_seq: AtomicUsize,
    in_flight: AtomicUsize,
    max_in_flight: AtomicUsize,
}

/// A concurrent keep-alive chat-completions server: one handler thread
/// per connection, unlimited requests per connection, behavior scripted
/// by [`PoolBehavior`]. Serves until the process exits (handler threads
/// are detached, like [`TestServer`]'s).
pub struct PoolServer {
    port: u16,
    state: Arc<PoolState>,
}

impl PoolServer {
    /// Binds `127.0.0.1:0` and starts serving.
    pub fn start(behavior: PoolBehavior) -> Self {
        Self::start_on(0, behavior).expect("bind loopback")
    }

    /// Binds `127.0.0.1:port` (0 = ephemeral) and starts serving.
    pub fn start_on(port: u16, behavior: PoolBehavior) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let port = listener.local_addr()?.port();
        let state = Arc::new(PoolState {
            behavior,
            arrivals: Mutex::new(Vec::new()),
            gate_cv: Condvar::new(),
            arrival_seq: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            max_in_flight: AtomicUsize::new(0),
        });
        let accept_state = Arc::clone(&state);
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                let state = Arc::clone(&accept_state);
                std::thread::spawn(move || serve_connection(stream, &state));
            }
        });
        Ok(Self { port, state })
    }

    /// The base URL to hand to `HttpConfig::new`.
    pub fn base(&self) -> String {
        format!("http://127.0.0.1:{}/v1", self.port)
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Every request seen so far, in arrival-index order.
    pub fn arrivals(&self) -> Vec<PoolArrival> {
        let mut all = self.state.arrivals.lock().expect("arrivals lock").clone();
        all.sort_by_key(|a| a.index);
        all
    }

    /// The highest number of requests that were in flight simultaneously.
    pub fn max_in_flight(&self) -> usize {
        self.state.max_in_flight.load(Ordering::Relaxed)
    }
}

/// Gated handlers give up after this long so a serial client against a
/// gate of 2 stalls visibly but does not hang the test binary.
const GATE_TIMEOUT: Duration = Duration::from_secs(5);

fn serve_connection(mut stream: std::net::TcpStream, state: &Arc<PoolState>) {
    while let Some(received) = read_request(&mut stream) {
        let index = state.arrival_seq.fetch_add(1, Ordering::Relaxed);
        let live = state.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        state.max_in_flight.fetch_max(live, Ordering::Relaxed);

        let behavior = &state.behavior;
        let rate_limited = behavior.rate_limit_at.contains(&index)
            || behavior
                .rate_limit_every
                .is_some_and(|k| k > 0 && (index + 1).is_multiple_of(k));
        let status = if rate_limited { 429 } else { 200 };
        let slot = received
            .header(crate::client::SLOT_HEADER)
            .and_then(|v| v.parse::<usize>().ok());
        {
            let mut arrivals = state.arrivals.lock().expect("arrivals lock");
            arrivals.push(PoolArrival {
                index,
                at: Instant::now(),
                slot,
                status,
                path: received.path.clone(),
                body: received.body.clone(),
            });
            state.gate_cv.notify_all();
        }

        let response = if rate_limited {
            let body = r#"{"error":{"message":"rate limited"}}"#;
            format!(
                "HTTP/1.1 429 Too Many Requests\r\nRetry-After: {}\r\n\
                 Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
                behavior.retry_after,
                body.len(),
                body
            )
        } else {
            if let Some(gate) = behavior.gate.filter(|g| index < *g) {
                // Hold until the whole gated wave has arrived.
                let deadline = Instant::now() + GATE_TIMEOUT;
                let mut arrivals = state.arrivals.lock().expect("arrivals lock");
                while arrivals.len() < gate {
                    let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                        break;
                    };
                    let (next, _) = state
                        .gate_cv
                        .wait_timeout(arrivals, left)
                        .expect("arrivals lock");
                    arrivals = next;
                }
                drop(arrivals);
                if behavior.reverse_release {
                    // Later arrivals answer first: position k in a gate of
                    // g sleeps (g-1-k) steps.
                    let steps = (gate - 1).saturating_sub(index) as u32;
                    std::thread::sleep(Duration::from_millis(20) * steps);
                }
            }
            std::thread::sleep(behavior.latency);
            let slot_text = slot.map_or_else(|| index.to_string(), |s| s.to_string());
            let content = behavior.content.replace("{slot}", &slot_text);
            let body = chat_completion_body(&content, behavior.usage);
            format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
                body.len(),
                body
            )
        };
        let write = stream.write_all(response.as_bytes());
        state.in_flight.fetch_sub(1, Ordering::Relaxed);
        if write.is_err() {
            break;
        }
    }
}
