//! A dependency-free HTTP/1.1 client over `std::net::TcpStream`.
//!
//! The build environment is offline (no `reqwest`/`hyper`), so this is the
//! whole transport. Two shapes are offered:
//!
//! * [`post_json`] — one `POST` on a fresh connection
//!   (`Connection: close`), the original one-shot path;
//! * [`Transport`] — a persistent keep-alive connection that reads exactly
//!   one response per request (incremental `Content-Length` and chunked
//!   framing) and transparently reconnects once when a pooled connection
//!   has gone stale between waves.
//!
//! Plain `http://` only — pointing the client at a TLS endpoint is a
//! configuration error (run a local proxy or an http-speaking gateway
//! instead).

use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Why a request failed at the transport level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// A URL could not be understood (or used a scheme we cannot speak).
    BadUrl(String),
    /// The TCP connection could not be established.
    Connect(String),
    /// The connection died mid-request or mid-response.
    Io(String),
    /// The response bytes were not valid HTTP.
    Malformed(String),
    /// The body ended before the declared `Content-Length`.
    Truncated {
        /// Bytes the server declared.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// A non-success status after all retries (message is pre-redacted by
    /// the caller before it ever reaches this value).
    Status {
        /// The HTTP status code.
        code: u16,
        /// A short body snippet for diagnosis.
        body: String,
    },
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadUrl(m) => write!(f, "bad url: {m}"),
            HttpError::Connect(m) => write!(f, "connect failed: {m}"),
            HttpError::Io(m) => write!(f, "i/o error: {m}"),
            HttpError::Malformed(m) => write!(f, "malformed response: {m}"),
            HttpError::Truncated { expected, got } => {
                write!(f, "truncated body: declared {expected} bytes, got {got}")
            }
            HttpError::Status { code, body } => write!(f, "http status {code}: {body}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A parsed response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The decoded body.
    pub body: String,
}

impl Response {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// An `http://host:port/path` base, split into its parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endpoint {
    /// Host name or address.
    pub host: String,
    /// TCP port (default 80).
    pub port: u16,
    /// Path prefix, no trailing slash (e.g. `/v1`).
    pub base_path: String,
}

impl Endpoint {
    /// Parses a base URL. Only `http://` is supported — the client is
    /// dependency-free and cannot speak TLS.
    pub fn parse(base: &str) -> Result<Self, HttpError> {
        let rest = base.strip_prefix("http://").ok_or_else(|| {
            HttpError::BadUrl(format!(
                "`{base}` — only http:// endpoints are supported (no TLS); \
                 point at a local proxy for hosted providers"
            ))
        })?;
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], rest[i..].trim_end_matches('/')),
            None => (rest, ""),
        };
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => (
                h.to_string(),
                p.parse()
                    .map_err(|_| HttpError::BadUrl(format!("bad port in `{base}`")))?,
            ),
            None => (authority.to_string(), 80),
        };
        if host.is_empty() {
            return Err(HttpError::BadUrl(format!("no host in `{base}`")));
        }
        Ok(Self {
            host,
            port,
            base_path: path.to_string(),
        })
    }
}

/// Sends one `POST` with a JSON body and reads the full response.
/// `headers` are extra request headers (e.g. `Authorization`).
pub fn post_json(
    endpoint: &Endpoint,
    path: &str,
    headers: &[(String, String)],
    body: &str,
    timeout: Duration,
) -> Result<Response, HttpError> {
    let addr = format!("{}:{}", endpoint.host, endpoint.port);
    let mut stream =
        TcpStream::connect(&addr).map_err(|e| HttpError::Connect(format!("{addr}: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| HttpError::Io(e.to_string()))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| HttpError::Io(e.to_string()))?;

    let full_path = format!("{}{}", endpoint.base_path, path);
    let mut req = format!(
        "POST {full_path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        endpoint.host,
        body.len()
    );
    for (k, v) in headers {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str("\r\n");
    req.push_str(body);
    stream
        .write_all(req.as_bytes())
        .map_err(|e| HttpError::Io(e.to_string()))?;

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    parse_response(&raw)
}

/// A persistent keep-alive HTTP/1.1 connection to one endpoint.
///
/// Unlike [`post_json`] — which opens a fresh TCP connection, sends
/// `Connection: close` and reads to EOF — a `Transport` keeps the socket
/// open across requests and reads exactly one framed response per request
/// (`Content-Length` or chunked). Connection pools hold one `Transport`
/// per slot; connections are opened lazily on first use and re-opened
/// transparently (once per request) when the server has closed an idle
/// connection between waves.
#[derive(Debug)]
pub struct Transport {
    endpoint: Endpoint,
    timeout: Duration,
    stream: Option<TcpStream>,
    /// Unconsumed bytes read past the end of a previous response.
    pending: Vec<u8>,
    reused: u64,
    last_reused: bool,
}

impl Transport {
    /// A transport for `endpoint`. No connection is opened until the
    /// first request.
    pub fn new(endpoint: Endpoint, timeout: Duration) -> Self {
        Self {
            endpoint,
            timeout,
            stream: None,
            pending: Vec::new(),
            reused: 0,
            last_reused: false,
        }
    }

    /// The endpoint this transport speaks to.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// How many requests rode an already-open connection.
    pub fn reuse_count(&self) -> u64 {
        self.reused
    }

    /// Whether the most recent request reused an open connection.
    pub fn last_reused(&self) -> bool {
        self.last_reused
    }

    /// Sends one `POST` with a JSON body and reads exactly one response,
    /// leaving the connection open for the next request unless the server
    /// asked to close it. A request that fails on a *reused* connection is
    /// retried once on a fresh one — an idle keep-alive socket the server
    /// has quietly closed is indistinguishable from a live one until the
    /// write or read fails.
    pub fn post_json(
        &mut self,
        path: &str,
        headers: &[(String, String)],
        body: &str,
    ) -> Result<Response, HttpError> {
        let reusing = self.stream.is_some();
        self.last_reused = reusing;
        match self.request_once(path, headers, body) {
            Ok(resp) => {
                if reusing {
                    self.reused += 1;
                }
                Ok(resp)
            }
            Err(e) if reusing && matches!(e, HttpError::Io(_) | HttpError::Truncated { .. }) => {
                // Stale keep-alive connection: reconnect once.
                self.disconnect();
                self.last_reused = false;
                self.request_once(path, headers, body)
            }
            Err(e) => {
                self.disconnect();
                Err(e)
            }
        }
    }

    /// Drops the connection (the next request reconnects).
    pub fn disconnect(&mut self) {
        self.stream = None;
        self.pending.clear();
    }

    fn request_once(
        &mut self,
        path: &str,
        headers: &[(String, String)],
        body: &str,
    ) -> Result<Response, HttpError> {
        if self.stream.is_none() {
            let addr = format!("{}:{}", self.endpoint.host, self.endpoint.port);
            let stream = TcpStream::connect(&addr)
                .map_err(|e| HttpError::Connect(format!("{addr}: {e}")))?;
            stream
                .set_read_timeout(Some(self.timeout))
                .map_err(|e| HttpError::Io(e.to_string()))?;
            stream
                .set_write_timeout(Some(self.timeout))
                .map_err(|e| HttpError::Io(e.to_string()))?;
            self.pending.clear();
            self.stream = Some(stream);
        }
        let full_path = format!("{}{}", self.endpoint.base_path, path);
        let mut req = format!(
            "POST {full_path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: keep-alive\r\n",
            self.endpoint.host,
            body.len()
        );
        for (k, v) in headers {
            req.push_str(&format!("{k}: {v}\r\n"));
        }
        req.push_str("\r\n");
        req.push_str(body);

        let result = {
            let stream = self.stream.as_mut().expect("connected above");
            stream
                .write_all(req.as_bytes())
                .map_err(|e| HttpError::Io(e.to_string()))
                .and_then(|()| read_one_response(stream, &mut self.pending))
        };
        match result {
            Ok(resp) => {
                let close = resp
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                if close {
                    self.disconnect();
                }
                Ok(resp)
            }
            Err(e) => {
                self.disconnect();
                Err(e)
            }
        }
    }
}

/// Reads exactly one HTTP/1.1 response from an open stream. `pending`
/// holds bytes already read past the previous response; bytes past *this*
/// response are left in it.
fn read_one_response(stream: &mut TcpStream, pending: &mut Vec<u8>) -> Result<Response, HttpError> {
    let header_end = loop {
        if let Some(pos) = find_header_end(pending) {
            break pos;
        }
        fill(stream, pending, "connection closed before response headers")?;
    };
    let (status, headers) = parse_head(&pending[..header_end])?;
    pending.drain(..header_end + 4);

    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        read_chunked_body(stream, pending)?
    } else if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        take_exact(stream, pending, len)?
    } else {
        // No framing: the body runs to EOF (the server will close).
        let mut rest = std::mem::take(pending);
        let mut buf = [0u8; 4096];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => rest.extend_from_slice(&buf[..n]),
                Err(e) => return Err(HttpError::Io(e.to_string())),
            }
        }
        rest
    };
    let body = String::from_utf8(body).map_err(|_| HttpError::Malformed("non-utf8 body".into()))?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Reads more bytes into `pending`, failing on EOF.
fn fill(stream: &mut TcpStream, pending: &mut Vec<u8>, on_eof: &str) -> Result<(), HttpError> {
    let mut buf = [0u8; 4096];
    match stream.read(&mut buf) {
        Ok(0) => Err(HttpError::Io(on_eof.into())),
        Ok(n) => {
            pending.extend_from_slice(&buf[..n]);
            Ok(())
        }
        Err(e) => Err(HttpError::Io(e.to_string())),
    }
}

/// Takes exactly `n` bytes from `pending`, reading as needed.
fn take_exact(
    stream: &mut TcpStream,
    pending: &mut Vec<u8>,
    n: usize,
) -> Result<Vec<u8>, HttpError> {
    while pending.len() < n {
        fill(stream, pending, "connection closed mid-body").map_err(|e| match e {
            HttpError::Io(_) => HttpError::Truncated {
                expected: n,
                got: pending.len(),
            },
            other => other,
        })?;
    }
    Ok(pending.drain(..n).collect())
}

/// Takes one CRLF-terminated line from `pending`, reading as needed.
fn take_line(stream: &mut TcpStream, pending: &mut Vec<u8>) -> Result<String, HttpError> {
    let end = loop {
        if let Some(pos) = pending.windows(2).position(|w| w == b"\r\n") {
            break pos;
        }
        fill(stream, pending, "connection closed mid-chunk")?;
    };
    let line: Vec<u8> = pending.drain(..end + 2).collect();
    String::from_utf8(line[..end].to_vec())
        .map_err(|_| HttpError::Malformed("bad chunk line".into()))
}

/// Incrementally reads a chunked body until the terminal zero chunk.
fn read_chunked_body(stream: &mut TcpStream, pending: &mut Vec<u8>) -> Result<Vec<u8>, HttpError> {
    let mut out = Vec::new();
    loop {
        let size_text = take_line(stream, pending)?;
        let size = usize::from_str_radix(size_text.trim(), 16)
            .map_err(|_| HttpError::Malformed(format!("bad chunk size `{size_text}`")))?;
        if size == 0 {
            // Trailer section: discard lines up to the blank terminator.
            loop {
                if take_line(stream, pending)?.is_empty() {
                    return Ok(out);
                }
            }
        }
        let chunk = take_exact(stream, pending, size + 2)?;
        out.extend_from_slice(&chunk[..size]);
    }
}

/// Parses the status line + header block (everything before the blank
/// line) of an HTTP/1.1 response.
fn parse_head(raw: &[u8]) -> Result<(u16, Vec<(String, String)>), HttpError> {
    let head =
        std::str::from_utf8(raw).map_err(|_| HttpError::Malformed("non-utf8 headers".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty response".into()))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "bad status line `{status_line}`"
        )));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line `{status_line}`")))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header `{line}`")))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    Ok((status, headers))
}

/// Parses a complete HTTP/1.1 response held in memory.
fn parse_response(raw: &[u8]) -> Result<Response, HttpError> {
    let header_end = find_header_end(raw)
        .ok_or_else(|| HttpError::Malformed("no header/body separator".into()))?;
    let (status, headers) = parse_head(&raw[..header_end])?;

    let body_bytes = &raw[header_end + 4..];
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        decode_chunked(body_bytes)?
    } else if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        if body_bytes.len() < len {
            return Err(HttpError::Truncated {
                expected: len,
                got: body_bytes.len(),
            });
        }
        body_bytes[..len].to_vec()
    } else {
        body_bytes.to_vec()
    };
    let body = String::from_utf8(body).map_err(|_| HttpError::Malformed("non-utf8 body".into()))?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

fn find_header_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

fn decode_chunked(mut rest: &[u8]) -> Result<Vec<u8>, HttpError> {
    let mut out = Vec::new();
    loop {
        let line_end = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or_else(|| HttpError::Malformed("bad chunk header".into()))?;
        let size_text = std::str::from_utf8(&rest[..line_end])
            .map_err(|_| HttpError::Malformed("bad chunk size".into()))?;
        let size = usize::from_str_radix(size_text.trim(), 16)
            .map_err(|_| HttpError::Malformed(format!("bad chunk size `{size_text}`")))?;
        rest = &rest[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if rest.len() < size + 2 {
            return Err(HttpError::Truncated {
                expected: size,
                got: rest.len().saturating_sub(2),
            });
        }
        out.extend_from_slice(&rest[..size]);
        rest = &rest[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parsing() {
        let e = Endpoint::parse("http://127.0.0.1:8080/v1").unwrap();
        assert_eq!(
            e,
            Endpoint {
                host: "127.0.0.1".into(),
                port: 8080,
                base_path: "/v1".into()
            }
        );
        let bare = Endpoint::parse("http://api.local").unwrap();
        assert_eq!(bare.port, 80);
        assert_eq!(bare.base_path, "");
        assert!(matches!(
            Endpoint::parse("https://api.openai.com/v1"),
            Err(HttpError::BadUrl(_))
        ));
        assert!(Endpoint::parse("http://:80/v1").is_err());
    }

    #[test]
    fn parses_content_length_response() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 5\r\n\r\nhello";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "hello");
        assert_eq!(r.header("Content-Type"), Some("application/json"));
    }

    #[test]
    fn truncated_bodies_are_detected() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 50\r\n\r\nshort";
        assert_eq!(
            parse_response(raw),
            Err(HttpError::Truncated {
                expected: 50,
                got: 5
            })
        );
    }

    #[test]
    fn decodes_chunked_bodies() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        assert_eq!(parse_response(raw).unwrap().body, "hello world");
    }

    #[test]
    fn malformed_responses_error() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 abc OK\r\n\r\n").is_err());
    }

    use std::net::TcpListener;

    fn ok_response(body: &str) -> String {
        format!(
            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
            body.len(),
            body
        )
    }

    #[test]
    fn transport_reuses_one_connection_across_requests() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let server = std::thread::spawn(move || {
            // One accepted connection serves both requests.
            let (mut stream, _) = listener.accept().unwrap();
            for i in 0..2 {
                let mut buf = [0u8; 4096];
                let mut raw = Vec::new();
                while find_header_end(&raw).is_none() {
                    let n = stream.read(&mut buf).unwrap();
                    assert!(n > 0, "client hung up early");
                    raw.extend_from_slice(&buf[..n]);
                }
                // Requests are tiny; headers+body arrive together here.
                stream
                    .write_all(ok_response(&format!("reply {i}")).as_bytes())
                    .unwrap();
            }
        });
        let endpoint = Endpoint::parse(&format!("http://127.0.0.1:{port}/v1")).unwrap();
        let mut t = Transport::new(endpoint, Duration::from_secs(5));
        let first = t.post_json("/x", &[], "{}").unwrap();
        assert_eq!(first.body, "reply 0");
        assert!(!t.last_reused());
        let second = t.post_json("/x", &[], "{}").unwrap();
        assert_eq!(second.body, "reply 1");
        assert!(t.last_reused());
        assert_eq!(t.reuse_count(), 1);
        server.join().unwrap();
    }

    #[test]
    fn transport_reconnects_when_the_idle_connection_went_stale() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let server = std::thread::spawn(move || {
            // Two separate connections: each serves one response, and the
            // first is closed immediately afterwards.
            for i in 0..2 {
                let (mut stream, _) = listener.accept().unwrap();
                let mut buf = [0u8; 4096];
                let mut raw = Vec::new();
                while find_header_end(&raw).is_none() {
                    let n = stream.read(&mut buf).unwrap();
                    if n == 0 {
                        return;
                    }
                    raw.extend_from_slice(&buf[..n]);
                }
                stream
                    .write_all(ok_response(&format!("reply {i}")).as_bytes())
                    .unwrap();
                drop(stream);
            }
        });
        let endpoint = Endpoint::parse(&format!("http://127.0.0.1:{port}/v1")).unwrap();
        let mut t = Transport::new(endpoint, Duration::from_secs(5));
        assert_eq!(t.post_json("/x", &[], "{}").unwrap().body, "reply 0");
        // Give the server's close time to land so the reuse attempt fails.
        std::thread::sleep(Duration::from_millis(50));
        let second = t.post_json("/x", &[], "{}").unwrap();
        assert_eq!(second.body, "reply 1");
        assert!(!t.last_reused(), "retry went over a fresh connection");
        server.join().unwrap();
    }

    #[test]
    fn transport_reads_chunked_keepalive_responses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let mut raw = Vec::new();
            while find_header_end(&raw).is_none() {
                let n = stream.read(&mut buf).unwrap();
                if n == 0 {
                    return;
                }
                raw.extend_from_slice(&buf[..n]);
            }
            stream
                .write_all(
                    b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                      5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n",
                )
                .unwrap();
        });
        let endpoint = Endpoint::parse(&format!("http://127.0.0.1:{port}/v1")).unwrap();
        let mut t = Transport::new(endpoint, Duration::from_secs(5));
        assert_eq!(t.post_json("/x", &[], "{}").unwrap().body, "hello world");
    }
}
