//! A dependency-free HTTP/1.1 client over `std::net::TcpStream`.
//!
//! The build environment is offline (no `reqwest`/`hyper`), so this is the
//! whole transport: one `POST` per request on a fresh connection
//! (`Connection: close`), with `Content-Length` and chunked bodies
//! supported on the way back. Plain `http://` only — pointing the client
//! at a TLS endpoint is a configuration error (run a local proxy or an
//! http-speaking gateway instead).

use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Why a request failed at the transport level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// A URL could not be understood (or used a scheme we cannot speak).
    BadUrl(String),
    /// The TCP connection could not be established.
    Connect(String),
    /// The connection died mid-request or mid-response.
    Io(String),
    /// The response bytes were not valid HTTP.
    Malformed(String),
    /// The body ended before the declared `Content-Length`.
    Truncated {
        /// Bytes the server declared.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// A non-success status after all retries (message is pre-redacted by
    /// the caller before it ever reaches this value).
    Status {
        /// The HTTP status code.
        code: u16,
        /// A short body snippet for diagnosis.
        body: String,
    },
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadUrl(m) => write!(f, "bad url: {m}"),
            HttpError::Connect(m) => write!(f, "connect failed: {m}"),
            HttpError::Io(m) => write!(f, "i/o error: {m}"),
            HttpError::Malformed(m) => write!(f, "malformed response: {m}"),
            HttpError::Truncated { expected, got } => {
                write!(f, "truncated body: declared {expected} bytes, got {got}")
            }
            HttpError::Status { code, body } => write!(f, "http status {code}: {body}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A parsed response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The decoded body.
    pub body: String,
}

impl Response {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// An `http://host:port/path` base, split into its parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endpoint {
    /// Host name or address.
    pub host: String,
    /// TCP port (default 80).
    pub port: u16,
    /// Path prefix, no trailing slash (e.g. `/v1`).
    pub base_path: String,
}

impl Endpoint {
    /// Parses a base URL. Only `http://` is supported — the client is
    /// dependency-free and cannot speak TLS.
    pub fn parse(base: &str) -> Result<Self, HttpError> {
        let rest = base.strip_prefix("http://").ok_or_else(|| {
            HttpError::BadUrl(format!(
                "`{base}` — only http:// endpoints are supported (no TLS); \
                 point at a local proxy for hosted providers"
            ))
        })?;
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], rest[i..].trim_end_matches('/')),
            None => (rest, ""),
        };
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => (
                h.to_string(),
                p.parse()
                    .map_err(|_| HttpError::BadUrl(format!("bad port in `{base}`")))?,
            ),
            None => (authority.to_string(), 80),
        };
        if host.is_empty() {
            return Err(HttpError::BadUrl(format!("no host in `{base}`")));
        }
        Ok(Self {
            host,
            port,
            base_path: path.to_string(),
        })
    }
}

/// Sends one `POST` with a JSON body and reads the full response.
/// `headers` are extra request headers (e.g. `Authorization`).
pub fn post_json(
    endpoint: &Endpoint,
    path: &str,
    headers: &[(String, String)],
    body: &str,
    timeout: Duration,
) -> Result<Response, HttpError> {
    let addr = format!("{}:{}", endpoint.host, endpoint.port);
    let mut stream =
        TcpStream::connect(&addr).map_err(|e| HttpError::Connect(format!("{addr}: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| HttpError::Io(e.to_string()))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| HttpError::Io(e.to_string()))?;

    let full_path = format!("{}{}", endpoint.base_path, path);
    let mut req = format!(
        "POST {full_path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        endpoint.host,
        body.len()
    );
    for (k, v) in headers {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str("\r\n");
    req.push_str(body);
    stream
        .write_all(req.as_bytes())
        .map_err(|e| HttpError::Io(e.to_string()))?;

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    parse_response(&raw)
}

/// Parses a complete HTTP/1.1 response held in memory.
fn parse_response(raw: &[u8]) -> Result<Response, HttpError> {
    let header_end = find_header_end(raw)
        .ok_or_else(|| HttpError::Malformed("no header/body separator".into()))?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| HttpError::Malformed("non-utf8 headers".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty response".into()))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "bad status line `{status_line}`"
        )));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line `{status_line}`")))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header `{line}`")))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }

    let body_bytes = &raw[header_end + 4..];
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        decode_chunked(body_bytes)?
    } else if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        if body_bytes.len() < len {
            return Err(HttpError::Truncated {
                expected: len,
                got: body_bytes.len(),
            });
        }
        body_bytes[..len].to_vec()
    } else {
        body_bytes.to_vec()
    };
    let body = String::from_utf8(body).map_err(|_| HttpError::Malformed("non-utf8 body".into()))?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

fn find_header_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

fn decode_chunked(mut rest: &[u8]) -> Result<Vec<u8>, HttpError> {
    let mut out = Vec::new();
    loop {
        let line_end = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or_else(|| HttpError::Malformed("bad chunk header".into()))?;
        let size_text = std::str::from_utf8(&rest[..line_end])
            .map_err(|_| HttpError::Malformed("bad chunk size".into()))?;
        let size = usize::from_str_radix(size_text.trim(), 16)
            .map_err(|_| HttpError::Malformed(format!("bad chunk size `{size_text}`")))?;
        rest = &rest[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if rest.len() < size + 2 {
            return Err(HttpError::Truncated {
                expected: size,
                got: rest.len().saturating_sub(2),
            });
        }
        out.extend_from_slice(&rest[..size]);
        rest = &rest[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parsing() {
        let e = Endpoint::parse("http://127.0.0.1:8080/v1").unwrap();
        assert_eq!(
            e,
            Endpoint {
                host: "127.0.0.1".into(),
                port: 8080,
                base_path: "/v1".into()
            }
        );
        let bare = Endpoint::parse("http://api.local").unwrap();
        assert_eq!(bare.port, 80);
        assert_eq!(bare.base_path, "");
        assert!(matches!(
            Endpoint::parse("https://api.openai.com/v1"),
            Err(HttpError::BadUrl(_))
        ));
        assert!(Endpoint::parse("http://:80/v1").is_err());
    }

    #[test]
    fn parses_content_length_response() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 5\r\n\r\nhello";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "hello");
        assert_eq!(r.header("Content-Type"), Some("application/json"));
    }

    #[test]
    fn truncated_bodies_are_detected() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 50\r\n\r\nshort";
        assert_eq!(
            parse_response(raw),
            Err(HttpError::Truncated {
                expected: 50,
                got: 5
            })
        );
    }

    #[test]
    fn decodes_chunked_bodies() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        assert_eq!(parse_response(raw).unwrap().body, "hello world");
    }

    #[test]
    fn malformed_responses_error() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 abc OK\r\n\r\n").is_err());
    }
}
