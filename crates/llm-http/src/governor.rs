//! The process-wide rate-limit governor every LLM connection consults.
//!
//! Hosted chat-completions backends rate-limit per account, not per
//! connection — when one pooled connection sees a 429, hammering the
//! endpoint from the other N-1 only deepens the penalty. So throttle
//! state is shared: a single [`RateGovernor`] gates *all* dispatch, and a
//! `Retry-After` observed anywhere pauses everyone until it elapses.
//!
//! Two mechanisms compose:
//!
//! * **pause gating** (always on): [`RateGovernor::pause_for`] sets a
//!   deadline; [`RateGovernor::acquire`] blocks until it passes. Driven by
//!   429 responses.
//! * **token bucket** (opt-in): with a requests-per-second budget
//!   (`NADA_LLM_RPS`, fractional values allowed) each `acquire` also
//!   spends a token, smoothing request onset so the pool does not trip
//!   the server's limiter in the first place. Unset means no proactive
//!   pacing — the governor only reacts to 429s.
//!
//! Every pause increments the `llm_pool_throttled_total` counter
//! (`nada-obs`), which the CI loopback e2e asserts on.

use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Environment variable holding the proactive requests-per-second budget.
pub const RPS_ENV: &str = "NADA_LLM_RPS";

/// Token-bucket burst capacity (requests that may start back-to-back
/// before pacing kicks in).
const BURST: f64 = 4.0;

#[derive(Debug)]
struct GovernorState {
    /// No request may start before this instant (set by 429s).
    pause_until: Option<Instant>,
    /// Token bucket, present only when an RPS budget is configured.
    tokens: f64,
    last_refill: Instant,
}

/// A shared rate limiter: pause gating driven by 429 responses plus an
/// optional proactive token bucket. Clone the [`Arc`] into every
/// connection of every pool that talks to the same backend — the
/// [`RateGovernor::global`] instance is what production pools use, so
/// daemon lanes and concurrent searches in one process share one budget.
#[derive(Debug)]
pub struct RateGovernor {
    state: Mutex<GovernorState>,
    wakeup: Condvar,
    /// Requests per second, `None` = no proactive pacing.
    rps: Option<f64>,
}

impl RateGovernor {
    /// A governor with an explicit pacing budget (`None` disables the
    /// token bucket; pause gating is always active).
    pub fn new(rps: Option<f64>) -> Self {
        Self {
            state: Mutex::new(GovernorState {
                pause_until: None,
                tokens: BURST,
                last_refill: Instant::now(),
            }),
            wakeup: Condvar::new(),
            rps: rps.filter(|r| *r > 0.0),
        }
    }

    /// A governor configured from [`RPS_ENV`].
    pub fn from_env() -> Self {
        Self::new(
            std::env::var(RPS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<f64>().ok()),
        )
    }

    /// The process-wide governor (configured from the environment on
    /// first use). All production clients share this one.
    pub fn global() -> &'static Arc<RateGovernor> {
        static GOVERNOR: OnceLock<Arc<RateGovernor>> = OnceLock::new();
        GOVERNOR.get_or_init(|| Arc::new(RateGovernor::from_env()))
    }

    /// Blocks until dispatch is permitted: any active pause has elapsed
    /// and (when pacing is configured) a token is available.
    pub fn acquire(&self) {
        let mut state = self.state.lock().expect("governor lock");
        loop {
            let now = Instant::now();
            // 1. Honor an active pause.
            if let Some(until) = state.pause_until {
                if let Some(remaining) = until.checked_duration_since(now) {
                    let (next, _) = self
                        .wakeup
                        .wait_timeout(state, remaining)
                        .expect("governor lock");
                    state = next;
                    continue;
                }
                state.pause_until = None;
            }
            // 2. Spend a token when pacing is on.
            let Some(rps) = self.rps else { return };
            let elapsed = now.duration_since(state.last_refill).as_secs_f64();
            state.tokens = (state.tokens + elapsed * rps).min(BURST);
            state.last_refill = now;
            if state.tokens >= 1.0 {
                state.tokens -= 1.0;
                return;
            }
            let wait = Duration::from_secs_f64((1.0 - state.tokens) / rps);
            let (next, _) = self
                .wakeup
                .wait_timeout(state, wait)
                .expect("governor lock");
            state = next;
        }
    }

    /// Pauses *all* dispatch for `delay` (measured from now). Called when
    /// any connection sees a 429; an already-longer pause is kept.
    pub fn pause_for(&self, delay: Duration) {
        let until = Instant::now() + delay;
        let mut state = self.state.lock().expect("governor lock");
        let extended = match state.pause_until {
            Some(existing) => until > existing,
            None => true,
        };
        if extended {
            state.pause_until = Some(until);
            throttled_counter().inc();
        }
        drop(state);
        // Waiters re-check the deadline (their timed waits would find it
        // anyway; this just makes extension prompt).
        self.wakeup.notify_all();
    }

    /// The currently active pause deadline, if any (for tests/telemetry).
    pub fn paused_until(&self) -> Option<Instant> {
        let state = self.state.lock().expect("governor lock");
        state.pause_until.filter(|u| *u > Instant::now())
    }
}

impl Default for RateGovernor {
    fn default() -> Self {
        Self::new(None)
    }
}

fn throttled_counter() -> Arc<nada_obs::Counter> {
    static COUNTER: OnceLock<Arc<nada_obs::Counter>> = OnceLock::new();
    Arc::clone(COUNTER.get_or_init(|| nada_obs::counter("llm_pool_throttled_total")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpaced_governor_admits_immediately() {
        let gov = RateGovernor::new(None);
        let start = Instant::now();
        for _ in 0..100 {
            gov.acquire();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
        assert!(gov.paused_until().is_none());
    }

    #[test]
    fn pause_blocks_every_acquirer_until_the_deadline() {
        let gov = Arc::new(RateGovernor::new(None));
        gov.pause_for(Duration::from_millis(120));
        let start = Instant::now();
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let gov = Arc::clone(&gov);
                std::thread::spawn(move || {
                    gov.acquire();
                    start.elapsed()
                })
            })
            .collect();
        for w in workers {
            let waited = w.join().unwrap();
            assert!(
                waited >= Duration::from_millis(100),
                "acquire returned after {waited:?}, before the pause elapsed"
            );
        }
    }

    #[test]
    fn longer_pause_wins_shorter_pause_does_not_shrink() {
        let gov = RateGovernor::new(None);
        gov.pause_for(Duration::from_millis(200));
        let deadline = gov.paused_until().expect("paused");
        gov.pause_for(Duration::from_millis(10));
        assert_eq!(gov.paused_until(), Some(deadline));
        gov.pause_for(Duration::from_millis(500));
        assert!(gov.paused_until().expect("still paused") > deadline);
    }

    #[test]
    fn token_bucket_paces_beyond_the_burst() {
        // 50 rps, burst 4: ten acquires must spread ≥ 6 tokens of refill
        // (≈120ms); keep margins loose for CI.
        let gov = RateGovernor::new(Some(50.0));
        let start = Instant::now();
        for _ in 0..10 {
            gov.acquire();
        }
        assert!(
            start.elapsed() >= Duration::from_millis(100),
            "10 acquires at 50rps finished in {:?}",
            start.elapsed()
        );
    }
}
