//! A minimal hand-rolled JSON encoder/decoder.
//!
//! The build environment is offline, so `serde_json` is not available;
//! this module covers exactly what the chat-completions wire format
//! needs: objects, arrays, strings (with full escape handling incl.
//! `\uXXXX` and surrogate pairs), numbers, booleans and null. Object
//! fields keep insertion order so rendered requests are deterministic.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (decoded as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Renders compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                // JSON has no NaN/Inf; the wire format never carries them.
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the whole input must be one value).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(JsonError(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(JsonError(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(JsonError(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("non-utf8 number".into()))?;
        text.parse()
            .map(Json::Num)
            .map_err(|_| JsonError(format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Strings may hold multi-byte UTF-8; decode from the remaining
            // slice so non-ASCII survives intact.
            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|_| JsonError("non-utf8 string".into()))?;
            let mut chars = rest.char_indices();
            let (_, c) = chars
                .next()
                .ok_or_else(|| JsonError("unterminated string".into()))?;
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(JsonError("lone high surrogate".into()));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(JsonError("lone high surrogate".into()));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(JsonError("bad low surrogate".into()));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError("bad \\u escape".into()))?,
                            );
                        }
                        other => {
                            return Err(JsonError(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError("truncated \\u escape".into()));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError("non-utf8 \\u escape".into()))?;
        self.pos += 4;
        u32::from_str_radix(text, 16).map_err(|_| JsonError(format!("bad hex `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_chat_shapes() {
        let doc = Json::Obj(vec![
            ("model".into(), Json::Str("gpt-4".into())),
            (
                "messages".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("role".into(), Json::Str("user".into())),
                    (
                        "content".into(),
                        Json::Str("line1\nline2 \"q\" \\ \t".into()),
                    ),
                ])]),
            ),
            ("n".into(), Json::Num(3.0)),
            ("stream".into(), Json::Bool(false)),
            ("stop".into(), Json::Null),
        ]);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        let v = Json::parse(r#""a\u00e9b\ud83d\ude00c\u0007""#).unwrap();
        assert_eq!(v.str().unwrap(), "a\u{e9}b\u{1F600}c\u{7}");
        // Raw multi-byte UTF-8 survives too.
        assert_eq!(Json::parse("\"é😀\"").unwrap().str().unwrap(), "é😀");
        // Control chars render back as \u escapes and re-parse.
        let rendered = Json::Str("bell\u{7}".into()).render();
        assert_eq!(Json::parse(&rendered).unwrap().str().unwrap(), "bell\u{7}");
    }

    #[test]
    fn navigates_choices() {
        let body = r#"{"choices":[{"index":0,"message":{"role":"assistant","content":"hi"}}]}"#;
        let v = Json::parse(body).unwrap();
        let content = v
            .get("choices")
            .and_then(|c| c.idx(0))
            .and_then(|c| c.get("message"))
            .and_then(|m| m.get("content"))
            .and_then(Json::str);
        assert_eq!(content, Some("hi"));
    }

    #[test]
    fn numbers_parse() {
        assert_eq!(Json::parse("-12.5e2").unwrap().num(), Some(-1250.0));
        assert_eq!(Json::parse("42").unwrap().num(), Some(42.0));
    }

    #[test]
    fn malformed_documents_error() {
        for bad in ["{", "[1,", "\"unterminated", "tru", "{\"a\" 1}", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }
}
