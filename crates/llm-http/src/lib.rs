//! Real LLM serving for the NADA reproduction, with zero dependencies.
//!
//! The paper drives its pipeline with hosted GPT-3.5/GPT-4 endpoints
//! (Table 2); this crate is the production seam that lets the offline
//! reproduction do the same without pulling in a network stack:
//!
//! * [`json`] — a minimal hand-rolled JSON encoder/decoder covering the
//!   chat-completions wire format;
//! * [`http`] — an HTTP/1.1 client over `std::net::TcpStream`
//!   (`Content-Length` and chunked bodies, timeouts, `http://` only),
//!   both one-shot and persistent keep-alive ([`Transport`]);
//! * [`client::HttpClient`] — the OpenAI-style chat-completions adapter
//!   implementing [`nada_llm::LlmClient`], with retry/backoff (capped
//!   exponent, clamped delay), token-usage accounting, and the API key
//!   sourced from `NADA_API_KEY` alone;
//! * [`pool`] — [`ConnPool`] (N persistent connections, shared
//!   process-wide per endpoint) and [`PooledClient`] (fans
//!   `generate_wave` across the pool in submission-order slots);
//! * [`governor`] — the process-wide [`RateGovernor`]: one 429 anywhere
//!   pauses every connection, with an optional `NADA_LLM_RPS` token
//!   bucket for proactive pacing;
//! * [`redact`](mod@redact) — secret hygiene: the key lives in an [`ApiKey`] wrapper
//!   and every outward-facing string is scrubbed;
//! * [`server`] — loopback scripted servers ([`TestServer`] sequential,
//!   [`PoolServer`] concurrent keep-alive) so HTTP behavior — happy path,
//!   500 retries, truncated bodies, 429 backoff, wave ordering, shared
//!   throttling — is integration-tested with no real network.
//!
//! Recording a search through `nada_llm::RecordingClient` while this
//! backend generates produces an on-disk cassette replayable by
//! `nada_llm::ReplayClient` — the offline-CI loop the registry in
//! `nada-core` wires together.

pub mod client;
pub mod governor;
pub mod http;
pub mod json;
pub mod pool;
pub mod redact;
pub mod server;

pub use client::{HttpClient, HttpConfig, API_BASE_ENV, API_KEY_ENV, MAX_BACKOFF, SLOT_HEADER};
pub use governor::{RateGovernor, RPS_ENV};
pub use http::{Endpoint, HttpError, Response, Transport};
pub use json::{Json, JsonError};
pub use pool::{configured_conns, ConnPool, PooledClient, CONNS_ENV};
pub use redact::{redact, ApiKey, REDACTED};
pub use server::{PoolArrival, PoolBehavior, PoolServer, Received, Scripted, TestServer};
