//! The OpenAI-style chat-completions adapter behind [`LlmClient`].
//!
//! [`HttpClient`] renders a [`Prompt`] to text, POSTs it to
//! `{base}/chat/completions` as a single-user-message chat request, and
//! parses `choices[0].message.content` back into a [`Completion`] (fenced
//! code block → code, preceding prose → reasoning, mirroring the paper's
//! chain-of-thought responses). Requests ride a persistent keep-alive
//! [`Transport`]; the pooled variant ([`crate::pool::PooledClient`]) fans
//! waves across several of them through the same crate-private request
//! engine (`generate_over`).
//!
//! Transient failures — 429 rate limits (honoring `Retry-After`), 5xx,
//! dropped or truncated connections — retry with exponential backoff
//! (exponent capped, delay clamped to [`MAX_BACKOFF`]). A 429 routes its
//! delay through the shared [`RateGovernor`] so *every* connection pauses,
//! not just the one that tripped the limit. Other 4xx statuses fail fast:
//! retrying a rejected request only burns quota. The API key is read from
//! `NADA_API_KEY` *only*, and every error message passes through
//! [`redact`] so the key cannot leak into logs, cassettes or panics.
//!
//! Responses carrying a chat-completions `usage` object feed the
//! process-wide token meter (`nada_llm::global_token_meter`) and the
//! `llm_tokens_prompt_total` / `llm_tokens_completion_total` counters —
//! the substrate `--max-tokens-cost` budgets are enforced against.

use crate::governor::RateGovernor;
use crate::http::{Endpoint, HttpError, Transport};
use crate::json::Json;
use crate::redact::{redact, ApiKey};
use nada_llm::{global_token_meter, Completion, LlmClient, Prompt, TokenUsage};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Process-wide LLM backend telemetry (`nada-obs`). Counts and timings
/// only — no request or response *content* ever reaches the registry, so
/// metrics cannot leak prompts or keys.
struct HttpMetrics {
    requests: Arc<nada_obs::Counter>,
    retries: Arc<nada_obs::Counter>,
    rate_limited: Arc<nada_obs::Counter>,
    server_errors: Arc<nada_obs::Counter>,
    request_bytes: Arc<nada_obs::Counter>,
    response_bytes: Arc<nada_obs::Counter>,
    conn_reuse: Arc<nada_obs::Counter>,
    tokens_prompt: Arc<nada_obs::Counter>,
    tokens_completion: Arc<nada_obs::Counter>,
    duration: Arc<nada_obs::Histogram>,
}

fn http_metrics() -> &'static HttpMetrics {
    static METRICS: OnceLock<HttpMetrics> = OnceLock::new();
    METRICS.get_or_init(|| HttpMetrics {
        requests: nada_obs::counter("llm_http_requests_total"),
        retries: nada_obs::counter("llm_http_retries_total"),
        rate_limited: nada_obs::counter("llm_http_rate_limited_total"),
        server_errors: nada_obs::counter("llm_http_server_errors_total"),
        request_bytes: nada_obs::counter("llm_http_request_bytes_total"),
        response_bytes: nada_obs::counter("llm_http_response_bytes_total"),
        conn_reuse: nada_obs::counter("llm_http_conn_reuse_total"),
        tokens_prompt: nada_obs::counter("llm_tokens_prompt_total"),
        tokens_completion: nada_obs::counter("llm_tokens_completion_total"),
        duration: nada_obs::latency_histogram("llm_http_request_duration_ns"),
    })
}

/// The only environment variable the API key is ever read from.
pub const API_KEY_ENV: &str = "NADA_API_KEY";

/// Environment variable naming the chat-completions base URL
/// (e.g. `http://127.0.0.1:8080/v1`).
pub const API_BASE_ENV: &str = "NADA_API_BASE";

/// Request header carrying the submission slot of a pooled wave, so
/// loopback servers (and debugging proxies) can observe dispatch order
/// even though every request in a wave has an identical body.
pub const SLOT_HEADER: &str = "X-NADA-Slot";

/// Longest delay the retry curve will ever sleep, whatever the attempt
/// count or configured base.
pub const MAX_BACKOFF: Duration = Duration::from_secs(60);

/// The exponential backoff delay for retry `attempt` (0-based), with the
/// exponent capped and the product clamped so large attempt counts can
/// neither overflow the multiplication nor sleep unboundedly.
fn backoff_delay(base: Duration, attempt: u32) -> Duration {
    let factor = 1u32 << attempt.min(10);
    base.checked_mul(factor)
        .map_or(MAX_BACKOFF, |d| d.min(MAX_BACKOFF))
}

/// Connection and retry knobs for the HTTP backend.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Base URL, `http://host[:port][/prefix]`.
    pub base: String,
    /// Model identifier sent in the request body.
    pub model: String,
    /// Bearer token for the `Authorization` header, if the endpoint needs
    /// one. Never printed; see [`ApiKey`].
    pub api_key: Option<ApiKey>,
    /// Retries after the first attempt (429/5xx/transport errors only).
    pub max_retries: u32,
    /// Initial backoff; doubles per retry up to [`MAX_BACKOFF`].
    /// `Retry-After` overrides it.
    pub backoff: Duration,
    /// Per-request read/write timeout.
    pub timeout: Duration,
}

impl HttpConfig {
    /// A config with production retry defaults.
    pub fn new(base: impl Into<String>, model: impl Into<String>) -> Self {
        Self {
            base: base.into(),
            model: model.into(),
            api_key: None,
            max_retries: 3,
            backoff: Duration::from_millis(500),
            timeout: Duration::from_secs(60),
        }
    }

    /// Builds a config from the environment: base URL from
    /// [`API_BASE_ENV`] (required), key from [`API_KEY_ENV`] (optional —
    /// local proxies often need none).
    pub fn from_env(model: &str) -> Result<Self, HttpError> {
        let base = std::env::var(API_BASE_ENV).map_err(|_| {
            HttpError::BadUrl(format!(
                "{API_BASE_ENV} is not set; the http backend needs a \
                 chat-completions endpoint (e.g. http://127.0.0.1:8080/v1)"
            ))
        })?;
        let mut cfg = HttpConfig::new(base, model);
        cfg.api_key = std::env::var(API_KEY_ENV).ok().map(ApiKey::new);
        Ok(cfg)
    }
}

/// Scrubs the API key (when one is configured) out of outward-facing text.
pub(crate) fn redact_text(key: Option<&ApiKey>, text: &str) -> String {
    match key {
        Some(key) => redact(text, key.expose()),
        None => text.to_string(),
    }
}

/// Applies [`redact_text`] to every string an error carries.
pub(crate) fn redact_http_err(key: Option<&ApiKey>, e: HttpError) -> HttpError {
    match e {
        HttpError::BadUrl(m) => HttpError::BadUrl(redact_text(key, &m)),
        HttpError::Connect(m) => HttpError::Connect(redact_text(key, &m)),
        HttpError::Io(m) => HttpError::Io(redact_text(key, &m)),
        HttpError::Malformed(m) => HttpError::Malformed(redact_text(key, &m)),
        HttpError::Status { code, body } => HttpError::Status {
            code,
            body: redact_text(key, &body),
        },
        other => other,
    }
}

/// One generation over one transport, with retry/backoff — the request
/// engine shared by the serial [`HttpClient`] and every pooled
/// connection. `slot` (a wave's submission index) is sent as
/// [`SLOT_HEADER`] when present; `requests_sent` is incremented once per
/// wire attempt. Every returned error has already been redacted.
pub(crate) fn generate_over(
    transport: &mut Transport,
    cfg: &HttpConfig,
    governor: &RateGovernor,
    prompt: &Prompt,
    slot: Option<usize>,
    requests_sent: &mut usize,
) -> Result<Completion, HttpError> {
    let body = request_body(&cfg.model, prompt);
    let mut headers = Vec::new();
    if let Some(key) = &cfg.api_key {
        headers.push((
            "Authorization".to_string(),
            format!("Bearer {}", key.expose()),
        ));
    }
    if let Some(slot) = slot {
        headers.push((SLOT_HEADER.to_string(), slot.to_string()));
    }
    let metrics = http_metrics();
    let key = cfg.api_key.as_ref();
    let mut attempt: u32 = 0;
    loop {
        // Wait out any shared pause (and pacing budget) before the wire.
        governor.acquire();
        *requests_sent += 1;
        metrics.requests.inc();
        metrics.request_bytes.add(body.len() as u64);
        let result = {
            let _span = metrics.duration.start_span();
            transport.post_json("/chat/completions", &headers, &body)
        };
        if let Ok(resp) = &result {
            metrics.response_bytes.add(resp.body.len() as u64);
            if transport.last_reused() {
                metrics.conn_reuse.inc();
            }
            if resp.status == 429 {
                metrics.rate_limited.inc();
            } else if (500..600).contains(&resp.status) {
                metrics.server_errors.inc();
            }
        }
        // `Retry-After` (seconds) on a 429 overrides the backoff curve.
        let mut rate_limited = false;
        let mut server_delay = None;
        let error = match result {
            Ok(resp) if resp.status == 200 => {
                // Redact the *whole* body before anything else touches
                // it: snippets could otherwise cut the key mid-string
                // (making `redact` miss it), and a completion echoing
                // the key must not carry it into cassettes.
                let (completion, usage) =
                    completion_from_response(&redact_text(key, &resp.body), prompt)
                        .map_err(|e| redact_http_err(key, e))?;
                global_token_meter().record(usage);
                metrics.tokens_prompt.add(usage.prompt_tokens);
                metrics.tokens_completion.add(usage.completion_tokens);
                return Ok(completion);
            }
            Ok(resp) if resp.status == 429 || (500..600).contains(&resp.status) => {
                if resp.status == 429 {
                    rate_limited = true;
                    server_delay = resp
                        .header("retry-after")
                        .and_then(|v| v.parse::<u64>().ok())
                        .map(Duration::from_secs);
                }
                HttpError::Status {
                    code: resp.status,
                    body: snippet(&redact_text(key, &resp.body)),
                }
            }
            Ok(resp) => {
                // Client errors (bad key, unknown model) are not
                // transient; retrying only burns quota.
                return Err(HttpError::Status {
                    code: resp.status,
                    body: snippet(&redact_text(key, &resp.body)),
                });
            }
            Err(e @ HttpError::BadUrl(_)) => return Err(redact_http_err(key, e)),
            Err(e) => e, // connect/io/truncated/malformed: transient
        };
        if attempt >= cfg.max_retries {
            return Err(redact_http_err(key, error));
        }
        let delay = server_delay.unwrap_or_else(|| backoff_delay(cfg.backoff, attempt));
        metrics.retries.inc();
        if rate_limited {
            // The backend limits per account, not per connection: pause
            // *all* dispatch, then wait the pause out like everyone else.
            governor.pause_for(delay);
        } else {
            std::thread::sleep(delay);
        }
        attempt += 1;
    }
}

/// A chat-completions client implementing [`LlmClient`] over one
/// persistent connection.
#[derive(Debug)]
pub struct HttpClient {
    cfg: HttpConfig,
    transport: Transport,
    governor: Arc<RateGovernor>,
    requests_sent: usize,
}

impl HttpClient {
    /// Builds a client, validating the base URL up front. Dispatch is
    /// gated by the [process-wide governor](RateGovernor::global).
    pub fn new(cfg: HttpConfig) -> Result<Self, HttpError> {
        Self::with_governor(cfg, Arc::clone(RateGovernor::global()))
    }

    /// Builds a client gated by an explicit governor (tests inject a
    /// private one so scripted 429s cannot pause unrelated clients).
    pub fn with_governor(cfg: HttpConfig, governor: Arc<RateGovernor>) -> Result<Self, HttpError> {
        let endpoint = Endpoint::parse(&cfg.base)?;
        let transport = Transport::new(endpoint, cfg.timeout);
        Ok(Self {
            cfg,
            transport,
            governor,
            requests_sent: 0,
        })
    }

    /// Builds a client from the environment (see [`HttpConfig::from_env`]).
    pub fn from_env(model: &str) -> Result<Self, HttpError> {
        Self::new(HttpConfig::from_env(model)?)
    }

    /// Requests actually sent (includes retries).
    pub fn requests_sent(&self) -> usize {
        self.requests_sent
    }

    /// The active configuration.
    pub fn config(&self) -> &HttpConfig {
        &self.cfg
    }

    /// One generation, with retry/backoff. Every returned error has
    /// already been redacted.
    pub fn try_generate(&mut self, prompt: &Prompt) -> Result<Completion, HttpError> {
        generate_over(
            &mut self.transport,
            &self.cfg,
            &self.governor,
            prompt,
            None,
            &mut self.requests_sent,
        )
    }
}

impl LlmClient for HttpClient {
    fn model_name(&self) -> &str {
        &self.cfg.model
    }

    fn generate(&mut self, prompt: &Prompt) -> Completion {
        // The trait is infallible by design (mocks cannot fail); a hosted
        // backend that exhausted its retries has nothing sensible to
        // return, so it aborts the search loudly. The message was redacted
        // inside `try_generate`.
        self.try_generate(prompt)
            .unwrap_or_else(|e| panic!("http LLM backend failed after retries: {e}"))
    }
}

/// The chat-completions request body for one prompt.
fn request_body(model: &str, prompt: &Prompt) -> String {
    Json::Obj(vec![
        ("model".into(), Json::Str(model.to_string())),
        (
            "messages".into(),
            Json::Arr(vec![Json::Obj(vec![
                ("role".into(), Json::Str("user".into())),
                ("content".into(), Json::Str(prompt.render())),
            ])]),
        ),
    ])
    .render()
}

/// First few hundred chars of a body, for error diagnosis.
fn snippet(body: &str) -> String {
    let cut = body.char_indices().nth(200).map_or(body.len(), |(i, _)| i);
    body[..cut].to_string()
}

/// Extracts `choices[0].message.content` (split into a [`Completion`])
/// and the billed token counts from the optional `usage` object —
/// endpoints that omit `usage` bill zero, which keeps loopback fixtures
/// and token-less proxies working.
fn completion_from_response(
    body: &str,
    prompt: &Prompt,
) -> Result<(Completion, TokenUsage), HttpError> {
    let doc = Json::parse(body)
        .map_err(|e| HttpError::Malformed(format!("response body: {e} — {}", snippet(body))))?;
    let content = doc
        .get("choices")
        .and_then(|c| c.idx(0))
        .and_then(|c| c.get("message"))
        .and_then(|m| m.get("content"))
        .and_then(Json::str)
        .ok_or_else(|| {
            HttpError::Malformed(format!("no choices[0].message.content — {}", snippet(body)))
        })?;
    let usage = doc
        .get("usage")
        .map(|u| TokenUsage {
            prompt_tokens: u
                .get("prompt_tokens")
                .and_then(Json::num)
                .map_or(0, |n| n.max(0.0) as u64),
            completion_tokens: u
                .get("completion_tokens")
                .and_then(Json::num)
                .map_or(0, |n| n.max(0.0) as u64),
        })
        .unwrap_or_default();
    Ok((
        split_content(content, prompt.options.chain_of_thought),
        usage,
    ))
}

/// Splits assistant text into (reasoning, code): the first fenced block is
/// the code; prose before it is the chain-of-thought reasoning (kept only
/// when the prompt asked for it). Unfenced content is all code.
fn split_content(content: &str, chain_of_thought: bool) -> Completion {
    let (reasoning, code) = match content.find("```") {
        Some(open) => {
            let before = content[..open].trim();
            let after_fence = &content[open + 3..];
            // Skip the optional language tag on the fence line.
            let code_start = after_fence.find('\n').map_or(after_fence.len(), |i| i + 1);
            let block = &after_fence[code_start..];
            let code = match block.find("```") {
                Some(close) => &block[..close],
                None => block,
            };
            (
                (!before.is_empty() && chain_of_thought).then(|| before.to_string()),
                code.to_string(),
            )
        }
        None => (None, content.to_string()),
    };
    let mut code = code;
    if !code.ends_with('\n') {
        code.push('\n');
    }
    Completion { code, reasoning }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_prompt() -> Prompt {
        Prompt::state("state s { feature f = 1.0; }")
    }

    #[test]
    fn request_body_is_valid_json_with_the_rendered_prompt() {
        let body = request_body("gpt-4", &state_prompt());
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("model").and_then(Json::str), Some("gpt-4"));
        let content = doc
            .get("messages")
            .and_then(|m| m.idx(0))
            .and_then(|m| m.get("content"))
            .and_then(Json::str)
            .unwrap();
        assert!(content.contains("STATE REPRESENTATION"));
    }

    #[test]
    fn backoff_exponent_is_capped_and_delay_clamped() {
        let base = Duration::from_millis(500);
        assert_eq!(backoff_delay(base, 0), base);
        assert_eq!(backoff_delay(base, 1), base * 2);
        assert_eq!(backoff_delay(base, 2), base * 4);
        // Pre-fix, attempt 32 hit `2u32.pow(32)` — an overflow panic in
        // debug and a zero-delay hot loop in release. Now it clamps.
        for attempt in [7, 10, 11, 31, 32, 100, u32::MAX] {
            let d = backoff_delay(base, attempt);
            assert!(d <= MAX_BACKOFF, "attempt {attempt}: {d:?}");
            assert!(d >= base, "attempt {attempt}: {d:?}");
        }
        assert_eq!(backoff_delay(base, u32::MAX), MAX_BACKOFF);
        // A large base cannot multiply past the clamp either.
        assert_eq!(backoff_delay(Duration::from_secs(40), 5), MAX_BACKOFF);
    }

    #[test]
    fn splits_reasoning_and_fenced_code() {
        let c = split_content(
            "Idea: smooth the throughput.\n```\nstate s { feature f = 1.0; }\n```\nthanks!",
            true,
        );
        assert_eq!(c.reasoning.as_deref(), Some("Idea: smooth the throughput."));
        assert_eq!(c.code, "state s { feature f = 1.0; }\n");
        // Language tags on the fence are skipped.
        let tagged = split_content("```rust\ncode here\n```", true);
        assert_eq!(tagged.code, "code here\n");
        assert_eq!(tagged.reasoning, None);
    }

    #[test]
    fn unfenced_content_is_all_code() {
        let c = split_content("state s { feature f = 1.0; }", true);
        assert_eq!(c.code, "state s { feature f = 1.0; }\n");
        assert_eq!(c.reasoning, None);
    }

    #[test]
    fn reasoning_is_dropped_when_cot_is_off() {
        let c = split_content("thoughts\n```\ncode\n```", false);
        assert_eq!(c.reasoning, None);
        assert_eq!(c.code, "code\n");
    }

    #[test]
    fn completion_parses_from_chat_response() {
        let body = r#"{"choices":[{"index":0,"message":{"role":"assistant","content":"```\nstate x { feature f = 0.5; }\n```"}}]}"#;
        let (c, usage) = completion_from_response(body, &state_prompt()).unwrap();
        assert_eq!(c.code, "state x { feature f = 0.5; }\n");
        // No usage object: billed zero, not an error.
        assert_eq!(usage, TokenUsage::default());
    }

    #[test]
    fn usage_tokens_are_parsed_from_the_response() {
        let body = r#"{"choices":[{"index":0,"message":{"role":"assistant","content":"x"}}],"usage":{"prompt_tokens":321,"completion_tokens":45,"total_tokens":366}}"#;
        let (_, usage) = completion_from_response(body, &state_prompt()).unwrap();
        assert_eq!(usage.prompt_tokens, 321);
        assert_eq!(usage.completion_tokens, 45);
        assert_eq!(usage.total(), 366);
    }

    #[test]
    fn malformed_responses_are_errors_not_completions() {
        assert!(completion_from_response("{}", &state_prompt()).is_err());
        assert!(completion_from_response("not json", &state_prompt()).is_err());
    }

    #[test]
    fn debug_output_never_contains_the_key() {
        let mut cfg = HttpConfig::new("http://127.0.0.1:1/v1", "gpt-4");
        cfg.api_key = Some(ApiKey::new("sk-super-secret"));
        let client = HttpClient::new(cfg).unwrap();
        let dbg = format!("{client:?}");
        assert!(!dbg.contains("sk-super-secret"), "{dbg}");
    }
}
