//! The OpenAI-style chat-completions adapter behind [`LlmClient`].
//!
//! [`HttpClient`] renders a [`Prompt`] to text, POSTs it to
//! `{base}/chat/completions` as a single-user-message chat request, and
//! parses `choices[0].message.content` back into a [`Completion`] (fenced
//! code block → code, preceding prose → reasoning, mirroring the paper's
//! chain-of-thought responses).
//!
//! Transient failures — 429 rate limits (honoring `Retry-After`), 5xx,
//! dropped or truncated connections — retry with exponential backoff.
//! Other 4xx statuses fail fast: retrying a rejected request only burns
//! quota. The API key is read from `NADA_API_KEY` *only*, and every error
//! message passes through [`redact`] so the key cannot leak into logs,
//! cassettes or panics.

use crate::http::{post_json, Endpoint, HttpError};
use crate::json::Json;
use crate::redact::{redact, ApiKey};
use nada_llm::{Completion, LlmClient, Prompt};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Process-wide LLM backend telemetry (`nada-obs`). Counts and timings
/// only — no request or response *content* ever reaches the registry, so
/// metrics cannot leak prompts or keys.
struct HttpMetrics {
    requests: Arc<nada_obs::Counter>,
    retries: Arc<nada_obs::Counter>,
    rate_limited: Arc<nada_obs::Counter>,
    server_errors: Arc<nada_obs::Counter>,
    request_bytes: Arc<nada_obs::Counter>,
    response_bytes: Arc<nada_obs::Counter>,
    duration: Arc<nada_obs::Histogram>,
}

fn http_metrics() -> &'static HttpMetrics {
    static METRICS: OnceLock<HttpMetrics> = OnceLock::new();
    METRICS.get_or_init(|| HttpMetrics {
        requests: nada_obs::counter("llm_http_requests_total"),
        retries: nada_obs::counter("llm_http_retries_total"),
        rate_limited: nada_obs::counter("llm_http_rate_limited_total"),
        server_errors: nada_obs::counter("llm_http_server_errors_total"),
        request_bytes: nada_obs::counter("llm_http_request_bytes_total"),
        response_bytes: nada_obs::counter("llm_http_response_bytes_total"),
        duration: nada_obs::latency_histogram("llm_http_request_duration_ns"),
    })
}

/// The only environment variable the API key is ever read from.
pub const API_KEY_ENV: &str = "NADA_API_KEY";

/// Environment variable naming the chat-completions base URL
/// (e.g. `http://127.0.0.1:8080/v1`).
pub const API_BASE_ENV: &str = "NADA_API_BASE";

/// Connection and retry knobs for the HTTP backend.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Base URL, `http://host[:port][/prefix]`.
    pub base: String,
    /// Model identifier sent in the request body.
    pub model: String,
    /// Bearer token for the `Authorization` header, if the endpoint needs
    /// one. Never printed; see [`ApiKey`].
    pub api_key: Option<ApiKey>,
    /// Retries after the first attempt (429/5xx/transport errors only).
    pub max_retries: u32,
    /// Initial backoff; doubles per retry. `Retry-After` overrides it.
    pub backoff: Duration,
    /// Per-request read/write timeout.
    pub timeout: Duration,
}

impl HttpConfig {
    /// A config with production retry defaults.
    pub fn new(base: impl Into<String>, model: impl Into<String>) -> Self {
        Self {
            base: base.into(),
            model: model.into(),
            api_key: None,
            max_retries: 3,
            backoff: Duration::from_millis(500),
            timeout: Duration::from_secs(60),
        }
    }
}

/// A chat-completions client implementing [`LlmClient`].
#[derive(Debug)]
pub struct HttpClient {
    cfg: HttpConfig,
    endpoint: Endpoint,
    requests_sent: usize,
}

impl HttpClient {
    /// Builds a client, validating the base URL up front.
    pub fn new(cfg: HttpConfig) -> Result<Self, HttpError> {
        let endpoint = Endpoint::parse(&cfg.base)?;
        Ok(Self {
            cfg,
            endpoint,
            requests_sent: 0,
        })
    }

    /// Builds a client from the environment: base URL from
    /// [`API_BASE_ENV`] (required), key from [`API_KEY_ENV`] (optional —
    /// local proxies often need none).
    pub fn from_env(model: &str) -> Result<Self, HttpError> {
        let base = std::env::var(API_BASE_ENV).map_err(|_| {
            HttpError::BadUrl(format!(
                "{API_BASE_ENV} is not set; the http backend needs a \
                 chat-completions endpoint (e.g. http://127.0.0.1:8080/v1)"
            ))
        })?;
        let mut cfg = HttpConfig::new(base, model);
        cfg.api_key = std::env::var(API_KEY_ENV).ok().map(ApiKey::new);
        Self::new(cfg)
    }

    /// Requests actually sent (includes retries).
    pub fn requests_sent(&self) -> usize {
        self.requests_sent
    }

    /// The active configuration.
    pub fn config(&self) -> &HttpConfig {
        &self.cfg
    }

    /// Scrubs the API key out of outward-facing text.
    fn redacted(&self, text: &str) -> String {
        match &self.cfg.api_key {
            Some(key) => redact(text, key.expose()),
            None => text.to_string(),
        }
    }

    /// Applies [`HttpClient::redacted`] to every string an error carries.
    fn redact_err(&self, e: HttpError) -> HttpError {
        match e {
            HttpError::BadUrl(m) => HttpError::BadUrl(self.redacted(&m)),
            HttpError::Connect(m) => HttpError::Connect(self.redacted(&m)),
            HttpError::Io(m) => HttpError::Io(self.redacted(&m)),
            HttpError::Malformed(m) => HttpError::Malformed(self.redacted(&m)),
            HttpError::Status { code, body } => HttpError::Status {
                code,
                body: self.redacted(&body),
            },
            other => other,
        }
    }

    /// One generation, with retry/backoff. Every returned error has
    /// already been redacted.
    pub fn try_generate(&mut self, prompt: &Prompt) -> Result<Completion, HttpError> {
        let body = request_body(&self.cfg.model, prompt);
        let mut headers = Vec::new();
        if let Some(key) = &self.cfg.api_key {
            headers.push((
                "Authorization".to_string(),
                format!("Bearer {}", key.expose()),
            ));
        }
        let metrics = http_metrics();
        let mut attempt: u32 = 0;
        loop {
            self.requests_sent += 1;
            metrics.requests.inc();
            metrics.request_bytes.add(body.len() as u64);
            let result = {
                let _span = metrics.duration.start_span();
                post_json(
                    &self.endpoint,
                    "/chat/completions",
                    &headers,
                    &body,
                    self.cfg.timeout,
                )
            };
            if let Ok(resp) = &result {
                metrics.response_bytes.add(resp.body.len() as u64);
                if resp.status == 429 {
                    metrics.rate_limited.inc();
                } else if (500..600).contains(&resp.status) {
                    metrics.server_errors.inc();
                }
            }
            // `Retry-After` (seconds) on a 429 overrides the backoff curve.
            let mut server_delay = None;
            let error = match result {
                Ok(resp) if resp.status == 200 => {
                    // Redact the *whole* body before anything else touches
                    // it: snippets could otherwise cut the key mid-string
                    // (making `redact` miss it), and a completion echoing
                    // the key must not carry it into cassettes.
                    return completion_from_response(&self.redacted(&resp.body), prompt)
                        .map_err(|e| self.redact_err(e));
                }
                Ok(resp) if resp.status == 429 || (500..600).contains(&resp.status) => {
                    if resp.status == 429 {
                        server_delay = resp
                            .header("retry-after")
                            .and_then(|v| v.parse::<u64>().ok())
                            .map(Duration::from_secs);
                    }
                    HttpError::Status {
                        code: resp.status,
                        body: snippet(&self.redacted(&resp.body)),
                    }
                }
                Ok(resp) => {
                    // Client errors (bad key, unknown model) are not
                    // transient; retrying only burns quota.
                    return Err(HttpError::Status {
                        code: resp.status,
                        body: snippet(&self.redacted(&resp.body)),
                    });
                }
                Err(e @ HttpError::BadUrl(_)) => return Err(self.redact_err(e)),
                Err(e) => e, // connect/io/truncated/malformed: transient
            };
            if attempt >= self.cfg.max_retries {
                return Err(self.redact_err(error));
            }
            let delay = server_delay.unwrap_or(self.cfg.backoff * 2u32.pow(attempt));
            metrics.retries.inc();
            std::thread::sleep(delay);
            attempt += 1;
        }
    }
}

impl LlmClient for HttpClient {
    fn model_name(&self) -> &str {
        &self.cfg.model
    }

    fn generate(&mut self, prompt: &Prompt) -> Completion {
        // The trait is infallible by design (mocks cannot fail); a hosted
        // backend that exhausted its retries has nothing sensible to
        // return, so it aborts the search loudly. The message was redacted
        // inside `try_generate`.
        self.try_generate(prompt)
            .unwrap_or_else(|e| panic!("http LLM backend failed after retries: {e}"))
    }
}

/// The chat-completions request body for one prompt.
fn request_body(model: &str, prompt: &Prompt) -> String {
    Json::Obj(vec![
        ("model".into(), Json::Str(model.to_string())),
        (
            "messages".into(),
            Json::Arr(vec![Json::Obj(vec![
                ("role".into(), Json::Str("user".into())),
                ("content".into(), Json::Str(prompt.render())),
            ])]),
        ),
    ])
    .render()
}

/// First few hundred chars of a body, for error diagnosis.
fn snippet(body: &str) -> String {
    let cut = body.char_indices().nth(200).map_or(body.len(), |(i, _)| i);
    body[..cut].to_string()
}

/// Extracts `choices[0].message.content` and splits it into a
/// [`Completion`].
fn completion_from_response(body: &str, prompt: &Prompt) -> Result<Completion, HttpError> {
    let doc = Json::parse(body)
        .map_err(|e| HttpError::Malformed(format!("response body: {e} — {}", snippet(body))))?;
    let content = doc
        .get("choices")
        .and_then(|c| c.idx(0))
        .and_then(|c| c.get("message"))
        .and_then(|m| m.get("content"))
        .and_then(Json::str)
        .ok_or_else(|| {
            HttpError::Malformed(format!("no choices[0].message.content — {}", snippet(body)))
        })?;
    Ok(split_content(content, prompt.options.chain_of_thought))
}

/// Splits assistant text into (reasoning, code): the first fenced block is
/// the code; prose before it is the chain-of-thought reasoning (kept only
/// when the prompt asked for it). Unfenced content is all code.
fn split_content(content: &str, chain_of_thought: bool) -> Completion {
    let (reasoning, code) = match content.find("```") {
        Some(open) => {
            let before = content[..open].trim();
            let after_fence = &content[open + 3..];
            // Skip the optional language tag on the fence line.
            let code_start = after_fence.find('\n').map_or(after_fence.len(), |i| i + 1);
            let block = &after_fence[code_start..];
            let code = match block.find("```") {
                Some(close) => &block[..close],
                None => block,
            };
            (
                (!before.is_empty() && chain_of_thought).then(|| before.to_string()),
                code.to_string(),
            )
        }
        None => (None, content.to_string()),
    };
    let mut code = code;
    if !code.ends_with('\n') {
        code.push('\n');
    }
    Completion { code, reasoning }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_prompt() -> Prompt {
        Prompt::state("state s { feature f = 1.0; }")
    }

    #[test]
    fn request_body_is_valid_json_with_the_rendered_prompt() {
        let body = request_body("gpt-4", &state_prompt());
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("model").and_then(Json::str), Some("gpt-4"));
        let content = doc
            .get("messages")
            .and_then(|m| m.idx(0))
            .and_then(|m| m.get("content"))
            .and_then(Json::str)
            .unwrap();
        assert!(content.contains("STATE REPRESENTATION"));
    }

    #[test]
    fn splits_reasoning_and_fenced_code() {
        let c = split_content(
            "Idea: smooth the throughput.\n```\nstate s { feature f = 1.0; }\n```\nthanks!",
            true,
        );
        assert_eq!(c.reasoning.as_deref(), Some("Idea: smooth the throughput."));
        assert_eq!(c.code, "state s { feature f = 1.0; }\n");
        // Language tags on the fence are skipped.
        let tagged = split_content("```rust\ncode here\n```", true);
        assert_eq!(tagged.code, "code here\n");
        assert_eq!(tagged.reasoning, None);
    }

    #[test]
    fn unfenced_content_is_all_code() {
        let c = split_content("state s { feature f = 1.0; }", true);
        assert_eq!(c.code, "state s { feature f = 1.0; }\n");
        assert_eq!(c.reasoning, None);
    }

    #[test]
    fn reasoning_is_dropped_when_cot_is_off() {
        let c = split_content("thoughts\n```\ncode\n```", false);
        assert_eq!(c.reasoning, None);
        assert_eq!(c.code, "code\n");
    }

    #[test]
    fn completion_parses_from_chat_response() {
        let body = r#"{"choices":[{"index":0,"message":{"role":"assistant","content":"```\nstate x { feature f = 0.5; }\n```"}}]}"#;
        let c = completion_from_response(body, &state_prompt()).unwrap();
        assert_eq!(c.code, "state x { feature f = 0.5; }\n");
    }

    #[test]
    fn malformed_responses_are_errors_not_completions() {
        assert!(completion_from_response("{}", &state_prompt()).is_err());
        assert!(completion_from_response("not json", &state_prompt()).is_err());
    }

    #[test]
    fn debug_output_never_contains_the_key() {
        let mut cfg = HttpConfig::new("http://127.0.0.1:1/v1", "gpt-4");
        cfg.api_key = Some(ApiKey::new("sk-super-secret"));
        let client = HttpClient::new(cfg).unwrap();
        let dbg = format!("{client:?}");
        assert!(!dbg.contains("sk-super-secret"), "{dbg}");
    }
}
