//! A compact, whitespace-tolerant text codec over [`Value`].
//!
//! Grammar (tokens may be separated by ASCII whitespace):
//!
//! ```text
//! value := '~'                    null
//!        | 'T' | 'F'              bool
//!        | 'u' DIGITS             unsigned integer
//!        | 'i' '-'? DIGITS        signed integer
//!        | 'f' HEX{1..16}         f64 as raw bits
//!        | '"' escaped-chars '"'  string  (\\ \" \n \t \r escapes)
//!        | '[' value* ']'         list
//!        | '{' (ident '=' value)* '}'  map
//! ```
//!
//! The float encoding (`f3ff0000000000000` = `1.0`) is the whole point:
//! decimal formatting would lose bits, and session resume must reproduce
//! scores *bit-exactly*.

use crate::value::{Error, Value};
use crate::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serializes a value to its text form.
pub fn to_string<T: Serialize + ?Sized>(t: &T) -> String {
    let mut out = String::new();
    render(&t.to_value(), &mut out);
    out
}

/// Parses a value from its text form.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Parses the text form into a raw [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        chars: s.char_indices().peekable(),
        src: s,
    };
    let v = p.value()?;
    p.skip_ws();
    match p.chars.next() {
        None => Ok(v),
        Some((at, c)) => Err(Error::new(format!("trailing `{c}` at byte {at}"))),
    }
}

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push('~'),
        Value::Bool(true) => out.push('T'),
        Value::Bool(false) => out.push('F'),
        Value::UInt(n) => {
            let _ = write!(out, "u{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "i{n}");
        }
        Value::Float(bits) => {
            let _ = write!(out, "f{bits:x}");
        }
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        Value::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(k);
                out.push('=');
                render(item, out);
            }
            out.push('}');
        }
    }
}

struct Parser<'s> {
    chars: std::iter::Peekable<std::str::CharIndices<'s>>,
    src: &'s str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn next_or(&mut self, what: &str) -> Result<char, Error> {
        self.chars
            .next()
            .map(|(_, c)| c)
            .ok_or_else(|| Error::new(format!("unexpected end of input, wanted {what}")))
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.next_or("a value")? {
            '~' => Ok(Value::Null),
            'T' => Ok(Value::Bool(true)),
            'F' => Ok(Value::Bool(false)),
            'u' => {
                let digits = self.take_while(|c| c.is_ascii_digit());
                digits
                    .parse()
                    .map(Value::UInt)
                    .map_err(|_| Error::new(format!("bad uint `{digits}`")))
            }
            'i' => {
                let digits = self.take_while(|c| c.is_ascii_digit() || c == '-');
                digits
                    .parse()
                    .map(Value::Int)
                    .map_err(|_| Error::new(format!("bad int `{digits}`")))
            }
            'f' => {
                let digits = self.take_while(|c| c.is_ascii_hexdigit());
                u64::from_str_radix(digits, 16)
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("bad float bits `{digits}`")))
            }
            '"' => self.string().map(Value::Str),
            '[' => {
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    if matches!(self.chars.peek(), Some((_, ']'))) {
                        self.chars.next();
                        return Ok(Value::List(items));
                    }
                    items.push(self.value()?);
                }
            }
            '{' => {
                let mut fields = Vec::new();
                loop {
                    self.skip_ws();
                    if matches!(self.chars.peek(), Some((_, '}'))) {
                        self.chars.next();
                        return Ok(Value::Map(fields));
                    }
                    let key = self.take_while(|c| c.is_ascii_alphanumeric() || c == '_');
                    if key.is_empty() {
                        return Err(Error::new("expected a field name"));
                    }
                    let key = key.to_string();
                    self.skip_ws();
                    match self.next_or("`=`")? {
                        '=' => {}
                        other => return Err(Error::new(format!("expected `=`, got `{other}`"))),
                    }
                    fields.push((key, self.value()?));
                }
            }
            other => Err(Error::new(format!("unexpected `{other}`"))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        let mut out = String::new();
        loop {
            match self.next_or("a string character")? {
                '"' => return Ok(out),
                '\\' => match self.next_or("an escape")? {
                    '\\' => out.push('\\'),
                    '"' => out.push('"'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    other => return Err(Error::new(format!("bad escape `\\{other}`"))),
                },
                other => out.push(other),
            }
        }
    }

    /// Consumes the longest prefix matching `pred`, returning it as a
    /// borrowed slice of the source.
    fn take_while(&mut self, pred: impl Fn(char) -> bool) -> &str {
        let start = self.chars.peek().map_or(self.src.len(), |(i, _)| *i);
        let mut end = start;
        while let Some((i, c)) = self.chars.peek().copied() {
            if !pred(c) {
                break;
            }
            end = i + c.len_utf8();
            self.chars.next();
        }
        &self.src[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_forms_parse() {
        assert_eq!(parse("~").unwrap(), Value::Null);
        assert_eq!(parse(" T ").unwrap(), Value::Bool(true));
        assert_eq!(parse("u42").unwrap(), Value::UInt(42));
        assert_eq!(parse("i-42").unwrap(), Value::Int(-42));
        assert_eq!(
            parse("f3ff0000000000000").unwrap(),
            Value::Float(1.0f64.to_bits())
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("a \"b\"\n".into())),
            (
                "xs".into(),
                Value::List(vec![Value::UInt(1), Value::Null, Value::Bool(false)]),
            ),
            (
                "inner".into(),
                Value::Map(vec![("f".into(), Value::Float((-0.5f64).to_bits()))]),
            ),
        ]);
        let mut s = String::new();
        render(&v, &mut s);
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse("u1 u2").is_err());
        assert!(parse("[u1").is_err());
        assert!(parse("{a=}").is_err());
    }

    #[test]
    fn dsl_like_strings_survive() {
        let code = "state s {\n  feature f = ema(x, 0.5); // \"quoted\"\n}";
        let v = Value::Str(code.into());
        let mut s = String::new();
        render(&v, &mut s);
        assert_eq!(parse(&s).unwrap(), v);
    }
}
