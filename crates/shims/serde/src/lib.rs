//! Offline stand-in for `serde`'s derive macros.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` — nothing
//! calls serialization at runtime yet (no `serde_json`, no trait bounds).
//! Until a real serialization backend is needed, these derives expand to
//! nothing, which keeps every `#[derive(serde::Serialize, ...)]` attribute
//! in the tree compiling without registry access.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
