//! Offline stand-in for `serde`, grown a real (minimal) runtime surface.
//!
//! Two layers:
//!
//! * The **derive macros** `#[derive(serde::Serialize)]` /
//!   `#[derive(serde::Deserialize)]` are re-exported from the
//!   `serde_derive` shim and still expand to nothing — they exist so type
//!   definitions across the workspace keep compiling without registry
//!   access, exactly as before.
//! * The **traits** [`Serialize`] / [`Deserialize`] are real: they
//!   round-trip through the self-describing [`Value`] tree and the
//!   [`text`] codec. Floats travel as raw IEEE-754 bits, so a
//!   serialize→deserialize round trip is *bit-exact* — the property the
//!   pipeline's snapshot/resume support is built on.
//!
//! Types that need runtime serialization (`nada-core`'s session
//! snapshots) implement the traits by hand; everything else keeps the
//! no-op derive. If registry access ever appears, swapping in real serde
//! is a Cargo.toml change plus deleting the manual impls.

pub use serde_derive::{Deserialize, Serialize};

pub mod text;
pub mod value;

pub use value::{Error, Value};

/// Conversion into the self-describing [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` back out of a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
    }
}

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::UInt(*self)
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u64()
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v.as_u64()?;
        usize::try_from(n).map_err(|_| Error::new(format!("{n} overflows usize")))
    }
}

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Deserialize for i64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_i64()
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(self.to_bits())
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_str()?.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::List(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_list()?.iter().map(T::from_value).collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::List(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_list()?;
        if items.len() != 2 {
            return Err(Error::new(format!("expected a pair, got {}", items.len())));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::List(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_list()?;
        if items.len() != 3 {
            return Err(Error::new(format!(
                "expected a triple, got {}",
                items.len()
            )));
        }
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let x: f64 = text::from_str(&text::to_string(&core::f64::consts::PI)).unwrap();
        assert_eq!(x.to_bits(), core::f64::consts::PI.to_bits());
        let b: bool = text::from_str(&text::to_string(&true)).unwrap();
        assert!(b);
        let n: u64 = text::from_str(&text::to_string(&42u64)).unwrap();
        assert_eq!(n, 42);
        let i: i64 = text::from_str(&text::to_string(&-7i64)).unwrap();
        assert_eq!(i, -7);
        let s: String = text::from_str(&text::to_string(&"a \"b\"\n\tc".to_string())).unwrap();
        assert_eq!(s, "a \"b\"\n\tc");
    }

    #[test]
    fn float_round_trip_is_bit_exact_for_odd_values() {
        for f in [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e-310,
            f64::NAN,
        ] {
            let back: f64 = text::from_str(&text::to_string(&f)).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f:?}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(3)];
        let back: Vec<Option<u64>> = text::from_str(&text::to_string(&v)).unwrap();
        assert_eq!(v, back);

        let pairs: Vec<(usize, f64)> = vec![(0, 1.5), (7, -2.25)];
        let back: Vec<(usize, f64)> = text::from_str(&text::to_string(&pairs)).unwrap();
        assert_eq!(pairs, back);
    }

    #[test]
    fn mismatched_shapes_error() {
        assert!(text::from_str::<u64>("T").is_err());
        assert!(text::from_str::<Vec<u64>>("u3").is_err());
        assert!(text::from_str::<(u64, u64)>("[u1 u2 u3]").is_err());
    }
}
