//! The self-describing value tree serialization round-trips through.

use std::fmt;

/// A serialized value. Floats are stored as raw IEEE-754 bits so the tree
/// (and the [`crate::text`] codec over it) round-trips bit-exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Absent value (`Option::None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (also carries `usize`).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// `f64` as raw bits.
    Float(u64),
    /// UTF-8 string.
    Str(String),
    /// Ordered sequence.
    List(Vec<Value>),
    /// Ordered field map (struct encoding). Keys are bare identifiers.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Short kind label used in error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) => "uint",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Map(_) => "map",
        }
    }

    /// Expects a boolean.
    pub fn as_bool(&self) -> Result<bool, Error> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }

    /// Expects an unsigned integer.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::UInt(n) => Ok(*n),
            other => Err(Error::expected("uint", other)),
        }
    }

    /// Expects a signed integer (unsigned values convert when they fit).
    pub fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::Int(n) => Ok(*n),
            Value::UInt(n) => {
                i64::try_from(*n).map_err(|_| Error::new(format!("{n} overflows i64")))
            }
            other => Err(Error::expected("int", other)),
        }
    }

    /// Expects a float, reassembled from its bits.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::Float(bits) => Ok(f64::from_bits(*bits)),
            other => Err(Error::expected("float", other)),
        }
    }

    /// Expects a string.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::expected("string", other)),
        }
    }

    /// Expects a list.
    pub fn as_list(&self) -> Result<&[Value], Error> {
        match self {
            Value::List(items) => Ok(items),
            other => Err(Error::expected("list", other)),
        }
    }

    /// Expects a map.
    pub fn as_map(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(fields) => Ok(fields),
            other => Err(Error::expected("map", other)),
        }
    }

    /// Looks a field up in a map value.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::new(format!("missing field `{name}`")))
    }
}

/// Shape or syntax error while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    fn expected(want: &str, got: &Value) -> Self {
        Self(format!("expected {want}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_lookup_reports_missing_names() {
        let v = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.field("a").unwrap(), &Value::UInt(1));
        assert!(v.field("b").unwrap_err().to_string().contains("`b`"));
    }

    #[test]
    fn uint_coerces_to_i64_when_it_fits() {
        assert_eq!(Value::UInt(5).as_i64().unwrap(), 5);
        assert!(Value::UInt(u64::MAX).as_i64().is_err());
    }
}
