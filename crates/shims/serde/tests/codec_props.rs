//! Property tests for the text codec (via the `proptest` shim).
//!
//! The codec guards checkpoint and snapshot integrity for the whole
//! workspace, so round-tripping must be *bit-exact* for every `f64` bit
//! pattern (NaN payloads, ±infinity, -0.0, subnormals), every string the
//! escape table touches, and arbitrarily nested value trees.

use proptest::prelude::*;
use serde::value::Value;
use serde::{text, Deserialize, Serialize};

/// Characters that exercise the codec's escaping and delimiter handling:
/// every escape (`\\ " \n \t \r`), the structural tokens, whitespace the
/// parser skips between tokens, and some multi-byte UTF-8.
const SPICY_CHARS: &[char] = &[
    '\\', '"', '\n', '\t', '\r', '{', '}', '[', ']', '=', '~', 'f', 'u', 'i', 'T', 'F', ' ', 'a',
    '0', '_', 'é', '界', '🦀',
];

fn spicy_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..SPICY_CHARS.len(), 0..24)
        .prop_map(|idxs| idxs.into_iter().map(|i| SPICY_CHARS[i]).collect())
}

/// Arbitrary `f64` bit patterns: uniform bits plus the named corner cases
/// (uniform draws essentially never hit them).
fn f64_bits() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..=u64::MAX,
        Just(f64::NAN.to_bits()),
        Just(f64::NAN.to_bits() | 0xDEAD), // NaN with a payload
        Just(f64::INFINITY.to_bits()),
        Just(f64::NEG_INFINITY.to_bits()),
        Just((-0.0f64).to_bits()),
        Just(0.0f64.to_bits()),
        Just(f64::MIN_POSITIVE.to_bits()),
        Just(1u64), // smallest subnormal
    ]
}

/// Arbitrary value trees: scalars at the leaves, lists and maps above.
fn value_tree() -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        Just(Value::Bool(true)),
        Just(Value::Bool(false)),
        (0u64..=u64::MAX).prop_map(Value::UInt),
        (i64::MIN..=i64::MAX).prop_map(Value::Int),
        f64_bits().prop_map(Value::Float),
        spicy_string().prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            (
                proptest::collection::vec(inner.clone(), 0..4),
                proptest::collection::vec(0usize..26, 1..5),
            )
                .prop_map(|(vals, key_idxs)| {
                    // Bare-identifier keys, deterministically derived.
                    let fields = vals
                        .into_iter()
                        .enumerate()
                        .map(|(i, v)| {
                            let c = (b'a' + (key_idxs[i % key_idxs.len()] as u8 % 26)) as char;
                            (format!("k{i}_{c}"), v)
                        })
                        .collect();
                    Value::Map(fields)
                }),
        ]
    })
}

fn roundtrip<T: Serialize + Deserialize>(t: &T) -> T {
    text::from_str(&text::to_string(t)).expect("encoded form must parse back")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn f64_round_trips_bit_exactly(bits in f64_bits()) {
        let f = f64::from_bits(bits);
        prop_assert_eq!(roundtrip(&f).to_bits(), bits);
    }

    #[test]
    fn f64_vectors_round_trip_bit_exactly(bits in proptest::collection::vec(f64_bits(), 0..16)) {
        let fs: Vec<f64> = bits.iter().copied().map(f64::from_bits).collect();
        let back = roundtrip(&fs);
        prop_assert_eq!(back.len(), fs.len());
        for (b, orig) in back.iter().zip(&bits) {
            prop_assert_eq!(b.to_bits(), *orig);
        }
    }

    #[test]
    fn strings_with_escape_characters_round_trip(s in spicy_string()) {
        prop_assert_eq!(roundtrip(&s), s);
    }

    #[test]
    fn nested_value_trees_round_trip(v in value_tree()) {
        // `Value` equality is exact (floats compare as raw bits), so this
        // is a bit-exact assertion for the whole tree.
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn nested_sequences_of_options_round_trip(
        xs in proptest::collection::vec(
            proptest::collection::vec(f64_bits(), 0..5),
            0..5,
        )
    ) {
        // Vec<Vec<f64>> covers the nested-sequence shape snapshots use
        // (reward curves per design).
        let nested: Vec<Vec<f64>> = xs
            .iter()
            .map(|inner| inner.iter().copied().map(f64::from_bits).collect())
            .collect();
        let back = roundtrip(&nested);
        for (row_back, row_orig) in back.iter().zip(&xs) {
            prop_assert_eq!(row_back.len(), row_orig.len());
            for (b, orig) in row_back.iter().zip(row_orig.iter()) {
                prop_assert_eq!(b.to_bits(), *orig);
            }
        }
    }

    #[test]
    fn encoding_is_canonical(v in value_tree()) {
        // encode(decode(encode(v))) == encode(v): the text form is a
        // function of the value alone, so checkpoint files can be
        // compared byte-for-byte.
        let once = text::to_string(&v);
        let twice = text::to_string(&text::parse(&once).expect("parses"));
        prop_assert_eq!(once, twice);
    }
}
