//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock loop (fixed warm-up, then a timed run) instead of criterion's
//! statistical machinery. Good enough to smoke-run `cargo bench` and spot
//! order-of-magnitude regressions; not a precision instrument.

use std::time::{Duration, Instant};

/// How a batched setup's cost relates to the routine (ignored by the shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Each batch holds exactly one input.
    PerIteration,
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
    test_mode: bool,
}

const WARMUP_ITERS: u64 = 3;
const TARGET: Duration = Duration::from_millis(300);
const MAX_ITERS: u64 = 1000;

impl Bencher {
    /// Times `routine`, storing the mean latency.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.iters = 1;
            return;
        }
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS && (iters < 10 || start.elapsed() < TARGET) {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            self.iters = 1;
            return;
        }
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine(setup()));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while iters < MAX_ITERS && (iters < 10 || measured < TARGET) {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.ns_per_iter = measured.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// Registry/driver for a set of benchmarks.
#[derive(Debug, Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// A driver honoring the process arguments: `--test` (as passed by
    /// `cargo bench -- --test`, real criterion's smoke mode) runs each
    /// benchmark body once without timing — CI uses it to prove benches
    /// still compile and run.
    pub fn from_args() -> Self {
        Self {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }

    /// Runs one named benchmark and prints its mean latency (or, in
    /// `--test` mode, runs the body once and reports `ok`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
            test_mode: self.test_mode,
        };
        f(&mut b);
        if self.test_mode {
            println!("bench {name:<48} ok (test mode)");
        } else {
            let (scaled, unit) = scale_ns(b.ns_per_iter);
            println!(
                "bench {name:<48} {scaled:>10.3} {unit}/iter ({} iters)",
                b.iters
            );
        }
        self
    }
}

fn scale_ns(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s ")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    }
}

/// Groups benchmark functions under a single callable, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::from_args();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("shim/self_test", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion::default();
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
