//! Offline stand-in for `serde`'s derive macros.
//!
//! The workspace *derives* `Serialize`/`Deserialize` in many places but
//! only a handful of snapshot types actually serialize at runtime — and
//! those implement the shim's traits by hand (see `serde`'s crate docs).
//! Until a real derive expansion is needed, these macros expand to
//! nothing, which keeps every `#[derive(serde::Serialize, ...)]`
//! attribute in the tree compiling without registry access.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
