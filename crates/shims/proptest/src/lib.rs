//! Offline stand-in for `proptest`.
//!
//! Covers the surface the workspace's property tests use: the `proptest!`
//! macro, `Strategy` with `prop_map`/`prop_recursive`/`boxed`, range and
//! tuple strategies, `Just`, `prop_oneof!`, `collection::vec`,
//! `prop_assert*!` and `prop_assume!`, and `ProptestConfig::with_cases`.
//!
//! Semantics differ from real proptest in one deliberate way: failing cases
//! are **not shrunk** — the failing input is printed as-is via the panic
//! message. Case generation is deterministic per test (seeded from the test
//! name), so failures reproduce across runs.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};
use std::rc::Rc;

/// Per-test configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Drives case generation for one test (a seeded RNG).
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Builds a runner whose stream depends only on `test_name`.
    pub fn deterministic(test_name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            sample: Rc::new(move |runner| self.generate(runner)),
        }
    }

    /// Builds recursive values: each of `depth` levels chooses between the
    /// leaf strategy (`self`) and `branch` applied to the level below.
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility; depth alone bounds the shim's recursion.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let level = branch(cur).boxed();
            cur = Union::new(vec![leaf.clone(), level]).boxed();
        }
        cur
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<V> {
    sample: Rc<dyn Fn(&mut TestRunner) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, runner: &mut TestRunner) -> V {
        (self.sample)(runner)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Self {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, runner: &mut TestRunner) -> V {
        let i = runner.rng().gen_range(0..self.arms.len());
        self.arms[i].generate(runner)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                SampleRange::sample_from(self.clone(), runner.rng())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                SampleRange::sample_from(self.clone(), runner.rng())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// Generates `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let n = runner.rng().gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property (panics; the shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    // One closure per case so `prop_assume!` can skip it.
                    #[allow(clippy::redundant_closure_call)]
                    (|| {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut runner);)*
                        $body
                    })();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..50).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn mapped_strategies_apply(x in small_even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_hits_every_arm(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_respected(_x in 0u32..10) {
            // Runs without error; case count is internal.
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut runner = crate::TestRunner::deterministic("vec_sizes");
        let s = crate::collection::vec(0.0f64..1.0, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut runner);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0u8..4)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut runner = crate::TestRunner::deterministic("trees");
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut runner);
            assert!(depth(&t) <= 4);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion never produced a branch");
    }
}
