//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! subset of the rand 0.8 API the workspace uses: [`Rng`] (`gen`,
//! `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — not the upstream
//! ChaCha12, but deterministic, well distributed, and sufficient for the
//! seeded simulations and calibrated samplers in this repository. Code
//! depending on the exact upstream stream would be wrong anyway: all
//! workspace invariants are "deterministic per seed", never "this exact
//! sequence".

/// Uniformly samplable primitive types (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range (`lo..hi` or `lo..=hi`) that [`Rng::gen_range`] can sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % width;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % width;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The random-number-generator interface.
pub trait Rng {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of a primitive type uniformly (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        self.gen::<f64>() < p
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Picks a uniformly random element (`None` on an empty slice).
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3..10);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
            let x = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn choose_and_shuffle_cover_the_slice() {
        let mut rng = StdRng::seed_from_u64(4);
        let items = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), items.len());

        let mut v: Vec<usize> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(
            v, orig,
            "20 elements staying in place is astronomically unlikely"
        );
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
