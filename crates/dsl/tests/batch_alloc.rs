//! Steady-state allocation accounting for the batched evaluation path.
//!
//! The batched engine's promise is O(1) heap allocations per epoch: after
//! the `EvalScratch` arena warms up, evaluating a batch of bindings every
//! decision tick allocates nothing — features, intermediate vectors and
//! call-argument buffers are all recycled. This test pins that down with a
//! counting global allocator: repeated `eval_batch_with` calls through a
//! warm scratch must perform **zero** allocations.
//!
//! (Kept as its own integration-test binary so the global allocator does
//! not interfere with unrelated tests.)

use nada_dsl::{seeds, EvalScratch, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_batched_eval_allocates_nothing() {
    let state = seeds::pensieve_state();
    // A batch of distinct bindings, as the lockstep engine would hold one
    // per live episode.
    let bindings: Vec<Vec<Value>> = (0..4)
        .map(|i| {
            state
                .schema_midpoint_inputs()
                .into_iter()
                .map(|v| match v {
                    Value::Scalar(x) => Value::Scalar(x + i as f64),
                    Value::Vector(mut xs) => {
                        for x in &mut xs {
                            *x += i as f64;
                        }
                        Value::Vector(xs)
                    }
                })
                .collect()
        })
        .collect();

    let mut scratch = EvalScratch::default();
    let mut rows = Vec::new();

    // Warm-up: let the arena and the output buffer reach their fixpoint
    // capacities (the pool's reuse order stabilizes within a few rounds).
    for _ in 0..8 {
        state
            .eval_batch_with(
                bindings.iter().map(|b| b.as_slice()),
                &mut scratch,
                &mut rows,
            )
            .unwrap();
    }

    let before = allocations();
    for _ in 0..100 {
        let n = state
            .eval_batch_with(
                bindings.iter().map(|b| b.as_slice()),
                &mut scratch,
                &mut rows,
            )
            .unwrap();
        assert_eq!(n, bindings.len());
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warm batched evaluation must not allocate (got {} allocations over 100 batched calls)",
        after - before
    );
}

#[test]
fn cold_path_still_allocates_but_only_while_warming() {
    // Sanity check on the counter itself: the first evaluation through a
    // fresh scratch *does* allocate (arena warm-up), so a zero reading
    // above cannot be a broken counter.
    let state = seeds::cc_state();
    let inputs = state.schema_midpoint_inputs();
    let mut scratch = EvalScratch::default();
    let mut rows = Vec::new();
    let before = allocations();
    state
        .eval_batch_with(std::iter::once(inputs.as_slice()), &mut scratch, &mut rows)
        .unwrap();
    assert!(
        allocations() > before,
        "fresh-arena evaluation should allocate"
    );
}
