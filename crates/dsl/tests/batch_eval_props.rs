//! Property tests: batched evaluation ≡ per-binding evaluation,
//! bit-for-bit, over fuzz-generated designs and random bindings.
//!
//! The batched engine's determinism contract rests on
//! `eval_batch_with` producing exactly the rows per-step
//! `eval_f32_with` would — for *any* compiled program, not just the seed
//! designs. Programs come from `nada_dsl::fuzz::random_state_source`
//! (shape-valid by construction; the few that fail the compile trial run
//! are skipped, as the pipeline's §2.2 check would skip them).

use nada_dsl::fuzz::{random_inputs, random_inputs_into, random_state_source};
use nada_dsl::{abr_schema, cc_schema, compile_state_with_schema, EvalScratch, InputSchema, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn schema_for(pick: u8) -> InputSchema {
    if pick.is_multiple_of(2) {
        abr_schema()
    } else {
        cc_schema()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For fuzz-generated designs over both workload schemas, evaluating B
    /// random bindings through one batched call equals evaluating each
    /// binding alone — same flat values, same order, same bits.
    #[test]
    fn eval_batch_matches_per_binding_eval(seed in 0u64..1_000_000, pick in 0u8..2, batch in 1usize..7) {
        let schema = schema_for(pick);
        let mut rng = StdRng::seed_from_u64(seed);
        let source = random_state_source(&schema, &mut rng);
        let Ok(state) = compile_state_with_schema(&source, schema) else {
            // Trial-run rejects (non-finite at midpoint) are expected for a
            // small fraction of generated programs; the property is about
            // programs the pipeline would actually train.
            return;
        };

        let bindings: Vec<Vec<Value>> = (0..batch)
            .map(|_| random_inputs(&state, &mut rng))
            .collect();

        // Reference: per-binding eval, each through its own fresh scratch.
        let mut reference: Vec<f32> = Vec::new();
        let mut reference_ok = true;
        for b in &bindings {
            match state.eval_f32(b) {
                Ok(feats) => reference.extend(feats.into_iter().flatten()),
                Err(_) => {
                    reference_ok = false;
                    break;
                }
            }
        }

        // Batched: one shared arena across all rows.
        let mut scratch = EvalScratch::default();
        let mut rows = Vec::new();
        let batch_result = state.eval_batch_with(
            bindings.iter().map(|b| b.as_slice()),
            &mut scratch,
            &mut rows,
        );

        if reference_ok {
            let n = batch_result.expect("per-binding eval succeeded, batch must too");
            prop_assert_eq!(n, bindings.len());
            prop_assert_eq!(
                rows.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        } else {
            prop_assert!(batch_result.is_err());
        }
    }

    /// A reused scratch arena never contaminates later evaluations: running
    /// unrelated programs through the same scratch first, then the design,
    /// gives the same bits as a fresh scratch.
    #[test]
    fn scratch_reuse_is_invisible(seed in 0u64..1_000_000, pick in 0u8..2) {
        let schema = schema_for(pick);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5C4A7C8);
        let source = random_state_source(&schema, &mut rng);
        let Ok(state) = compile_state_with_schema(&source, schema) else {
            return;
        };
        let inputs = random_inputs(&state, &mut rng);

        let fresh = state.eval_f32(&inputs);

        let mut dirty = EvalScratch::default();
        // Warm the arena with a different program's vectors.
        let warm = nada_dsl::seeds::pensieve_state();
        let warm_inputs = warm.schema_midpoint_inputs();
        let _ = warm.eval_f32_with(&warm_inputs, &mut dirty);
        let reused = state.eval_f32_with(&inputs, &mut dirty);

        match (fresh, reused) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "fresh {a:?} vs reused {b:?}"),
        }
    }

    /// `random_inputs_into` reuses buffers without changing the draws.
    #[test]
    fn random_inputs_into_matches_allocating_form(seed in 0u64..1_000_000) {
        let state = nada_dsl::seeds::pensieve_state();
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let allocated = random_inputs(&state, &mut rng_a);
        let mut reused = vec![Value::Vector(vec![9.0; 3]); 2]; // wrong arity+shapes on purpose
        random_inputs_into(&state, &mut rng_b, &mut reused);
        prop_assert_eq!(allocated, reused);
    }
}
