//! Input schema: what the ABR environment offers to state programs.
//!
//! The schema is the contract between the environment (`nada-sim`'s
//! `Observation`) and state programs: every input a program may declare,
//! its shape, and a realistic value range used by the fuzzing-based
//! normalization check. Note that `buffer_history_s` is available even
//! though the original Pensieve state ignores it — §4 of the paper
//! highlights buffer-history features as NADA's most interesting discovery.

use crate::ast::InputType;

/// One available input.
#[derive(Debug, Clone, PartialEq)]
pub struct InputSpec {
    /// Input name as referenced in programs.
    pub name: &'static str,
    /// Shape provided by the environment.
    pub ty: InputType,
    /// Lower bound of realistic values (per element), for fuzzing.
    pub fuzz_lo: f64,
    /// Upper bound of realistic values (per element), for fuzzing.
    pub fuzz_hi: f64,
    /// What the input means (also used in generated prompt text).
    pub doc: &'static str,
}

/// An ordered set of available inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct InputSchema {
    specs: Vec<InputSpec>,
}

impl InputSchema {
    /// Builds a schema from specs.
    pub fn new(specs: Vec<InputSpec>) -> Self {
        Self { specs }
    }

    /// All specs, in binding order.
    pub fn specs(&self) -> &[InputSpec] {
        &self.specs
    }

    /// Number of inputs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True if the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Finds a spec and its binding index by name.
    pub fn lookup(&self, name: &str) -> Option<(usize, &InputSpec)> {
        self.specs.iter().enumerate().find(|(_, s)| s.name == name)
    }
}

/// History length offered by the environment (Pensieve's `S_LEN`).
pub const HISTORY_LEN: usize = 8;
/// Number of ladder levels (both paper ladders have six).
pub const N_LEVELS: usize = 6;

/// The ABR input schema used throughout this reproduction.
///
/// Fuzz ranges are deliberately *raw* magnitudes — chunk sizes up to tens of
/// megabytes, bitrates up to 53 000 kbps — so that a state program that
/// forgets to normalize fails the paper's `T = 100` check exactly like the
/// "chunk sizes in bytes" example in §2.2.
pub fn abr_schema() -> InputSchema {
    InputSchema::new(vec![
        InputSpec {
            name: "throughput_mbps",
            ty: InputType::Vec(HISTORY_LEN),
            fuzz_lo: 0.0,
            fuzz_hi: 150.0,
            doc: "throughput measured for each of the last 8 chunk downloads, Mbps",
        },
        InputSpec {
            name: "download_time_s",
            ty: InputType::Vec(HISTORY_LEN),
            fuzz_lo: 0.0,
            fuzz_hi: 30.0,
            doc: "download delay of each of the last 8 chunks, seconds",
        },
        InputSpec {
            name: "buffer_history_s",
            ty: InputType::Vec(HISTORY_LEN),
            fuzz_lo: 0.0,
            fuzz_hi: 60.0,
            doc: "playback buffer level after each of the last 8 downloads, seconds",
        },
        InputSpec {
            name: "next_chunk_sizes_bytes",
            ty: InputType::Vec(N_LEVELS),
            fuzz_lo: 0.0,
            fuzz_hi: 3.0e7,
            doc: "encoded size of the next chunk at each quality, bytes",
        },
        InputSpec {
            name: "buffer_s",
            ty: InputType::Scalar,
            fuzz_lo: 0.0,
            fuzz_hi: 60.0,
            doc: "current playback buffer, seconds",
        },
        InputSpec {
            name: "chunks_remaining",
            ty: InputType::Scalar,
            fuzz_lo: 0.0,
            fuzz_hi: 48.0,
            doc: "chunks left in the video",
        },
        InputSpec {
            name: "total_chunks",
            ty: InputType::Scalar,
            fuzz_lo: 48.0,
            fuzz_hi: 48.0,
            doc: "total chunks in the video",
        },
        InputSpec {
            name: "last_bitrate_kbps",
            ty: InputType::Scalar,
            fuzz_lo: 300.0,
            fuzz_hi: 53_000.0,
            doc: "bitrate of the previously selected chunk, kbps",
        },
        InputSpec {
            name: "max_bitrate_kbps",
            ty: InputType::Scalar,
            fuzz_lo: 4_300.0,
            fuzz_hi: 53_000.0,
            doc: "highest ladder bitrate, kbps",
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_nine_inputs() {
        let s = abr_schema();
        assert_eq!(s.len(), 9);
        assert!(s.lookup("buffer_history_s").is_some());
        assert!(s.lookup("nonexistent").is_none());
    }

    #[test]
    fn fuzz_ranges_are_ordered() {
        for spec in abr_schema().specs() {
            assert!(spec.fuzz_lo <= spec.fuzz_hi, "{}", spec.name);
        }
    }

    #[test]
    fn raw_magnitudes_exceed_normalization_threshold() {
        // The whole point of the fuzz ranges: raw sizes/bitrates are > 100.
        let s = abr_schema();
        assert!(s.lookup("next_chunk_sizes_bytes").unwrap().1.fuzz_hi > 100.0);
        assert!(s.lookup("last_bitrate_kbps").unwrap().1.fuzz_hi > 100.0);
    }
}
