//! Input schemas: what each environment offers to state programs.
//!
//! A schema is the contract between an environment's declared observation
//! fields (`nada-sim`'s `netenv::FieldSpec`s) and state programs: every
//! input a program may declare, its shape, and a realistic value range used
//! by the fuzzing-based normalization check. Two workload schemas ship:
//!
//! * [`abr_schema`] — Pensieve ABR. Note that `buffer_history_s` is
//!   available even though the original Pensieve state ignores it — §4 of
//!   the paper highlights buffer-history features as NADA's most
//!   interesting discovery.
//! * [`cc_schema`] — chunkless congestion control (arXiv:2508.16074-style
//!   CWND policies); raw RTTs in milliseconds and windows in packets keep
//!   the `T = 100` normalization check meaningful.
//!
//! The pipeline asserts each schema agrees with its environment's declared
//! fields, so schema evolution stays a one-crate-pair change.

use crate::ast::InputType;

/// One available input.
#[derive(Debug, Clone, PartialEq)]
pub struct InputSpec {
    /// Input name as referenced in programs.
    pub name: &'static str,
    /// Shape provided by the environment.
    pub ty: InputType,
    /// Lower bound of realistic values (per element), for fuzzing.
    pub fuzz_lo: f64,
    /// Upper bound of realistic values (per element), for fuzzing.
    pub fuzz_hi: f64,
    /// What the input means (also used in generated prompt text).
    pub doc: &'static str,
}

/// An ordered set of available inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct InputSchema {
    specs: Vec<InputSpec>,
}

impl InputSchema {
    /// Builds a schema from specs.
    pub fn new(specs: Vec<InputSpec>) -> Self {
        Self { specs }
    }

    /// All specs, in binding order.
    pub fn specs(&self) -> &[InputSpec] {
        &self.specs
    }

    /// Number of inputs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True if the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Finds a spec and its binding index by name.
    pub fn lookup(&self, name: &str) -> Option<(usize, &InputSpec)> {
        self.specs.iter().enumerate().find(|(_, s)| s.name == name)
    }
}

/// History length offered by the environment (Pensieve's `S_LEN`).
pub const HISTORY_LEN: usize = 8;
/// Number of ladder levels (both paper ladders have six).
pub const N_LEVELS: usize = 6;

/// The ABR input schema used throughout this reproduction.
///
/// Fuzz ranges are deliberately *raw* magnitudes — chunk sizes up to tens of
/// megabytes, bitrates up to 53 000 kbps — so that a state program that
/// forgets to normalize fails the paper's `T = 100` check exactly like the
/// "chunk sizes in bytes" example in §2.2.
pub fn abr_schema() -> InputSchema {
    InputSchema::new(vec![
        InputSpec {
            name: "throughput_mbps",
            ty: InputType::Vec(HISTORY_LEN),
            fuzz_lo: 0.0,
            fuzz_hi: 150.0,
            doc: "throughput measured for each of the last 8 chunk downloads, Mbps",
        },
        InputSpec {
            name: "download_time_s",
            ty: InputType::Vec(HISTORY_LEN),
            fuzz_lo: 0.0,
            fuzz_hi: 30.0,
            doc: "download delay of each of the last 8 chunks, seconds",
        },
        InputSpec {
            name: "buffer_history_s",
            ty: InputType::Vec(HISTORY_LEN),
            fuzz_lo: 0.0,
            fuzz_hi: 60.0,
            doc: "playback buffer level after each of the last 8 downloads, seconds",
        },
        InputSpec {
            name: "next_chunk_sizes_bytes",
            ty: InputType::Vec(N_LEVELS),
            fuzz_lo: 0.0,
            fuzz_hi: 3.0e7,
            doc: "encoded size of the next chunk at each quality, bytes",
        },
        InputSpec {
            name: "buffer_s",
            ty: InputType::Scalar,
            fuzz_lo: 0.0,
            fuzz_hi: 60.0,
            doc: "current playback buffer, seconds",
        },
        InputSpec {
            name: "chunks_remaining",
            ty: InputType::Scalar,
            fuzz_lo: 0.0,
            fuzz_hi: 48.0,
            doc: "chunks left in the video",
        },
        InputSpec {
            name: "total_chunks",
            ty: InputType::Scalar,
            fuzz_lo: 48.0,
            fuzz_hi: 48.0,
            doc: "total chunks in the video",
        },
        InputSpec {
            name: "last_bitrate_kbps",
            ty: InputType::Scalar,
            fuzz_lo: 300.0,
            fuzz_hi: 53_000.0,
            doc: "bitrate of the previously selected chunk, kbps",
        },
        InputSpec {
            name: "max_bitrate_kbps",
            ty: InputType::Scalar,
            fuzz_lo: 4_300.0,
            fuzz_hi: 53_000.0,
            doc: "highest ladder bitrate, kbps",
        },
    ])
}

/// History length offered by the CC environment (matches ABR's `S_LEN`).
pub const CC_HISTORY_LEN: usize = 8;

/// The congestion-control input schema.
///
/// As with ABR, fuzz ranges are raw magnitudes — RTTs up to 1 000 ms,
/// windows up to 2 000 packets — so unnormalized CC states fail the
/// `T = 100` check exactly like raw byte counts do.
pub fn cc_schema() -> InputSchema {
    InputSchema::new(vec![
        InputSpec {
            name: "throughput_history_mbps",
            ty: InputType::Vec(CC_HISTORY_LEN),
            fuzz_lo: 0.0,
            fuzz_hi: 150.0,
            doc: "delivered throughput over each of the last 8 intervals, Mbps",
        },
        InputSpec {
            name: "rtt_history_ms",
            ty: InputType::Vec(CC_HISTORY_LEN),
            fuzz_lo: 0.0,
            fuzz_hi: 1000.0,
            doc: "smoothed round-trip time after each of the last 8 intervals, milliseconds",
        },
        InputSpec {
            name: "loss_history",
            ty: InputType::Vec(CC_HISTORY_LEN),
            fuzz_lo: 0.0,
            fuzz_hi: 1.0,
            doc: "fraction of offered packets dropped in each of the last 8 intervals",
        },
        InputSpec {
            name: "cwnd_pkts",
            ty: InputType::Scalar,
            fuzz_lo: 2.0,
            fuzz_hi: 2000.0,
            doc: "current congestion window, packets",
        },
        InputSpec {
            name: "min_rtt_ms",
            ty: InputType::Scalar,
            fuzz_lo: 1.0,
            fuzz_hi: 200.0,
            doc: "minimum round-trip time observed this episode, milliseconds",
        },
        InputSpec {
            name: "ticks_remaining",
            ty: InputType::Scalar,
            fuzz_lo: 0.0,
            fuzz_hi: 2400.0,
            doc: "decision intervals left in the episode",
        },
        InputSpec {
            name: "total_ticks",
            ty: InputType::Scalar,
            fuzz_lo: 60.0,
            fuzz_hi: 2400.0,
            doc: "total decision intervals in the episode",
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_nine_inputs() {
        let s = abr_schema();
        assert_eq!(s.len(), 9);
        assert!(s.lookup("buffer_history_s").is_some());
        assert!(s.lookup("nonexistent").is_none());
    }

    #[test]
    fn fuzz_ranges_are_ordered() {
        for schema in [abr_schema(), cc_schema()] {
            for spec in schema.specs() {
                assert!(spec.fuzz_lo <= spec.fuzz_hi, "{}", spec.name);
            }
        }
    }

    #[test]
    fn cc_schema_has_raw_magnitudes() {
        let s = cc_schema();
        assert_eq!(s.len(), 7);
        assert!(s.lookup("rtt_history_ms").unwrap().1.fuzz_hi > 100.0);
        assert!(s.lookup("cwnd_pkts").unwrap().1.fuzz_hi > 100.0);
        assert!(s.lookup("throughput_history_mbps").is_some());
    }

    #[test]
    fn schemas_do_not_share_input_names() {
        // A program can never silently compile against the wrong workload.
        let abr = abr_schema();
        for spec in cc_schema().specs() {
            assert!(
                abr.lookup(spec.name).is_none(),
                "`{}` is ambiguous",
                spec.name
            );
        }
    }

    #[test]
    fn raw_magnitudes_exceed_normalization_threshold() {
        // The whole point of the fuzz ranges: raw sizes/bitrates are > 100.
        let s = abr_schema();
        assert!(s.lookup("next_chunk_sizes_bytes").unwrap().1.fuzz_hi > 100.0);
        assert!(s.lookup("last_bitrate_kbps").unwrap().1.fuzz_hi > 100.0);
    }
}
