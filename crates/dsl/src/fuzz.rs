//! The fuzzing-based normalization check (paper §2.2).
//!
//! "We test the code with random inputs ('fuzzing'), and check whether any
//! output contains a feature value exceeding a predefined threshold T (set
//! to 100 in our study)." Inputs are drawn uniformly from each schema
//! entry's realistic range — including raw byte counts and kbps values — so
//! a state that forwards unnormalized magnitudes is caught exactly as in
//! the paper.

use crate::interp::CompiledState;
use crate::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fuzzing parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FuzzConfig {
    /// Number of random input vectors to try.
    pub runs: usize,
    /// Rejection threshold `T` on `|feature value|` (paper: 100).
    pub threshold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            runs: 24,
            threshold: 100.0,
            seed: 0,
        }
    }
}

const FUZZ_SEED: u64 = 0xF022_5EED_0000_000C;

/// Outcome of the normalization check.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum NormCheckOutcome {
    /// Every feature stayed within `[-T, T]` on every fuzz run.
    #[default]
    Pass,
    /// A feature exceeded the threshold.
    TooLarge {
        /// Name of the offending feature.
        feature: String,
        /// The violating magnitude.
        value: f64,
    },
    /// Evaluation itself failed on a fuzzed input (counts as a failed
    /// design, same as the paper's runtime exceptions).
    EvalError(crate::error::DslError),
}

/// Draws one random input binding from the schema's fuzz ranges.
pub fn random_inputs(state: &CompiledState, rng: &mut StdRng) -> Vec<Value> {
    let mut out = Vec::new();
    random_inputs_into(state, rng, &mut out);
    out
}

/// [`random_inputs`] writing into a reusable binding buffer — same draws in
/// the same order (so results are bit-identical), but steady-state reuse
/// performs no heap allocation.
pub fn random_inputs_into(state: &CompiledState, rng: &mut StdRng, out: &mut Vec<Value>) {
    let specs = state.schema().specs();
    out.resize(specs.len(), Value::Scalar(0.0));
    for (slot, spec) in out.iter_mut().zip(specs) {
        let draw = |rng: &mut StdRng| {
            if spec.fuzz_lo == spec.fuzz_hi {
                spec.fuzz_lo
            } else {
                rng.gen_range(spec.fuzz_lo..=spec.fuzz_hi)
            }
        };
        match spec.ty {
            crate::ast::InputType::Scalar => match slot {
                Value::Scalar(s) => *s = draw(rng),
                other => *other = Value::Scalar(draw(rng)),
            },
            crate::ast::InputType::Vec(n) => match slot {
                Value::Vector(dst) => {
                    dst.clear();
                    dst.extend((0..n).map(|_| draw(rng)));
                }
                other => *other = Value::Vector((0..n).map(|_| draw(rng)).collect()),
            },
        }
    }
}

/// Runs the paper's normalization check on a compiled state program.
pub fn normalization_check(state: &CompiledState, cfg: &FuzzConfig) -> NormCheckOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ FUZZ_SEED);
    let mut scratch = crate::interp::EvalScratch::default();
    let mut inputs = Vec::new();
    for _ in 0..cfg.runs {
        random_inputs_into(state, &mut rng, &mut inputs);
        let features = match state.eval_with(&inputs, &mut scratch) {
            Ok(f) => f,
            Err(e) => return NormCheckOutcome::EvalError(e),
        };
        for (value, name) in features.iter().zip(state.feature_names()) {
            let mag = value.max_abs();
            if mag > cfg.threshold {
                return NormCheckOutcome::TooLarge {
                    feature: name.to_string(),
                    value: mag,
                };
            }
        }
    }
    NormCheckOutcome::Pass
}

/// Generates a random, shape-correct state-program source over `schema` —
/// a stream of diverse designs for property tests (e.g. batched-vs-serial
/// evaluation equivalence). Programs are syntactically and shape-valid by
/// construction, but may still fail [`crate::compile_state_with_schema`]'s
/// trial run (a random division can be non-finite at the midpoint);
/// callers should skip those, exactly as the pipeline's §2.2 compilation
/// check does.
pub fn random_state_source(schema: &crate::schema::InputSchema, rng: &mut StdRng) -> String {
    let specs = schema.specs();
    let vec_inputs: Vec<&str> = specs
        .iter()
        .filter(|s| matches!(s.ty, crate::ast::InputType::Vec(_)))
        .map(|s| s.name)
        .collect();
    let scalar_inputs: Vec<&str> = specs
        .iter()
        .filter(|s| matches!(s.ty, crate::ast::InputType::Scalar))
        .map(|s| s.name)
        .collect();

    fn scalar_expr(rng: &mut StdRng, depth: usize, vecs: &[&str], scalars: &[&str]) -> String {
        let leaf = depth == 0 || rng.gen_bool(0.3);
        if leaf {
            if !scalars.is_empty() && rng.gen_bool(0.6) {
                format!("{} / 100.0", scalars[rng.gen_range(0..scalars.len())])
            } else {
                format!("{:.2}", rng.gen_range(-4.0..4.0))
            }
        } else {
            // The reducer arm needs a vector to reduce; schemas without
            // vector inputs skip it.
            let arm = if vecs.is_empty() {
                rng.gen_range(1..4u32)
            } else {
                rng.gen_range(0..4u32)
            };
            match arm {
                0 => {
                    const REDUCERS: [&str; 9] = [
                        "mean",
                        "std",
                        "last",
                        "first",
                        "min",
                        "max",
                        "trend",
                        "predict_next",
                        "harmonic_mean",
                    ];
                    let f = REDUCERS[rng.gen_range(0..REDUCERS.len())];
                    format!("{f}({}) / 50.0", vec_expr(rng, depth - 1, vecs, scalars))
                }
                1 => format!("-({})", scalar_expr(rng, depth - 1, vecs, scalars)),
                2 => {
                    const OPS: [&str; 3] = ["+", "-", "*"];
                    let op = OPS[rng.gen_range(0..OPS.len())];
                    format!(
                        "({}) {op} ({})",
                        scalar_expr(rng, depth - 1, vecs, scalars),
                        scalar_expr(rng, depth - 1, vecs, scalars)
                    )
                }
                _ => format!("abs({})", scalar_expr(rng, depth - 1, vecs, scalars)),
            }
        }
    }

    fn vec_expr(rng: &mut StdRng, depth: usize, vecs: &[&str], scalars: &[&str]) -> String {
        let name = vecs[rng.gen_range(0..vecs.len())];
        let base = format!("{name} / 1000.0");
        if depth == 0 {
            return base;
        }
        match rng.gen_range(0..5u32) {
            0 => format!("ema({base}, 0.5)"),
            1 => format!("zscore({name})"),
            2 => format!("savgol({base})"),
            3 => format!(
                "clip(({}) * ({}), -50.0, 50.0)",
                base,
                scalar_expr(rng, depth - 1, vecs, scalars)
            ),
            _ => base,
        }
    }

    let mut src = String::from("state fuzzed {\n");
    for spec in specs {
        let ty = match spec.ty {
            crate::ast::InputType::Scalar => "scalar".to_string(),
            crate::ast::InputType::Vec(n) => format!("vec[{n}]"),
        };
        src.push_str(&format!("  input {}: {};\n", spec.name, ty));
    }
    let n_features = rng.gen_range(1..=5);
    for i in 0..n_features {
        let expr = if !vec_inputs.is_empty() && rng.gen_bool(0.5) {
            vec_expr(rng, 2, &vec_inputs, &scalar_inputs)
        } else if vec_inputs.is_empty() {
            scalar_expr(rng, 2, &[], &scalar_inputs)
        } else {
            scalar_expr(rng, 2, &vec_inputs, &scalar_inputs)
        };
        src.push_str(&format!("  feature f{i} = {expr};\n"));
    }
    src.push('}');
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::compile_state;

    impl FuzzConfig {
        /// Test helper with a fixed seed.
        pub fn seeded(seed: u64) -> Self {
            Self {
                seed,
                ..Self::default()
            }
        }
    }

    #[test]
    fn random_sources_handle_scalar_only_schemas() {
        use crate::schema::{InputSchema, InputSpec};
        let schema = InputSchema::new(vec![InputSpec {
            name: "buffer_s",
            ty: crate::ast::InputType::Scalar,
            fuzz_lo: 0.0,
            fuzz_hi: 60.0,
            doc: "scalar-only schema",
        }]);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let src = random_state_source(&schema, &mut rng);
            assert!(src.contains("state fuzzed"), "generator produced: {src}");
        }
    }

    #[test]
    fn normalized_state_passes() {
        let s = compile_state(
            "state ok { input throughput_mbps: vec[8]; feature t = throughput_mbps / 150.0; }",
        )
        .unwrap();
        assert_eq!(
            normalization_check(&s, &FuzzConfig::default()),
            NormCheckOutcome::Pass
        );
    }

    #[test]
    fn raw_chunk_sizes_fail_like_the_paper_example() {
        // §2.2's example: chunk sizes in bytes, "over one million".
        let s = compile_state(
            "state bad { input next_chunk_sizes_bytes: vec[6]; \
             feature sizes = next_chunk_sizes_bytes; }",
        )
        .unwrap();
        match normalization_check(&s, &FuzzConfig::default()) {
            NormCheckOutcome::TooLarge { value, .. } => {
                assert!(
                    value > 1e6,
                    "raw byte features should exceed a million, got {value}"
                )
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn raw_bitrate_fails() {
        let s = compile_state(
            "state bad { input last_bitrate_kbps: scalar; feature b = last_bitrate_kbps; }",
        )
        .unwrap();
        assert!(matches!(
            normalization_check(&s, &FuzzConfig::default()),
            NormCheckOutcome::TooLarge { .. }
        ));
    }

    #[test]
    fn borderline_scaling_depends_on_threshold() {
        // throughput/2 can reach 75 — passes at T=100, fails at T=10.
        let s = compile_state(
            "state edge { input throughput_mbps: vec[8]; feature t = throughput_mbps / 2.0; }",
        )
        .unwrap();
        assert_eq!(
            normalization_check(&s, &FuzzConfig::default()),
            NormCheckOutcome::Pass
        );
        let strict = FuzzConfig {
            threshold: 10.0,
            ..FuzzConfig::default()
        };
        assert!(matches!(
            normalization_check(&s, &strict),
            NormCheckOutcome::TooLarge { .. }
        ));
    }

    #[test]
    fn fuzzing_catches_what_the_trial_run_misses() {
        // 1/(throughput - 75) is finite at the midpoint trial (75 exactly
        // would be hit only by the fuzzer's random draws near 75 making the
        // value huge).
        let s = compile_state(
            "state sneaky { input throughput_mbps: vec[8]; \
             feature f = recip(mean(throughput_mbps) - 74.9); }",
        )
        .unwrap();
        // With enough runs some draw lands near 74.9 and the magnitude
        // explodes past T.
        let cfg = FuzzConfig {
            runs: 2000,
            ..FuzzConfig::default()
        };
        assert!(matches!(
            normalization_check(&s, &cfg),
            NormCheckOutcome::TooLarge { .. }
        ));
    }

    #[test]
    fn check_is_deterministic_per_seed() {
        let s = compile_state("state ok { input buffer_s: scalar; feature b = buffer_s / 60.0; }")
            .unwrap();
        let a = normalization_check(&s, &FuzzConfig::seeded(5));
        let b = normalization_check(&s, &FuzzConfig::seeded(5));
        assert_eq!(a, b);
    }
}
