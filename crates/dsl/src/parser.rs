//! Recursive-descent parser for both program kinds.

use crate::ast::{
    ArchProgram, BinOp, Expr, FeatureDecl, InputDecl, InputType, LayerSpec, StateProgram,
};
use crate::error::DslError;
use crate::lexer::lex;
use crate::token::{Keyword, Token, TokenKind};

/// Parses a state program (`state <name> { … }`).
pub fn parse_state(source: &str) -> Result<StateProgram, DslError> {
    let mut p = Parser::new(lex(source)?);
    p.expect_keyword(Keyword::State)?;
    let name = p.expect_ident("program name")?;
    p.expect(TokenKind::LBrace)?;
    let mut inputs = Vec::new();
    let mut features = Vec::new();
    loop {
        match p.peek().clone() {
            TokenKind::Keyword(Keyword::Input) => {
                p.advance();
                let name = p.expect_ident("input name")?;
                p.expect(TokenKind::Colon)?;
                let ty = p.parse_input_type()?;
                p.expect(TokenKind::Semi)?;
                inputs.push(InputDecl { name, ty });
            }
            TokenKind::Keyword(Keyword::Feature) => {
                p.advance();
                let name = p.expect_ident("feature name")?;
                p.expect(TokenKind::Eq)?;
                let expr = p.parse_expr()?;
                p.expect(TokenKind::Semi)?;
                features.push(FeatureDecl { name, expr });
            }
            TokenKind::RBrace => {
                p.advance();
                break;
            }
            other => {
                return Err(p.err(format!(
                    "expected `input`, `feature` or `}}`, found {other}"
                )))
            }
        }
    }
    p.expect(TokenKind::Eof)?;
    Ok(StateProgram {
        name,
        inputs,
        features,
    })
}

/// Parses an architecture program (`network <name> { … }`).
pub fn parse_arch(source: &str) -> Result<ArchProgram, DslError> {
    let mut p = Parser::new(lex(source)?);
    p.expect_keyword(Keyword::Network)?;
    let name = p.expect_ident("program name")?;
    p.expect(TokenKind::LBrace)?;
    let mut temporal = None;
    let mut scalar = None;
    let mut hidden = Vec::new();
    let mut shared_heads = None;
    loop {
        match p.peek().clone() {
            TokenKind::Keyword(Keyword::Temporal) => {
                p.advance();
                let spec = p.parse_layer_spec()?;
                p.expect(TokenKind::Semi)?;
                if temporal.replace(spec).is_some() {
                    return Err(DslError::Duplicate {
                        name: "temporal".into(),
                    });
                }
            }
            // `scalar` is also the type keyword; in arch context it is a
            // section header.
            TokenKind::Keyword(Keyword::Scalar) => {
                p.advance();
                let spec = p.parse_layer_spec()?;
                p.expect(TokenKind::Semi)?;
                if scalar.replace(spec).is_some() {
                    return Err(DslError::Duplicate {
                        name: "scalar".into(),
                    });
                }
            }
            TokenKind::Keyword(Keyword::Hidden) => {
                p.advance();
                let spec = p.parse_layer_spec()?;
                p.expect(TokenKind::Semi)?;
                hidden.push(spec);
            }
            TokenKind::Keyword(Keyword::Heads) => {
                p.advance();
                let mode = match p.peek() {
                    TokenKind::Keyword(Keyword::Separate) => false,
                    TokenKind::Keyword(Keyword::Shared) => true,
                    other => {
                        return Err(p.err(format!("expected `separate` or `shared`, found {other}")))
                    }
                };
                p.advance();
                p.expect(TokenKind::Semi)?;
                if shared_heads.replace(mode).is_some() {
                    return Err(DslError::Duplicate {
                        name: "heads".into(),
                    });
                }
            }
            TokenKind::RBrace => {
                p.advance();
                break;
            }
            other => {
                return Err(p.err(format!(
                    "expected `temporal`, `scalar`, `hidden`, `heads` or `}}`, found {other}"
                )))
            }
        }
    }
    p.expect(TokenKind::Eof)?;
    Ok(ArchProgram {
        name,
        temporal: temporal.ok_or(DslError::MissingSection {
            section: "temporal",
        })?,
        scalar: scalar.ok_or(DslError::MissingSection { section: "scalar" })?,
        hidden,
        shared_heads: shared_heads.ok_or(DslError::MissingSection { section: "heads" })?,
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Self { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn advance(&mut self) -> &TokenKind {
        let k = &self.tokens[self.pos].kind;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn err(&self, message: String) -> DslError {
        DslError::Parse {
            line: self.line(),
            message,
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), DslError> {
        if *self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<(), DslError> {
        self.expect(TokenKind::Keyword(kw))
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, DslError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other}"))),
        }
    }

    fn parse_input_type(&mut self) -> Result<InputType, DslError> {
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Scalar) => {
                self.advance();
                Ok(InputType::Scalar)
            }
            TokenKind::Keyword(Keyword::Vec) => {
                self.advance();
                self.expect(TokenKind::LBracket)?;
                let n = match self.peek() {
                    TokenKind::Number(n) if *n >= 1.0 && n.fract() == 0.0 => *n as usize,
                    other => {
                        return Err(self.err(format!(
                            "expected a positive integer vector length, found {other}"
                        )))
                    }
                };
                self.advance();
                self.expect(TokenKind::RBracket)?;
                Ok(InputType::Vec(n))
            }
            other => Err(self.err(format!("expected `scalar` or `vec[N]`, found {other}"))),
        }
    }

    // expr := term (("+"|"-") term)*
    fn parse_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.parse_term()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    // term := unary (("*"|"/") unary)*
    fn parse_term(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, DslError> {
        if *self.peek() == TokenKind::Minus {
            self.advance();
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, DslError> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.advance();
                Ok(Expr::Number(n))
            }
            TokenKind::Ident(name) => {
                self.advance();
                if *self.peek() == TokenKind::LParen {
                    self.advance();
                    let mut args = Vec::new();
                    if *self.peek() != TokenKind::RParen {
                        loop {
                            args.push(self.parse_expr()?);
                            if *self.peek() == TokenKind::Comma {
                                self.advance();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }

    // layer_spec := IDENT "(" (IDENT "=" NUMBER ("," IDENT "=" NUMBER)*)? ")"
    //               ("->" IDENT ("(" params ")")? )?
    fn parse_layer_spec(&mut self) -> Result<LayerSpec, DslError> {
        let layer = self.expect_ident("layer name")?;
        let params = self.parse_named_params()?;
        let activation = if *self.peek() == TokenKind::Arrow {
            self.advance();
            let act = self.expect_ident("activation name")?;
            let act_params = if *self.peek() == TokenKind::LParen {
                self.parse_named_params()?
            } else {
                Vec::new()
            };
            Some((act, act_params))
        } else {
            None
        };
        Ok(LayerSpec {
            layer,
            params,
            activation,
        })
    }

    fn parse_named_params(&mut self) -> Result<Vec<(String, f64)>, DslError> {
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                let name = self.expect_ident("parameter name")?;
                self.expect(TokenKind::Eq)?;
                let negative = if *self.peek() == TokenKind::Minus {
                    self.advance();
                    true
                } else {
                    false
                };
                let value = match self.peek() {
                    TokenKind::Number(n) => *n,
                    other => return Err(self.err(format!("expected a number, found {other}"))),
                };
                self.advance();
                params.push((name, if negative { -value } else { value }));
                if *self.peek() == TokenKind::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_state() {
        let p = parse_state("state s { input buffer_s: scalar; feature b = buffer_s / 10.0; }")
            .unwrap();
        assert_eq!(p.name, "s");
        assert_eq!(p.inputs.len(), 1);
        assert_eq!(p.features.len(), 1);
    }

    #[test]
    fn parses_precedence() {
        let p = parse_state("state s { feature f = 1.0 + 2.0 * 3.0; }").unwrap();
        match &p.features[0].expr {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn parses_nested_calls() {
        let p =
            parse_state("state s { input t: vec[8]; feature f = ema(t, 0.5) / max(t); }").unwrap();
        assert!(matches!(p.features[0].expr, Expr::Binary { .. }));
    }

    #[test]
    fn parses_unary_minus() {
        let p = parse_state("state s { feature f = -1.0 + 2.0; }").unwrap();
        match &p.features[0].expr {
            Expr::Binary { lhs, .. } => assert!(matches!(**lhs, Expr::Neg(_))),
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn reports_missing_semicolon_with_line() {
        let err = parse_state("state s {\n feature f = 1.0\n}").unwrap_err();
        match err {
            DslError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parses_arch_program() {
        let a = parse_arch(
            "network n { temporal conv1d(filters=128, kernel=4) -> relu; \
             scalar dense(units=128) -> relu; hidden dense(units=128) -> relu; \
             heads separate; }",
        )
        .unwrap();
        assert_eq!(a.temporal.layer, "conv1d");
        assert_eq!(a.temporal.param("filters"), Some(128.0));
        assert!(!a.shared_heads);
        assert_eq!(a.hidden.len(), 1);
    }

    #[test]
    fn parses_activation_params() {
        let a = parse_arch(
            "network n { temporal dense(units=64) -> leaky_relu(alpha=0.01); \
             scalar dense(units=64) -> relu; hidden dense(units=64) -> relu; heads shared; }",
        )
        .unwrap();
        let (act, params) = a.temporal.activation.unwrap();
        assert_eq!(act, "leaky_relu");
        assert_eq!(params[0], ("alpha".to_string(), 0.01));
        assert!(a.shared_heads);
    }

    #[test]
    fn arch_requires_all_sections() {
        let err = parse_arch("network n { temporal dense(units=4); scalar dense(units=4); }")
            .unwrap_err();
        assert!(matches!(err, DslError::MissingSection { section: "heads" }));
    }

    #[test]
    fn rejects_duplicate_sections() {
        let err = parse_arch(
            "network n { temporal dense(units=4); temporal dense(units=8); \
             scalar dense(units=4); heads shared; }",
        )
        .unwrap_err();
        assert!(matches!(err, DslError::Duplicate { .. }));
    }

    #[test]
    fn rejects_garbage_after_program() {
        assert!(parse_state("state s { feature f = 1.0; } trailing").is_err());
    }
}
