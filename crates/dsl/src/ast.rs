//! Abstract syntax trees for state and architecture programs.

/// Shape annotation on an input declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputType {
    /// A single number.
    Scalar,
    /// A vector of the given length.
    Vec(usize),
}

impl InputType {
    /// Human-readable shape name used in error messages.
    pub fn describe(&self) -> String {
        match self {
            InputType::Scalar => "scalar".to_string(),
            InputType::Vec(n) => format!("vec[{n}]"),
        }
    }
}

/// `input <name>: <type>;`
#[derive(Debug, Clone, PartialEq)]
pub struct InputDecl {
    /// Input name (must exist in the environment's schema).
    pub name: String,
    /// Declared shape (must match the schema).
    pub ty: InputType,
}

/// `feature <name> = <expr>;`
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureDecl {
    /// Feature name (unique within the program).
    pub name: String,
    /// Defining expression.
    pub expr: Expr,
}

/// Expression grammar: arithmetic over inputs, literals and stdlib calls.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// Reference to a declared input (or an earlier feature).
    Ident(String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary arithmetic.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Stdlib function call.
    Call {
        /// Function name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

/// Binary arithmetic operators (elementwise, with scalar broadcasting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl BinOp {
    /// Symbol used by the pretty-printer.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// A parsed state program.
#[derive(Debug, Clone, PartialEq)]
pub struct StateProgram {
    /// Program name from the header.
    pub name: String,
    /// Declared inputs, in order.
    pub inputs: Vec<InputDecl>,
    /// Declared features, in order — this order defines the network's
    /// branch layout.
    pub features: Vec<FeatureDecl>,
}

/// A parsed architecture program (surface form of [`nada_nn::ArchConfig`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchProgram {
    /// Program name from the header.
    pub name: String,
    /// `temporal <layer> [-> <activation>];`
    pub temporal: LayerSpec,
    /// `scalar <layer> [-> <activation>];`
    pub scalar: LayerSpec,
    /// `hidden <layer> [-> <activation>];` — one entry per hidden layer.
    pub hidden: Vec<LayerSpec>,
    /// `heads separate;` or `heads shared;`
    pub shared_heads: bool,
}

/// One layer call with named parameters and an optional activation.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSpec {
    /// Layer function name (`conv1d`, `rnn`, `lstm`, `dense`).
    pub layer: String,
    /// Named parameters, e.g. `filters=128`.
    pub params: Vec<(String, f64)>,
    /// Post-layer activation name and its parameters, if any.
    pub activation: Option<(String, Vec<(String, f64)>)>,
}

impl LayerSpec {
    /// Looks up a named parameter.
    pub fn param(&self, name: &str) -> Option<f64> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}
