//! Compiling architecture programs to [`nada_nn::ArchConfig`].

use crate::ast::{ArchProgram, LayerSpec};
use crate::error::DslError;
use crate::parser::parse_arch;
use nada_nn::{Activation, ArchConfig, BranchKind, HeadMode};

/// Parses and compiles an architecture code block.
pub fn compile_arch(source: &str) -> Result<ArchConfig, DslError> {
    let program = parse_arch(source)?;
    compile_arch_program(&program)
}

/// Compiles an already-parsed architecture program.
pub fn compile_arch_program(program: &ArchProgram) -> Result<ArchConfig, DslError> {
    let temporal_branch = branch_kind(&program.temporal, /* allow_temporal */ true)?;
    let scalar_branch = branch_kind(&program.scalar, /* allow_temporal */ false)?;
    let temporal_activation = activation_of(&program.temporal)?;
    let scalar_activation = activation_of(&program.scalar)?;

    if program.hidden.is_empty() {
        return Err(DslError::MissingSection { section: "hidden" });
    }
    let mut hidden_units = None;
    let mut hidden_activation = Activation::Relu;
    for h in &program.hidden {
        if h.layer != "dense" {
            return Err(DslError::BadArchParam {
                message: format!("hidden layers must be dense, got `{}`", h.layer),
            });
        }
        let units = positive_int_param(h, "units")?;
        match hidden_units {
            None => hidden_units = Some(units),
            Some(u) if u == units => {}
            Some(u) => {
                return Err(DslError::BadArchParam {
                    message: format!("hidden layers must share a width ({u} vs {units})"),
                })
            }
        }
        hidden_activation = activation_of(h)?;
    }

    Ok(ArchConfig {
        temporal_branch,
        temporal_activation,
        scalar_branch,
        scalar_activation,
        hidden_units: hidden_units.expect("checked non-empty hidden stack"),
        hidden_layers: program.hidden.len(),
        hidden_activation,
        heads: if program.shared_heads {
            HeadMode::Shared
        } else {
            HeadMode::Separate
        },
    })
}

fn branch_kind(spec: &LayerSpec, allow_temporal: bool) -> Result<BranchKind, DslError> {
    match spec.layer.as_str() {
        "conv1d" if allow_temporal => Ok(BranchKind::Conv1d {
            filters: positive_int_param(spec, "filters")?,
            kernel: positive_int_param(spec, "kernel")?,
        }),
        "rnn" if allow_temporal => Ok(BranchKind::Rnn {
            units: positive_int_param(spec, "units")?,
        }),
        "lstm" if allow_temporal => Ok(BranchKind::Lstm {
            units: positive_int_param(spec, "units")?,
        }),
        "dense" => Ok(BranchKind::Dense {
            units: positive_int_param(spec, "units")?,
        }),
        other if allow_temporal => Err(DslError::BadArchParam {
            message: format!("unknown temporal layer `{other}`"),
        }),
        other => Err(DslError::BadArchParam {
            message: format!("scalar branches must be dense, got `{other}`"),
        }),
    }
}

fn positive_int_param(spec: &LayerSpec, name: &str) -> Result<usize, DslError> {
    let v = spec.param(name).ok_or_else(|| DslError::BadArchParam {
        message: format!("`{}` is missing parameter `{name}`", spec.layer),
    })?;
    if v < 1.0 || v.fract() != 0.0 || v > 100_000.0 {
        return Err(DslError::BadArchParam {
            message: format!("`{name}` must be a positive integer, got {v}"),
        });
    }
    Ok(v as usize)
}

fn activation_of(spec: &LayerSpec) -> Result<Activation, DslError> {
    let Some((name, params)) = &spec.activation else {
        return Ok(Activation::Linear);
    };
    match name.as_str() {
        "relu" => Ok(Activation::Relu),
        "tanh" => Ok(Activation::Tanh),
        "sigmoid" => Ok(Activation::Sigmoid),
        "linear" => Ok(Activation::Linear),
        "leaky_relu" => {
            let alpha = params
                .iter()
                .find(|(n, _)| n == "alpha")
                .map(|(_, v)| *v)
                .unwrap_or(0.01);
            if !(0.0..1.0).contains(&alpha) {
                return Err(DslError::BadArchParam {
                    message: format!("leaky_relu alpha must be in [0, 1), got {alpha}"),
                });
            }
            Ok(Activation::LeakyRelu {
                alpha: alpha as f32,
            })
        }
        other => Err(DslError::BadArchParam {
            message: format!("unknown activation `{other}`"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeds::PENSIEVE_ARCH_SOURCE;

    #[test]
    fn compiles_pensieve_original() {
        let cfg = compile_arch(PENSIEVE_ARCH_SOURCE).unwrap();
        assert_eq!(cfg, ArchConfig::pensieve_original());
    }

    #[test]
    fn compiles_rnn_variant() {
        let cfg = compile_arch(
            "network starlink_rnn { temporal rnn(units=64); scalar dense(units=128) -> relu; \
             hidden dense(units=128) -> relu; heads separate; }",
        )
        .unwrap();
        assert_eq!(cfg.temporal_branch, BranchKind::Rnn { units: 64 });
    }

    #[test]
    fn compiles_shared_heads_and_leaky_relu() {
        let cfg = compile_arch(
            "network g5 { temporal conv1d(filters=128, kernel=4) -> leaky_relu(alpha=0.05); \
             scalar dense(units=256) -> leaky_relu(alpha=0.05); \
             hidden dense(units=256) -> leaky_relu(alpha=0.05); heads shared; }",
        )
        .unwrap();
        assert_eq!(cfg.heads, HeadMode::Shared);
        assert_eq!(cfg.hidden_units, 256);
        assert!(matches!(
            cfg.temporal_activation,
            Activation::LeakyRelu { .. }
        ));
    }

    #[test]
    fn multiple_hidden_layers_count() {
        let cfg = compile_arch(
            "network deep { temporal conv1d(filters=32, kernel=4) -> relu; \
             scalar dense(units=32) -> relu; hidden dense(units=64) -> relu; \
             hidden dense(units=64) -> tanh; heads separate; }",
        )
        .unwrap();
        assert_eq!(cfg.hidden_layers, 2);
    }

    #[test]
    fn rejects_scalar_conv() {
        let e = compile_arch(
            "network bad { temporal conv1d(filters=32, kernel=4); \
             scalar conv1d(filters=8, kernel=2); hidden dense(units=32); heads separate; }",
        );
        assert!(matches!(e, Err(DslError::BadArchParam { .. })));
    }

    #[test]
    fn rejects_zero_filters() {
        let e = compile_arch(
            "network bad { temporal conv1d(filters=0, kernel=4); scalar dense(units=8); \
             hidden dense(units=8); heads separate; }",
        );
        assert!(matches!(e, Err(DslError::BadArchParam { .. })));
    }

    #[test]
    fn rejects_mismatched_hidden_widths() {
        let e = compile_arch(
            "network bad { temporal dense(units=8); scalar dense(units=8); \
             hidden dense(units=8); hidden dense(units=16); heads separate; }",
        );
        assert!(matches!(e, Err(DslError::BadArchParam { .. })));
    }

    #[test]
    fn rejects_unknown_activation() {
        let e = compile_arch(
            "network bad { temporal dense(units=8) -> swish; scalar dense(units=8); \
             hidden dense(units=8); heads separate; }",
        );
        assert!(matches!(e, Err(DslError::BadArchParam { .. })));
    }

    #[test]
    fn missing_params_are_compile_errors() {
        let e = compile_arch(
            "network bad { temporal conv1d(kernel=4); scalar dense(units=8); \
             hidden dense(units=8); heads separate; }",
        );
        assert!(matches!(e, Err(DslError::BadArchParam { .. })));
    }
}
