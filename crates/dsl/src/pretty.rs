//! Canonical pretty-printing of programs back to source text.
//!
//! Generated designs travel as source strings (they are "code blocks"); the
//! printer guarantees a parse → print → parse fixed point, which the
//! property tests in `tests/` exercise.

use crate::ast::{ArchProgram, Expr, InputType, LayerSpec, StateProgram};
use std::fmt::Write as _;

/// Renders a state program as canonical DSL source.
pub fn print_state(p: &StateProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "state {} {{", p.name);
    for i in &p.inputs {
        let ty = match i.ty {
            InputType::Scalar => "scalar".to_string(),
            InputType::Vec(n) => format!("vec[{n}]"),
        };
        let _ = writeln!(out, "  input {}: {};", i.name, ty);
    }
    for f in &p.features {
        let _ = writeln!(out, "  feature {} = {};", f.name, print_expr(&f.expr));
    }
    out.push_str("}\n");
    out
}

/// Renders an expression with minimal parentheses (children of lower
/// precedence get wrapped).
pub fn print_expr(e: &Expr) -> String {
    print_prec(e, 0)
}

fn precedence(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => match op {
            crate::ast::BinOp::Add | crate::ast::BinOp::Sub => 1,
            crate::ast::BinOp::Mul | crate::ast::BinOp::Div => 2,
        },
        Expr::Neg(_) => 3,
        _ => 4,
    }
}

fn print_prec(e: &Expr, parent: u8) -> String {
    let own = precedence(e);
    let body = match e {
        Expr::Number(n) => format_number(*n),
        Expr::Ident(s) => s.clone(),
        Expr::Neg(inner) => format!("-{}", print_prec(inner, own)),
        Expr::Binary { op, lhs, rhs } => format!(
            "{} {} {}",
            print_prec(lhs, own),
            op.symbol(),
            // Right operand of -, / needs parens at equal precedence.
            print_prec(rhs, own + 1)
        ),
        Expr::Call { name, args } => {
            let rendered: Vec<String> = args.iter().map(|a| print_prec(a, 0)).collect();
            format!("{name}({})", rendered.join(", "))
        }
    };
    if own < parent {
        format!("({body})")
    } else {
        body
    }
}

/// Formats a float so it re-lexes as a number (always keeps a decimal point
/// or exponent).
fn format_number(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{n:.1}")
    } else {
        format!("{n}")
    }
}

/// Renders an architecture program as canonical DSL source.
pub fn print_arch(p: &ArchProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "network {} {{", p.name);
    let _ = writeln!(out, "  temporal {};", print_layer(&p.temporal));
    let _ = writeln!(out, "  scalar {};", print_layer(&p.scalar));
    for h in &p.hidden {
        let _ = writeln!(out, "  hidden {};", print_layer(h));
    }
    let _ = writeln!(
        out,
        "  heads {};",
        if p.shared_heads { "shared" } else { "separate" }
    );
    out.push_str("}\n");
    out
}

fn print_layer(l: &LayerSpec) -> String {
    let params: Vec<String> = l
        .params
        .iter()
        .map(|(n, v)| format!("{n}={}", format_number(*v)))
        .collect();
    let mut s = format!("{}({})", l.layer, params.join(", "));
    if let Some((act, act_params)) = &l.activation {
        if act_params.is_empty() {
            let _ = write!(s, " -> {act}");
        } else {
            let ps: Vec<String> = act_params
                .iter()
                .map(|(n, v)| format!("{n}={}", format_number(*v)))
                .collect();
            let _ = write!(s, " -> {act}({})", ps.join(", "));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_arch, parse_state};
    use crate::seeds::{PENSIEVE_ARCH_SOURCE, PENSIEVE_STATE_SOURCE};

    #[test]
    fn state_round_trips() {
        let p = parse_state(PENSIEVE_STATE_SOURCE).unwrap();
        let printed = print_state(&p);
        let reparsed = parse_state(&printed).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn arch_round_trips() {
        let p = parse_arch(PENSIEVE_ARCH_SOURCE).unwrap();
        let printed = print_arch(&p);
        let reparsed = parse_arch(&printed).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn parenthesization_preserves_tree() {
        let src = "state s { input buffer_s: scalar; \
                   feature f = (buffer_s + 1.0) * 2.0 - 3.0 / (buffer_s - 0.5); }";
        let p = parse_state(src).unwrap();
        let reparsed = parse_state(&print_state(&p)).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn subtraction_chains_keep_associativity() {
        let src = "state s { feature f = 1.0 - 2.0 - 3.0; }";
        let p = parse_state(src).unwrap();
        let reparsed = parse_state(&print_state(&p)).unwrap();
        assert_eq!(p, reparsed, "printed: {}", print_state(&p));
    }

    #[test]
    fn numbers_relex_as_numbers() {
        let src = "state s { feature f = 2.0 * 3.0; }";
        let p = parse_state(src).unwrap();
        let printed = print_state(&p);
        assert!(printed.contains("2.0"), "{printed}");
    }
}
