//! Hand-written lexer for the design DSL.

use crate::error::DslError;
use crate::token::{Keyword, Token, TokenKind};

/// Tokenizes `source`, returning the token stream ending with `Eof`.
/// `#` starts a comment running to end of line.
pub fn lex(source: &str) -> Result<Vec<Token>, DslError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '{' => push(&mut tokens, TokenKind::LBrace, line, &mut i),
            '}' => push(&mut tokens, TokenKind::RBrace, line, &mut i),
            '(' => push(&mut tokens, TokenKind::LParen, line, &mut i),
            ')' => push(&mut tokens, TokenKind::RParen, line, &mut i),
            '[' => push(&mut tokens, TokenKind::LBracket, line, &mut i),
            ']' => push(&mut tokens, TokenKind::RBracket, line, &mut i),
            ';' => push(&mut tokens, TokenKind::Semi, line, &mut i),
            ':' => push(&mut tokens, TokenKind::Colon, line, &mut i),
            ',' => push(&mut tokens, TokenKind::Comma, line, &mut i),
            '=' => push(&mut tokens, TokenKind::Eq, line, &mut i),
            '+' => push(&mut tokens, TokenKind::Plus, line, &mut i),
            '*' => push(&mut tokens, TokenKind::Star, line, &mut i),
            '/' => push(&mut tokens, TokenKind::Slash, line, &mut i),
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '>' {
                    tokens.push(Token {
                        kind: TokenKind::Arrow,
                        line,
                    });
                    i += 2;
                } else {
                    push(&mut tokens, TokenKind::Minus, line, &mut i);
                }
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut seen_dot = false;
                let mut seen_exp = false;
                while i < bytes.len() {
                    let d = bytes[i];
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.' && !seen_dot && !seen_exp {
                        seen_dot = true;
                        i += 1;
                    } else if (d == 'e' || d == 'E') && !seen_exp && i > start {
                        seen_exp = true;
                        i += 1;
                        if i < bytes.len() && (bytes[i] == '+' || bytes[i] == '-') {
                            i += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                let value: f64 = text.parse().map_err(|_| DslError::Lex {
                    line,
                    message: format!("malformed number `{text}`"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let kind = match Keyword::from_ident(&text) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(text),
                };
                tokens.push(Token { kind, line });
            }
            other => {
                return Err(DslError::Lex {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

fn push(tokens: &mut Vec<Token>, kind: TokenKind, line: usize, i: &mut usize) {
    tokens.push(Token { kind, line });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_state_header() {
        let ks = kinds("state foo {");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::State),
                TokenKind::Ident("foo".into()),
                TokenKind::LBrace,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers_including_scientific() {
        let ks = kinds("1 2.5 1e6 3.2e-4");
        assert_eq!(
            ks[..4],
            [
                TokenKind::Number(1.0),
                TokenKind::Number(2.5),
                TokenKind::Number(1e6),
                TokenKind::Number(3.2e-4)
            ]
        );
    }

    #[test]
    fn arrow_vs_minus() {
        let ks = kinds("a -> b - c");
        assert!(ks.contains(&TokenKind::Arrow));
        assert!(ks.contains(&TokenKind::Minus));
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = lex("# header\nfeature x = 1.0;\n").unwrap();
        assert_eq!(toks[0].line, 2);
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(matches!(lex("feature x = $;"), Err(DslError::Lex { .. })));
    }

    #[test]
    fn rejects_malformed_number() {
        assert!(matches!(lex("x = 1e;"), Err(DslError::Lex { .. })));
    }
}
