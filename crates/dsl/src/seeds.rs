//! Seed programs: the original designs each workload starts from.
//!
//! These are the "existing algorithm implementation" NADA starts from
//! (paper §2.1). For ABR, the state program reproduces Pensieve's
//! normalization exactly: bitrates relative to the ladder maximum, buffer
//! and download times divided by 10, throughput in MB/s (Mbps / 8), chunk
//! sizes in MB, and remaining chunks as a fraction; the architecture
//! program is Figure 2's topology. For congestion control, the seed is a
//! window policy normalizing each transport signal by its realistic
//! maximum — the hand-tuned starting point the LLM redesigns, mirroring
//! arXiv:2508.16074.

use crate::arch::compile_arch;
use crate::interp::{compile_state, compile_state_with_schema, CompiledState};
use crate::schema::cc_schema;
use nada_nn::ArchConfig;

/// Pensieve's original state representation (paper Figure 2, left side).
pub const PENSIEVE_STATE_SOURCE: &str = "\
state pensieve_original {
  # Raw measurements offered by the environment.
  input throughput_mbps: vec[8];        # past chunk throughputs, Mbps
  input download_time_s: vec[8];        # past chunk download delays, seconds
  input next_chunk_sizes_bytes: vec[6]; # next chunk size per quality, bytes
  input buffer_s: scalar;               # playback buffer, seconds
  input chunks_remaining: scalar;       # chunks left in the video
  input total_chunks: scalar;           # total chunks in the video
  input last_bitrate_kbps: scalar;      # previously selected bitrate, kbps
  input max_bitrate_kbps: scalar;       # highest ladder bitrate, kbps

  # Pensieve's hand-designed normalization.
  feature last_quality = last_bitrate_kbps / max_bitrate_kbps;
  feature buffer = buffer_s / 10.0;
  feature throughput = throughput_mbps / 8.0;
  feature download_time = download_time_s / 10.0;
  feature next_sizes_mb = next_chunk_sizes_bytes / 1000000.0;
  feature remaining = chunks_remaining / total_chunks;
}
";

/// Pensieve's original actor-critic architecture (paper Figure 2).
pub const PENSIEVE_ARCH_SOURCE: &str = "\
network pensieve_original {
  temporal conv1d(filters=128, kernel=4) -> relu;
  scalar dense(units=128) -> relu;
  hidden dense(units=128) -> relu;
  heads separate;
}
";

/// Compiles the original state program.
///
/// # Panics
/// Panics if the bundled source is invalid — covered by tests, so this
/// cannot happen in a released build.
pub fn pensieve_state() -> CompiledState {
    compile_state(PENSIEVE_STATE_SOURCE).expect("bundled Pensieve state must compile")
}

/// Compiles the original architecture program.
///
/// # Panics
/// Panics if the bundled source is invalid (covered by tests).
pub fn pensieve_arch() -> ArchConfig {
    compile_arch(PENSIEVE_ARCH_SOURCE).expect("bundled Pensieve architecture must compile")
}

/// The congestion-control workload's seed state representation.
pub const CC_STATE_SOURCE: &str = "\
state cc_window_original {
  # Raw transport measurements offered by the environment.
  input throughput_history_mbps: vec[8]; # delivered throughput per interval, Mbps
  input rtt_history_ms: vec[8];          # smoothed RTT per interval, milliseconds
  input loss_history: vec[8];            # loss fraction per interval
  input cwnd_pkts: scalar;               # congestion window, packets
  input min_rtt_ms: scalar;              # episode-minimum RTT, milliseconds
  input ticks_remaining: scalar;         # intervals left in the episode
  input total_ticks: scalar;             # total intervals in the episode

  # Hand-designed normalization by each signal's realistic maximum.
  feature throughput = throughput_history_mbps / 150.0;
  feature rtt = rtt_history_ms / 1000.0;
  feature loss = loss_history;
  feature window = cwnd_pkts / 2000.0;
  feature min_rtt = min_rtt_ms / 200.0;
  feature remaining = ticks_remaining / total_ticks;
}
";

/// The congestion-control workload's seed actor-critic architecture (same
/// branch-merge topology as Pensieve's; the temporal branch reads the
/// transport histories).
pub const CC_ARCH_SOURCE: &str = "\
network cc_window_original {
  temporal conv1d(filters=128, kernel=4) -> relu;
  scalar dense(units=128) -> relu;
  hidden dense(units=128) -> relu;
  heads separate;
}
";

/// Compiles the CC seed state program against [`cc_schema`].
///
/// # Panics
/// Panics if the bundled source is invalid (covered by tests).
pub fn cc_state() -> CompiledState {
    compile_state_with_schema(CC_STATE_SOURCE, cc_schema()).expect("bundled CC state must compile")
}

/// Compiles the CC seed architecture program.
///
/// # Panics
/// Panics if the bundled source is invalid (covered by tests).
pub fn cc_arch() -> ArchConfig {
    compile_arch(CC_ARCH_SOURCE).expect("bundled CC architecture must compile")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::{normalization_check, FuzzConfig, NormCheckOutcome};
    use nada_nn::FeatureShape;

    #[test]
    fn pensieve_state_compiles_with_expected_shapes() {
        let s = pensieve_state();
        assert_eq!(s.name(), "pensieve_original");
        assert_eq!(
            s.feature_shapes(),
            vec![
                FeatureShape::Scalar,
                FeatureShape::Scalar,
                FeatureShape::Temporal(8),
                FeatureShape::Temporal(8),
                FeatureShape::Temporal(6),
                FeatureShape::Scalar,
            ]
        );
    }

    #[test]
    fn pensieve_state_is_well_normalized() {
        let s = pensieve_state();
        let outcome = normalization_check(&s, &FuzzConfig::default());
        assert_eq!(
            outcome,
            NormCheckOutcome::Pass,
            "the seed design must pass its own check"
        );
    }

    #[test]
    fn pensieve_arch_matches_figure_2() {
        assert_eq!(pensieve_arch(), ArchConfig::pensieve_original());
    }

    #[test]
    fn cc_state_compiles_with_expected_shapes() {
        let s = cc_state();
        assert_eq!(s.name(), "cc_window_original");
        assert_eq!(
            s.feature_shapes(),
            vec![
                FeatureShape::Temporal(8),
                FeatureShape::Temporal(8),
                FeatureShape::Temporal(8),
                FeatureShape::Scalar,
                FeatureShape::Scalar,
                FeatureShape::Scalar,
            ]
        );
    }

    #[test]
    fn cc_state_is_well_normalized() {
        let outcome = normalization_check(&cc_state(), &FuzzConfig::default());
        assert_eq!(
            outcome,
            NormCheckOutcome::Pass,
            "the CC seed must pass its own check"
        );
    }

    #[test]
    fn cc_arch_compiles() {
        let _ = cc_arch();
    }
}
