//! Static checking of state programs: names, shapes, literal arguments.

use crate::ast::{Expr, InputType, StateProgram};
use crate::error::DslError;
use crate::schema::InputSchema;
use crate::stdlib::{function_shape, literal_arg_indices};
use crate::value::{binary_shape, Shape};

/// A state program that passed all static checks.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedState {
    /// The validated program.
    pub program: StateProgram,
    /// Shape of each feature, in declaration order.
    pub shapes: Vec<Shape>,
    /// For each declared input, its index in the schema's binding order.
    pub input_bindings: Vec<usize>,
}

impl From<InputType> for Shape {
    fn from(t: InputType) -> Shape {
        match t {
            InputType::Scalar => Shape::Scalar,
            InputType::Vec(n) => Shape::Vector(n),
        }
    }
}

/// Statically checks `program` against `schema`.
pub fn check_state(program: StateProgram, schema: &InputSchema) -> Result<CheckedState, DslError> {
    if program.features.is_empty() {
        return Err(DslError::EmptyProgram);
    }

    // Inputs: unique, known, shape-consistent with the schema.
    let mut input_bindings = Vec::with_capacity(program.inputs.len());
    let mut env: Vec<(String, Shape)> = Vec::new();
    for decl in &program.inputs {
        if env.iter().any(|(n, _)| n == &decl.name) {
            return Err(DslError::Duplicate {
                name: decl.name.clone(),
            });
        }
        let (idx, spec) = schema
            .lookup(&decl.name)
            .ok_or_else(|| DslError::UnknownInput {
                name: decl.name.clone(),
            })?;
        if spec.ty != decl.ty {
            return Err(DslError::InputShapeMismatch {
                name: decl.name.clone(),
                declared: decl.ty.describe(),
                expected: spec.ty.describe(),
            });
        }
        input_bindings.push(idx);
        env.push((decl.name.clone(), decl.ty.into()));
    }

    // Features: unique, reference only earlier names, shape-check bodies.
    let mut shapes = Vec::with_capacity(program.features.len());
    for feat in &program.features {
        if env.iter().any(|(n, _)| n == &feat.name) {
            return Err(DslError::Duplicate {
                name: feat.name.clone(),
            });
        }
        let shape = expr_shape(&feat.expr, &env)?;
        shapes.push(shape);
        env.push((feat.name.clone(), shape));
    }

    Ok(CheckedState {
        program,
        shapes,
        input_bindings,
    })
}

/// Infers the shape of an expression under `env` (inputs + earlier features).
pub fn expr_shape(expr: &Expr, env: &[(String, Shape)]) -> Result<Shape, DslError> {
    match expr {
        Expr::Number(_) => Ok(Shape::Scalar),
        Expr::Ident(name) => env
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .ok_or_else(|| DslError::UnknownInput { name: name.clone() }),
        Expr::Neg(inner) => expr_shape(inner, env),
        Expr::Binary { op, lhs, rhs } => {
            let l = expr_shape(lhs, env)?;
            let r = expr_shape(rhs, env)?;
            binary_shape(*op, l, r)
        }
        Expr::Call { name, args } => {
            let mut shapes = Vec::with_capacity(args.len());
            for a in args {
                shapes.push(expr_shape(a, env)?);
            }
            let mut literals = vec![None; args.len()];
            for &i in literal_arg_indices(name) {
                if i < args.len() {
                    literals[i] = literal_value(&args[i]);
                    if literals[i].is_none() {
                        return Err(DslError::ExpectedLiteral {
                            name: name.clone(),
                            arg: i,
                        });
                    }
                }
            }
            function_shape(name, &shapes, &literals)
        }
    }
}

/// Extracts a compile-time numeric literal (`2.5` or `-2.5`).
pub fn literal_value(expr: &Expr) -> Option<f64> {
    match expr {
        Expr::Number(n) => Some(*n),
        Expr::Neg(inner) => literal_value(inner).map(|v| -v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_state;
    use crate::schema::abr_schema;

    fn check(src: &str) -> Result<CheckedState, DslError> {
        check_state(parse_state(src).unwrap(), &abr_schema())
    }

    #[test]
    fn accepts_well_formed_program() {
        let c = check(
            "state s { input throughput_mbps: vec[8]; input buffer_s: scalar; \
             feature t = throughput_mbps / 8.0; feature b = buffer_s / 10.0; }",
        )
        .unwrap();
        assert_eq!(c.shapes, vec![Shape::Vector(8), Shape::Scalar]);
        assert_eq!(c.input_bindings, vec![0, 4]);
    }

    #[test]
    fn rejects_unknown_input() {
        let e = check("state s { input wifi_rssi: scalar; feature f = wifi_rssi; }");
        assert!(matches!(e, Err(DslError::UnknownInput { .. })));
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let e = check("state s { input buffer_s: vec[8]; feature f = mean(buffer_s); }");
        assert!(matches!(e, Err(DslError::InputShapeMismatch { .. })));
    }

    #[test]
    fn rejects_undeclared_reference() {
        let e = check("state s { feature f = buffer_s; }");
        assert!(matches!(e, Err(DslError::UnknownInput { .. })));
    }

    #[test]
    fn rejects_duplicate_feature() {
        let e = check(
            "state s { input buffer_s: scalar; feature f = buffer_s; feature f = buffer_s; }",
        );
        assert!(matches!(e, Err(DslError::Duplicate { .. })));
    }

    #[test]
    fn rejects_empty_program() {
        let e = check("state s { input buffer_s: scalar; }");
        assert!(matches!(e, Err(DslError::EmptyProgram)));
    }

    #[test]
    fn features_can_reference_earlier_features() {
        let c = check(
            "state s { input throughput_mbps: vec[8]; \
             feature sm = ema(throughput_mbps, 0.5); feature tr = trend(sm); }",
        )
        .unwrap();
        assert_eq!(c.shapes[1], Shape::Scalar);
    }

    #[test]
    fn rejects_forward_reference() {
        let e = check("state s { input buffer_s: scalar; feature a = b; feature b = buffer_s; }");
        assert!(matches!(e, Err(DslError::UnknownInput { .. })));
    }

    #[test]
    fn rejects_vector_length_conflict() {
        let e = check(
            "state s { input throughput_mbps: vec[8]; input next_chunk_sizes_bytes: vec[6]; \
             feature f = throughput_mbps + next_chunk_sizes_bytes; }",
        );
        assert!(matches!(e, Err(DslError::ShapeMismatch { .. })));
    }

    #[test]
    fn rejects_non_literal_alpha() {
        let e = check(
            "state s { input throughput_mbps: vec[8]; input buffer_s: scalar; \
             feature f = ema(throughput_mbps, buffer_s); }",
        );
        assert!(matches!(e, Err(DslError::ExpectedLiteral { .. })));
    }

    #[test]
    fn negative_literals_are_literals() {
        let c = check("state s { input buffer_s: scalar; feature f = clip(buffer_s, -1.0, 1.0); }");
        assert!(c.is_ok());
    }
}
