//! DSL error taxonomy.
//!
//! Each variant corresponds to a failure mode of the paper's compilation
//! check: what an exception from `exec`-ing generated Python would surface.

use std::fmt;

/// Any error produced while lexing, parsing, checking, compiling or running
/// a design code block.
#[derive(Debug, Clone, PartialEq)]
pub enum DslError {
    /// Invalid character or malformed literal.
    Lex {
        /// 1-based source line.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// Token stream does not match the grammar.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A feature references an input the schema does not provide.
    UnknownInput {
        /// The undefined name.
        name: String,
    },
    /// A declared input does not match the schema's shape for that name.
    InputShapeMismatch {
        /// The input name.
        name: String,
        /// Shape declared in the program.
        declared: String,
        /// Shape required by the schema.
        expected: String,
    },
    /// Call to a function the stdlib does not define.
    UnknownFunction {
        /// The undefined function name.
        name: String,
    },
    /// Wrong number of arguments.
    Arity {
        /// Function name.
        name: String,
        /// Arguments expected.
        expected: usize,
        /// Arguments given.
        got: usize,
    },
    /// An operation was applied to incompatible shapes (e.g. adding vectors
    /// of different lengths).
    ShapeMismatch {
        /// Human-readable description of the conflict.
        message: String,
    },
    /// An argument that must be a numeric literal (e.g. EMA's alpha) wasn't.
    ExpectedLiteral {
        /// Function name.
        name: String,
        /// Index of the offending argument.
        arg: usize,
    },
    /// A literal argument is outside its legal range.
    BadLiteral {
        /// Function name.
        name: String,
        /// Explanation.
        message: String,
    },
    /// Duplicate input or feature name.
    Duplicate {
        /// The repeated name.
        name: String,
    },
    /// The program declares no features.
    EmptyProgram,
    /// A trial/real run produced a non-finite value.
    NonFinite {
        /// The feature whose evaluation misbehaved.
        feature: String,
    },
    /// The runtime was handed the wrong number or shapes of inputs.
    BadBinding {
        /// Explanation.
        message: String,
    },
    /// An architecture program is missing a required section.
    MissingSection {
        /// Section name (`temporal`, `scalar`, `hidden` or `heads`).
        section: &'static str,
    },
    /// An architecture parameter is invalid (e.g. `filters=0`).
    BadArchParam {
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::Lex { line, message } => write!(f, "lex error (line {line}): {message}"),
            DslError::Parse { line, message } => {
                write!(f, "parse error (line {line}): {message}")
            }
            DslError::UnknownInput { name } => write!(f, "unknown input `{name}`"),
            DslError::InputShapeMismatch {
                name,
                declared,
                expected,
            } => write!(
                f,
                "input `{name}` declared as {declared} but the environment provides {expected}"
            ),
            DslError::UnknownFunction { name } => write!(f, "unknown function `{name}`"),
            DslError::Arity {
                name,
                expected,
                got,
            } => {
                write!(f, "`{name}` expects {expected} argument(s), got {got}")
            }
            DslError::ShapeMismatch { message } => write!(f, "shape mismatch: {message}"),
            DslError::ExpectedLiteral { name, arg } => {
                write!(f, "`{name}` argument {arg} must be a numeric literal")
            }
            DslError::BadLiteral { name, message } => {
                write!(f, "bad literal argument to `{name}`: {message}")
            }
            DslError::Duplicate { name } => write!(f, "duplicate definition of `{name}`"),
            DslError::EmptyProgram => write!(f, "program defines no features"),
            DslError::NonFinite { feature } => {
                write!(f, "feature `{feature}` evaluated to a non-finite value")
            }
            DslError::BadBinding { message } => write!(f, "bad input binding: {message}"),
            DslError::MissingSection { section } => {
                write!(f, "architecture is missing its `{section}` section")
            }
            DslError::BadArchParam { message } => {
                write!(f, "bad architecture parameter: {message}")
            }
        }
    }
}

impl std::error::Error for DslError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DslError::Arity {
            name: "ema".into(),
            expected: 2,
            got: 1,
        };
        assert_eq!(e.to_string(), "`ema` expects 2 argument(s), got 1");
        let e = DslError::Parse {
            line: 3,
            message: "expected `;`".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
