//! Token definitions for the design DSL.

use std::fmt;

/// A lexical token with its source line (1-based) for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based line where the token starts.
    pub line: usize,
}

/// The lexical vocabulary of both program kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `state`, `network`, `input`, `feature`, … — see [`Keyword`].
    Keyword(Keyword),
    /// An identifier (input, feature, or function name).
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `->`
    Arrow,
    /// End of input sentinel.
    Eof,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    /// Starts a state program.
    State,
    /// Starts an architecture program.
    Network,
    /// Declares an input inside a state program.
    Input,
    /// Declares a feature inside a state program.
    Feature,
    /// Scalar input type.
    Scalar,
    /// Vector input type (`vec[N]`).
    Vec,
    /// Architecture: temporal branch section.
    Temporal,
    /// Architecture: hidden stack section.
    Hidden,
    /// Architecture: heads section.
    Heads,
    /// Architecture: separate actor/critic networks.
    Separate,
    /// Architecture: shared trunk.
    Shared,
}

impl Keyword {
    /// Resolves an identifier to a keyword, if reserved.
    ///
    /// `scalar` doubles as a type name and an architecture section header;
    /// the parser disambiguates by context.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        Some(match s {
            "state" => Keyword::State,
            "network" => Keyword::Network,
            "input" => Keyword::Input,
            "feature" => Keyword::Feature,
            "scalar" => Keyword::Scalar,
            "vec" => Keyword::Vec,
            "temporal" => Keyword::Temporal,
            "hidden" => Keyword::Hidden,
            "heads" => Keyword::Heads,
            "separate" => Keyword::Separate,
            "shared" => Keyword::Shared,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "keyword `{k:?}`"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Number(n) => write!(f, "number `{n}`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}
