//! Design DSL for the NADA reproduction: the "code block" medium.
//!
//! In the paper, LLMs emit Python functions — state representations and
//! TensorFlow network builders — which NADA `exec`s, fuzzes, and trains. A
//! Rust reproduction cannot execute arbitrary Python, so candidate designs
//! are expressed in a small, purpose-built DSL with the same two program
//! kinds and the same failure modes:
//!
//! * **state programs** (`state <name> { input …; feature …; }`) declare
//!   which raw ABR inputs they read and compute a list of features — each a
//!   scalar or a vector — via arithmetic and a feature-engineering standard
//!   library (EMA, variance, trend, Savitzky–Golay smoothing, linear-
//!   regression prediction, normalization helpers…). The interpreter
//!   ([`interp`]) turns an input binding into the feature matrix the policy
//!   network consumes.
//! * **architecture programs** (`network <name> { temporal …; scalar …;
//!   hidden …; heads …; }`) describe the branch-merge actor-critic topology
//!   and compile ([`arch`]) to an [`nada_nn::ArchConfig`].
//!
//! "Compilation check" = lex + parse + type/shape check + a trial run —
//! the same observable behaviour as `exec`-ing generated Python and catching
//! exceptions. The [`fuzz`] module generates realistic random ABR inputs for
//! the paper's normalization check (§2.2, threshold `T = 100`).
//!
//! ```
//! use nada_dsl::{compile_state, seeds};
//!
//! let program = compile_state(seeds::PENSIEVE_STATE_SOURCE).unwrap();
//! assert_eq!(program.feature_shapes().len(), 6);
//! ```

pub mod arch;
pub mod ast;
pub mod check;
pub mod error;
pub mod fuzz;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod schema;
pub mod seeds;
pub mod stdlib;
pub mod token;
pub mod value;

pub use arch::compile_arch;
pub use ast::{ArchProgram, Expr, FeatureDecl, InputDecl, InputType, StateProgram};
pub use check::CheckedState;
pub use error::DslError;
pub use fuzz::{normalization_check, random_state_source, FuzzConfig};
pub use interp::{compile_state, compile_state_with_schema, CompiledState, EvalScratch};
pub use schema::{abr_schema, cc_schema, InputSchema, InputSpec};
pub use value::{Value, VecPool};
