//! The feature-engineering standard library.
//!
//! These are the operations the paper reports LLMs reaching for when
//! improving Pensieve's state: exponential moving averages, variance,
//! linear-regression trend/prediction (the `statsmodel` example), the
//! Savitzky–Golay filter (the `scipy` example), buffer differences, and
//! normalization helpers (`clip`, `remap`, `zscore`).

use crate::error::DslError;
use crate::value::{Shape, Value, VecPool};

/// Indices of arguments that must be numeric literals (known at check time).
pub fn literal_arg_indices(name: &str) -> &'static [usize] {
    match name {
        "ema" | "tail" => &[1],
        "clip" | "remap" => &[1, 2],
        _ => &[],
    }
}

/// Arity of a stdlib function, or `None` if the function does not exist.
pub fn arity(name: &str) -> Option<usize> {
    Some(match name {
        "ema" | "tail" => 2,
        "clip" | "remap" => 3,
        "mean" | "variance" | "std" | "min" | "max" | "sum" | "last" | "first"
        | "harmonic_mean" | "trend" | "predict_next" | "diff" | "savgol" | "zscore" | "log1p"
        | "sqrt" | "abs" | "recip" => 1,
        _ => return None,
    })
}

/// Static shape rule. `literals[i]` carries the value of argument `i` when
/// the grammar requires it to be a literal.
pub fn function_shape(
    name: &str,
    args: &[Shape],
    literals: &[Option<f64>],
) -> Result<Shape, DslError> {
    let expected = arity(name).ok_or_else(|| DslError::UnknownFunction { name: name.into() })?;
    if args.len() != expected {
        return Err(DslError::Arity {
            name: name.into(),
            expected,
            got: args.len(),
        });
    }
    let vec_len = |s: Shape| match s {
        Shape::Vector(n) => Ok(n),
        Shape::Scalar => Err(DslError::ShapeMismatch {
            message: format!("`{name}` requires a vector argument"),
        }),
    };
    match name {
        "ema" => {
            let n = vec_len(args[0])?;
            let alpha = literals[1].ok_or(DslError::ExpectedLiteral {
                name: name.into(),
                arg: 1,
            })?;
            if !(0.0..=1.0).contains(&alpha) || alpha == 0.0 {
                return Err(DslError::BadLiteral {
                    name: name.into(),
                    message: format!("alpha must be in (0, 1], got {alpha}"),
                });
            }
            Ok(Shape::Vector(n))
        }
        "tail" => {
            let n = vec_len(args[0])?;
            let k = literals[1].ok_or(DslError::ExpectedLiteral {
                name: name.into(),
                arg: 1,
            })?;
            if k.fract() != 0.0 || k < 1.0 {
                return Err(DslError::BadLiteral {
                    name: name.into(),
                    message: format!("k must be a positive integer, got {k}"),
                });
            }
            let k = k as usize;
            if k > n {
                return Err(DslError::ShapeMismatch {
                    message: format!("tail({k}) of a vec[{n}]"),
                });
            }
            Ok(Shape::Vector(k))
        }
        "mean" | "variance" | "std" | "min" | "max" | "sum" | "last" | "first"
        | "harmonic_mean" | "trend" | "predict_next" => {
            vec_len(args[0])?;
            Ok(Shape::Scalar)
        }
        "diff" => {
            let n = vec_len(args[0])?;
            if n < 2 {
                return Err(DslError::ShapeMismatch {
                    message: "diff needs a vector of at least 2 elements".into(),
                });
            }
            Ok(Shape::Vector(n - 1))
        }
        "savgol" | "zscore" => Ok(Shape::Vector(vec_len(args[0])?)),
        "clip" | "remap" => {
            let lo = literals[1].ok_or(DslError::ExpectedLiteral {
                name: name.into(),
                arg: 1,
            })?;
            let hi = literals[2].ok_or(DslError::ExpectedLiteral {
                name: name.into(),
                arg: 2,
            })?;
            if lo >= hi {
                return Err(DslError::BadLiteral {
                    name: name.into(),
                    message: format!("bounds must satisfy lo < hi, got [{lo}, {hi}]"),
                });
            }
            Ok(args[0])
        }
        "log1p" | "sqrt" | "abs" | "recip" => Ok(args[0]),
        _ => Err(DslError::UnknownFunction { name: name.into() }),
    }
}

/// Runtime evaluation. Shapes are assumed already validated by
/// [`function_shape`]; violations found here indicate interpreter bugs and
/// surface as `ShapeMismatch` errors rather than panics.
pub fn function_eval(name: &str, args: &[Value]) -> Result<Value, DslError> {
    function_eval_in(name, args, &mut VecPool::default())
}

/// [`function_eval`] drawing result vectors from a [`VecPool`] — the
/// hot-path form. Identical arithmetic (bit-identical results); only the
/// provenance of output buffers differs.
pub fn function_eval_in(name: &str, args: &[Value], pool: &mut VecPool) -> Result<Value, DslError> {
    let vector = |i: usize| -> Result<&[f64], DslError> {
        match &args[i] {
            Value::Vector(v) => Ok(v),
            Value::Scalar(_) => Err(DslError::ShapeMismatch {
                message: format!("`{name}` expected a vector argument"),
            }),
        }
    };
    let scalar = |i: usize| args[i].expect_scalar();
    fn map(v: &Value, f: impl Fn(f64) -> f64, pool: &mut VecPool) -> Value {
        match v {
            Value::Scalar(x) => Value::Scalar(f(*x)),
            Value::Vector(xs) => {
                let mut out = pool.take();
                out.extend(xs.iter().map(|&x| f(x)));
                Value::Vector(out)
            }
        }
    }
    Ok(match name {
        "ema" => {
            let xs = vector(0)?;
            let alpha = scalar(1);
            let mut acc = xs.first().copied().unwrap_or(0.0);
            let mut out = pool.take();
            out.extend(xs.iter().map(|&x| {
                acc = alpha * x + (1.0 - alpha) * acc;
                acc
            }));
            Value::Vector(out)
        }
        "tail" => {
            let xs = vector(0)?;
            let k = scalar(1) as usize;
            let mut out = pool.take();
            out.extend_from_slice(&xs[xs.len() - k..]);
            Value::Vector(out)
        }
        "mean" => Value::Scalar(mean(vector(0)?)),
        "variance" => Value::Scalar(variance(vector(0)?)),
        "std" => Value::Scalar(variance(vector(0)?).sqrt()),
        "min" => Value::Scalar(vector(0)?.iter().copied().fold(f64::INFINITY, f64::min)),
        "max" => Value::Scalar(vector(0)?.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
        "sum" => Value::Scalar(vector(0)?.iter().sum()),
        "last" => Value::Scalar(*vector(0)?.last().expect("checked non-empty")),
        "first" => Value::Scalar(*vector(0)?.first().expect("checked non-empty")),
        "harmonic_mean" => {
            let xs = vector(0)?;
            let denom: f64 = xs.iter().map(|&x| 1.0 / x.max(1e-9)).sum();
            Value::Scalar(xs.len() as f64 / denom)
        }
        "trend" => Value::Scalar(ols(vector(0)?).0),
        "predict_next" => {
            let xs = vector(0)?;
            let (slope, intercept) = ols(xs);
            Value::Scalar(intercept + slope * xs.len() as f64)
        }
        "diff" => {
            let xs = vector(0)?;
            let mut out = pool.take();
            out.extend(xs.windows(2).map(|w| w[1] - w[0]));
            Value::Vector(out)
        }
        "savgol" => {
            let xs = vector(0)?;
            let mut out = pool.take();
            savgol5_into(xs, &mut out);
            Value::Vector(out)
        }
        "zscore" => {
            let xs = vector(0)?;
            let m = mean(xs);
            let s = variance(xs).sqrt().max(1e-9);
            let mut out = pool.take();
            out.extend(xs.iter().map(|&x| (x - m) / s));
            Value::Vector(out)
        }
        "clip" => {
            let (lo, hi) = (scalar(1), scalar(2));
            map(&args[0], |x| x.clamp(lo, hi), pool)
        }
        "remap" => {
            // Affine map of the nominal [0, 1] range onto [lo, hi]; the
            // paper's discovered FCC states use remap(x, -1, 1).
            let (lo, hi) = (scalar(1), scalar(2));
            map(&args[0], |x| lo + x * (hi - lo), pool)
        }
        "log1p" => map(&args[0], |x| (1.0 + x.max(0.0)).ln(), pool),
        "sqrt" => map(&args[0], |x| x.max(0.0).sqrt(), pool),
        "abs" => map(&args[0], f64::abs, pool),
        "recip" => map(&args[0], |x| 1.0 / (x + 1e-6), pool),
        _ => return Err(DslError::UnknownFunction { name: name.into() }),
    })
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Ordinary least squares of `xs` against indices `0..n`; returns
/// `(slope, intercept)`. A single point has slope 0.
fn ols(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return (0.0, xs.first().copied().unwrap_or(0.0));
    }
    let x_mean = (n - 1.0) / 2.0;
    let y_mean = mean(xs);
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in xs.iter().enumerate() {
        let dx = i as f64 - x_mean;
        num += dx * (y - y_mean);
        den += dx * dx;
    }
    let slope = num / den;
    (slope, y_mean - slope * x_mean)
}

/// Savitzky–Golay smoothing with a 5-point quadratic window
/// (coefficients [-3, 12, 17, 12, -3] / 35), written into `out`. Edge
/// points where the window does not fit are passed through unchanged;
/// vectors shorter than 5 are copied as-is.
fn savgol5_into(xs: &[f64], out: &mut Vec<f64>) {
    out.extend_from_slice(xs);
    if xs.len() < 5 {
        return;
    }
    const C: [f64; 5] = [-3.0, 12.0, 17.0, 12.0, -3.0];
    for i in 2..xs.len() - 2 {
        let mut acc = 0.0;
        for (k, c) in C.iter().enumerate() {
            acc += c * xs[i + k - 2];
        }
        out[i] = acc / 35.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(xs: &[f64]) -> Value {
        Value::Vector(xs.to_vec())
    }

    #[test]
    fn ema_smooths_toward_recent() {
        let y = function_eval("ema", &[v(&[0.0, 0.0, 10.0]), Value::Scalar(0.5)]).unwrap();
        let ys = y.expect_vector();
        assert!(ys[2] > ys[1], "ema should move toward the spike");
        assert!(ys[2] < 10.0, "ema should not overshoot");
    }

    #[test]
    fn trend_of_linear_ramp_is_slope() {
        let y = function_eval("trend", &[v(&[1.0, 3.0, 5.0, 7.0])]).unwrap();
        assert!((y.expect_scalar() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn predict_next_extrapolates_ramp() {
        let y = function_eval("predict_next", &[v(&[1.0, 2.0, 3.0, 4.0])]).unwrap();
        assert!((y.expect_scalar() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn diff_shortens_by_one() {
        let y = function_eval("diff", &[v(&[1.0, 4.0, 9.0])]).unwrap();
        assert_eq!(y.expect_vector(), &[3.0, 5.0]);
    }

    #[test]
    fn savgol_preserves_linear_signals() {
        let xs: Vec<f64> = (0..8).map(|i| 2.0 * i as f64).collect();
        let y = function_eval("savgol", &[v(&xs)]).unwrap();
        for (a, b) in y.expect_vector().iter().zip(&xs) {
            assert!(
                (a - b).abs() < 1e-9,
                "quadratic SG filter must keep linear data"
            );
        }
    }

    #[test]
    fn savgol_damps_noise() {
        let xs = [0.0, 10.0, 0.0, 10.0, 0.0, 10.0, 0.0, 10.0];
        let y = function_eval("savgol", &[v(&xs)]).unwrap();
        let ys = y.expect_vector();
        // interior points pulled toward the mean (5.0)
        assert!((ys[3] - 5.0).abs() < (xs[3] - 5.0).abs());
    }

    #[test]
    fn zscore_standardizes() {
        let y = function_eval("zscore", &[v(&[1.0, 2.0, 3.0])]).unwrap();
        let ys = y.expect_vector();
        assert!(ys[0] < 0.0 && ys[2] > 0.0);
        assert!((ys.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn remap_zero_one_to_sym_range() {
        let y = function_eval(
            "remap",
            &[Value::Scalar(0.5), Value::Scalar(-1.0), Value::Scalar(1.0)],
        )
        .unwrap();
        assert_eq!(y.expect_scalar(), 0.0);
    }

    #[test]
    fn clip_bounds() {
        let y = function_eval(
            "clip",
            &[v(&[-5.0, 0.5, 5.0]), Value::Scalar(0.0), Value::Scalar(1.0)],
        )
        .unwrap();
        assert_eq!(y.expect_vector(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn shape_rules_enforce_vectors() {
        assert!(function_shape("mean", &[Shape::Scalar], &[None]).is_err());
        assert_eq!(
            function_shape("diff", &[Shape::Vector(8)], &[None]).unwrap(),
            Shape::Vector(7)
        );
    }

    #[test]
    fn ema_rejects_bad_alpha() {
        let r = function_shape(
            "ema",
            &[Shape::Vector(8), Shape::Scalar],
            &[None, Some(1.5)],
        );
        assert!(matches!(r, Err(DslError::BadLiteral { .. })));
    }

    #[test]
    fn tail_rejects_oversize_k() {
        let r = function_shape(
            "tail",
            &[Shape::Vector(4), Shape::Scalar],
            &[None, Some(9.0)],
        );
        assert!(matches!(r, Err(DslError::ShapeMismatch { .. })));
    }

    #[test]
    fn unknown_function_is_reported() {
        assert!(matches!(
            function_shape("explode", &[], &[]),
            Err(DslError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn harmonic_mean_guards_zero() {
        let y = function_eval("harmonic_mean", &[v(&[0.0, 1.0])]).unwrap();
        assert!(y.expect_scalar().is_finite());
    }

    #[test]
    fn recip_guards_zero() {
        let y = function_eval("recip", &[Value::Scalar(0.0)]).unwrap();
        assert!(y.expect_scalar().is_finite());
    }
}
