//! Compilation and evaluation of state programs.
//!
//! [`compile_state`] is this reproduction's "compilation check" (§2.2): it
//! lexes, parses, statically checks and *trial-runs* a code block, rejecting
//! anything that would throw when `exec`'d. The resulting [`CompiledState`]
//! is the hot-path object: the training loop calls [`CompiledState::eval_f32`]
//! once per chunk decision.

use crate::ast::Expr;
use crate::check::{check_state, CheckedState};
use crate::error::DslError;
use crate::parser::parse_state;
use crate::schema::{abr_schema, InputSchema};
use crate::stdlib::function_eval_in;
use crate::value::{binary_eval_in, Value, VecPool};
use nada_nn::FeatureShape;
use std::borrow::Cow;

/// A state program ready for evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledState {
    checked: CheckedState,
    schema: InputSchema,
}

/// Compiles a state code block against the standard ABR schema, including
/// the trial run with mid-range inputs.
pub fn compile_state(source: &str) -> Result<CompiledState, DslError> {
    compile_state_with_schema(source, abr_schema())
}

/// Compiles against a custom schema (for non-ABR tasks or tests).
pub fn compile_state_with_schema(
    source: &str,
    schema: InputSchema,
) -> Result<CompiledState, DslError> {
    let program = parse_state(source)?;
    let checked = check_state(program, &schema)?;
    let compiled = CompiledState { checked, schema };
    // Trial run: mid-range inputs must evaluate without runtime errors.
    let trial = compiled.schema_midpoint_inputs();
    compiled.eval(&trial)?;
    Ok(compiled)
}

impl CompiledState {
    /// The program's declared name.
    pub fn name(&self) -> &str {
        &self.checked.program.name
    }

    /// The validated AST.
    pub fn program(&self) -> &crate::ast::StateProgram {
        &self.checked.program
    }

    /// Names of the produced features, in order.
    pub fn feature_names(&self) -> Vec<&str> {
        self.checked
            .program
            .features
            .iter()
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Feature shapes in the form the network builder consumes.
    pub fn feature_shapes(&self) -> Vec<FeatureShape> {
        self.checked
            .shapes
            .iter()
            .map(|s| match s {
                crate::value::Shape::Scalar => FeatureShape::Scalar,
                crate::value::Shape::Vector(n) => FeatureShape::Temporal(*n),
            })
            .collect()
    }

    /// The schema this program was compiled against.
    pub fn schema(&self) -> &InputSchema {
        &self.schema
    }

    /// Mid-range inputs used by the compile-time trial run.
    pub fn schema_midpoint_inputs(&self) -> Vec<Value> {
        self.schema
            .specs()
            .iter()
            .map(|spec| {
                let mid = (spec.fuzz_lo + spec.fuzz_hi) / 2.0;
                match spec.ty {
                    crate::ast::InputType::Scalar => Value::Scalar(mid),
                    crate::ast::InputType::Vec(n) => Value::Vector(vec![mid; n]),
                }
            })
            .collect()
    }

    /// Evaluates the program. `inputs` must be ordered and shaped per the
    /// schema (one [`Value`] per schema entry).
    ///
    /// Allocates a fresh feature vector; hot loops (one call per training
    /// step) should use [`CompiledState::eval_with`] /
    /// [`CompiledState::eval_f32_with`] with a reused [`EvalScratch`].
    pub fn eval(&self, inputs: &[Value]) -> Result<Vec<Value>, DslError> {
        let mut scratch = EvalScratch::default();
        self.eval_with(inputs, &mut scratch)?;
        Ok(std::mem::take(&mut scratch.features))
    }

    /// Evaluates into a reusable scratch buffer, returning the computed
    /// features as a slice. Inputs are read by reference — no vector is
    /// cloned into an environment — and the only steady-state allocations
    /// are the feature values themselves.
    pub fn eval_with<'s>(
        &self,
        inputs: &[Value],
        scratch: &'s mut EvalScratch,
    ) -> Result<&'s [Value], DslError> {
        if inputs.len() != self.schema.len() {
            return Err(DslError::BadBinding {
                message: format!(
                    "expected {} inputs, got {}",
                    self.schema.len(),
                    inputs.len()
                ),
            });
        }
        for (decl, &idx) in self
            .checked
            .program
            .inputs
            .iter()
            .zip(&self.checked.input_bindings)
        {
            let value = &inputs[idx];
            let expected: crate::value::Shape = decl.ty.into();
            if value.shape() != expected {
                return Err(DslError::BadBinding {
                    message: format!(
                        "input `{}` bound to {} but declared {}",
                        decl.name,
                        value.shape().describe(),
                        expected.describe()
                    ),
                });
            }
        }
        let EvalScratch {
            features,
            pool,
            call_args,
        } = scratch;
        for v in features.drain(..) {
            pool.recycle(v);
        }
        features.reserve(self.checked.program.features.len());
        for (n_computed, feat) in self.checked.program.features.iter().enumerate() {
            let v = {
                let env = Env {
                    checked: &self.checked,
                    inputs,
                    features: &features[..n_computed],
                };
                let cow = eval_expr(&feat.expr, &env, pool, call_args)?;
                own_value(cow, pool)
            };
            if !v.is_finite() {
                return Err(DslError::NonFinite {
                    feature: feat.name.clone(),
                });
            }
            features.push(v);
        }
        Ok(&scratch.features)
    }

    /// Evaluates and converts to the `f32` per-feature vectors the policy
    /// network consumes.
    pub fn eval_f32(&self, inputs: &[Value]) -> Result<Vec<Vec<f32>>, DslError> {
        let mut scratch = EvalScratch::default();
        self.eval_f32_with(inputs, &mut scratch)
    }

    /// [`CompiledState::eval_f32`] through a reused [`EvalScratch`] — the
    /// training-loop form. The returned per-feature vectors are owned (the
    /// episode buffer consumes them), but the evaluation environment is
    /// reused across calls.
    pub fn eval_f32_with(
        &self,
        inputs: &[Value],
        scratch: &mut EvalScratch,
    ) -> Result<Vec<Vec<f32>>, DslError> {
        Ok(self
            .eval_with(inputs, scratch)?
            .iter()
            .map(|v| v.as_slice().iter().map(|&x| x as f32).collect())
            .collect())
    }

    /// Evaluates the program over a batch of bindings, appending each row's
    /// features to `out` as one flat `f32` row (features concatenated in
    /// program order, vectors flattened — the layout
    /// `nada_nn::FeatureLayout` describes). Returns the number of rows
    /// written.
    ///
    /// This is the batched engine's form: one [`EvalScratch`] arena is
    /// reused across every row of every call, so after warm-up the whole
    /// evaluation performs no heap allocation (`out` included, once its
    /// capacity has grown to the batch size). Row values are bit-identical
    /// to per-binding [`CompiledState::eval_f32_with`].
    pub fn eval_batch_with<'b, I>(
        &self,
        bindings: I,
        scratch: &mut EvalScratch,
        out: &mut Vec<f32>,
    ) -> Result<usize, DslError>
    where
        I: IntoIterator<Item = &'b [Value]>,
    {
        out.clear();
        let mut rows = 0;
        for binding in bindings {
            let features = self.eval_with(binding, scratch)?;
            for v in features {
                out.extend(v.as_slice().iter().map(|&x| x as f32));
            }
            rows += 1;
        }
        Ok(rows)
    }
}

/// Reusable evaluation state: the computed-feature buffer, a recycling
/// arena for every vector the evaluator produces (features, intermediate
/// binary/stdlib results), and a stack of call-argument buffers. A training
/// loop evaluating once per step through one scratch performs no heap
/// allocation after the first evaluation warms the arena. Create once
/// (cheap, empty) and pass to [`CompiledState::eval_with`] /
/// [`CompiledState::eval_f32_with`] / [`CompiledState::eval_batch_with`].
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    features: Vec<Value>,
    pool: VecPool,
    call_args: Vec<Vec<Value>>,
}

/// Name-resolution environment: declared inputs are *borrowed* from the
/// caller's binding (no per-step clone) and features already computed this
/// call are borrowed from the scratch buffer.
struct Env<'a> {
    checked: &'a CheckedState,
    inputs: &'a [Value],
    features: &'a [Value],
}

impl<'a> Env<'a> {
    /// Resolves a name, later definitions first (features shadow inputs,
    /// matching the old push-order environment).
    fn lookup(&self, name: &str) -> Option<&'a Value> {
        let program = &self.checked.program;
        if let Some(i) = (0..self.features.len())
            .rev()
            .find(|&i| program.features[i].name == name)
        {
            return Some(&self.features[i]);
        }
        program
            .inputs
            .iter()
            .zip(&self.checked.input_bindings)
            .rev()
            .find(|(decl, _)| decl.name == name)
            .map(|(_, &idx)| &self.inputs[idx])
    }
}

/// Turns a `Cow` evaluation result into an owned value, cloning borrowed
/// vectors through the pool instead of a fresh allocation.
fn own_value(cow: Cow<'_, Value>, pool: &mut VecPool) -> Value {
    match cow {
        Cow::Owned(v) => v,
        Cow::Borrowed(Value::Scalar(x)) => Value::Scalar(*x),
        Cow::Borrowed(Value::Vector(xs)) => {
            let mut out = pool.take();
            out.extend_from_slice(xs);
            Value::Vector(out)
        }
    }
}

/// Recycles an evaluation result's payload if the result was a temporary.
fn recycle_cow(cow: Cow<'_, Value>, pool: &mut VecPool) {
    if let Cow::Owned(v) = cow {
        pool.recycle(v);
    }
}

fn eval_expr<'e>(
    expr: &'e Expr,
    env: &Env<'e>,
    pool: &mut VecPool,
    call_args: &mut Vec<Vec<Value>>,
) -> Result<Cow<'e, Value>, DslError> {
    match expr {
        Expr::Number(n) => Ok(Cow::Owned(Value::Scalar(*n))),
        Expr::Ident(name) => env
            .lookup(name)
            .map(Cow::Borrowed)
            .ok_or_else(|| DslError::UnknownInput { name: name.clone() }),
        Expr::Neg(inner) => {
            let v = eval_expr(inner, env, pool, call_args)?;
            Ok(Cow::Owned(match v {
                Cow::Owned(Value::Scalar(x)) => Value::Scalar(-x),
                Cow::Owned(Value::Vector(mut xs)) => {
                    // Negate in place: the operand is already owned.
                    for x in &mut xs {
                        *x = -*x;
                    }
                    Value::Vector(xs)
                }
                Cow::Borrowed(Value::Scalar(x)) => Value::Scalar(-x),
                Cow::Borrowed(Value::Vector(xs)) => {
                    let mut out = pool.take();
                    out.extend(xs.iter().map(|x| -x));
                    Value::Vector(out)
                }
            }))
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_expr(lhs, env, pool, call_args)?;
            let r = eval_expr(rhs, env, pool, call_args)?;
            let result = binary_eval_in(*op, &l, &r, pool).map(Cow::Owned);
            recycle_cow(l, pool);
            recycle_cow(r, pool);
            result
        }
        Expr::Call { name, args } => {
            let mut vals = call_args.pop().unwrap_or_default();
            debug_assert!(vals.is_empty());
            for a in args {
                let cow = eval_expr(a, env, pool, call_args)?;
                vals.push(own_value(cow, pool));
            }
            let result = function_eval_in(name, &vals, pool).map(Cow::Owned);
            for v in vals.drain(..) {
                pool.recycle(v);
            }
            call_args.push(vals);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_and_evaluates_simple_program() {
        let c = compile_state(
            "state s { input throughput_mbps: vec[8]; input buffer_s: scalar; \
             feature thr = throughput_mbps / 8.0; feature buf = buffer_s / 10.0; }",
        )
        .unwrap();
        let mut inputs = c.schema_midpoint_inputs();
        inputs[0] = Value::Vector(vec![8.0; 8]);
        inputs[4] = Value::Scalar(25.0);
        let out = c.eval(&inputs).unwrap();
        assert_eq!(out[0], Value::Vector(vec![1.0; 8]));
        assert_eq!(out[1], Value::Scalar(2.5));
    }

    #[test]
    fn eval_f32_matches_shapes() {
        let c = compile_state(
            "state s { input throughput_mbps: vec[8]; feature t = trend(throughput_mbps); \
             feature h = throughput_mbps / 8.0; }",
        )
        .unwrap();
        let out = c.eval_f32(&c.schema_midpoint_inputs()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 1);
        assert_eq!(out[1].len(), 8);
        assert_eq!(
            c.feature_shapes(),
            vec![FeatureShape::Scalar, FeatureShape::Temporal(8)]
        );
    }

    #[test]
    fn division_by_zero_fails_trial_run() {
        // chunks_remaining midpoint is 24, but 1/(x - 24) at the midpoint
        // divides by zero: the trial run must reject this program.
        let e = compile_state(
            "state s { input chunks_remaining: scalar; \
             feature f = 1.0 / (chunks_remaining - 24.0); }",
        );
        assert!(matches!(e, Err(DslError::NonFinite { .. })));
    }

    #[test]
    fn parse_errors_surface_as_compile_failures() {
        assert!(compile_state("state s { feature = ; }").is_err());
        assert!(compile_state("this is not a program").is_err());
    }

    #[test]
    fn eval_rejects_wrong_binding_count() {
        let c = compile_state("state s { input buffer_s: scalar; feature f = buffer_s; }").unwrap();
        let e = c.eval(&[Value::Scalar(1.0)]);
        assert!(matches!(e, Err(DslError::BadBinding { .. })));
    }

    #[test]
    fn eval_rejects_misshapen_binding() {
        let c = compile_state(
            "state s { input throughput_mbps: vec[8]; feature f = mean(throughput_mbps); }",
        )
        .unwrap();
        let mut inputs = c.schema_midpoint_inputs();
        inputs[0] = Value::Vector(vec![1.0; 3]); // wrong length
        assert!(matches!(c.eval(&inputs), Err(DslError::BadBinding { .. })));
    }

    #[test]
    fn feature_chaining_evaluates_in_order() {
        let c = compile_state(
            "state s { input throughput_mbps: vec[8]; \
             feature sm = ema(throughput_mbps, 0.5); feature last_sm = last(sm); }",
        )
        .unwrap();
        let out = c.eval(&c.schema_midpoint_inputs()).unwrap();
        assert!(matches!(out[1], Value::Scalar(_)));
    }
}
