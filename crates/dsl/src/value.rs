//! Runtime values and shape algebra.

use crate::ast::BinOp;
use crate::error::DslError;

/// A runtime value: scalar or vector of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A single number.
    Scalar(f64),
    /// A vector of numbers.
    Vector(Vec<f64>),
}

/// A static shape, mirrored by [`Value`] at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Single number.
    Scalar,
    /// Vector with the given length.
    Vector(usize),
}

impl Shape {
    /// Human-readable name for error messages.
    pub fn describe(&self) -> String {
        match self {
            Shape::Scalar => "scalar".into(),
            Shape::Vector(n) => format!("vec[{n}]"),
        }
    }
}

impl Value {
    /// The value's shape.
    pub fn shape(&self) -> Shape {
        match self {
            Value::Scalar(_) => Shape::Scalar,
            Value::Vector(v) => Shape::Vector(v.len()),
        }
    }

    /// View as a flat slice of numbers (scalar = slice of one).
    pub fn as_slice(&self) -> &[f64] {
        match self {
            Value::Scalar(_) => std::slice::from_ref(match self {
                Value::Scalar(x) => x,
                Value::Vector(_) => unreachable!(),
            }),
            Value::Vector(v) => v,
        }
    }

    /// Extracts the scalar payload.
    ///
    /// # Panics
    /// Panics when called on a vector (shape checking prevents this in
    /// checked programs).
    pub fn expect_scalar(&self) -> f64 {
        match self {
            Value::Scalar(x) => *x,
            Value::Vector(_) => panic!("expected scalar, found vector"),
        }
    }

    /// Extracts the vector payload.
    ///
    /// # Panics
    /// Panics when called on a scalar.
    pub fn expect_vector(&self) -> &[f64] {
        match self {
            Value::Vector(v) => v,
            Value::Scalar(_) => panic!("expected vector, found scalar"),
        }
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.as_slice().iter().all(|x| x.is_finite())
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f64 {
        self.as_slice().iter().fold(0.0, |a, &x| a.max(x.abs()))
    }
}

/// A recycling pool of `Vec<f64>` payloads.
///
/// The interpreter's steady state evaluates the same program over and over
/// (once per training step); every vector it produces has the same length
/// each time. Routing intermediate and output vectors through a pool turns
/// the per-step allocation count into a one-time warm-up cost: after the
/// first evaluation the pool hands back the previous step's buffers and no
/// further heap allocation occurs.
#[derive(Debug, Clone, Default)]
pub struct VecPool {
    free: Vec<Vec<f64>>,
}

impl VecPool {
    /// Pops a cleared buffer from the pool (or a fresh empty one).
    pub fn take(&mut self) -> Vec<f64> {
        match self.free.pop() {
            Some(mut v) => {
                v.clear();
                v
            }
            None => Vec::new(),
        }
    }

    /// Returns a buffer to the pool (zero-capacity buffers are dropped).
    pub fn give(&mut self, v: Vec<f64>) {
        if v.capacity() > 0 {
            self.free.push(v);
        }
    }

    /// Recycles a value's payload, if it has one.
    pub fn recycle(&mut self, v: Value) {
        if let Value::Vector(xs) = v {
            self.give(xs);
        }
    }

    /// Buffers currently pooled (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// True when no buffers are pooled.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }
}

/// Static shape rule for binary arithmetic: scalars broadcast over vectors;
/// vector-vector requires equal lengths.
pub fn binary_shape(op: BinOp, lhs: Shape, rhs: Shape) -> Result<Shape, DslError> {
    match (lhs, rhs) {
        (Shape::Scalar, Shape::Scalar) => Ok(Shape::Scalar),
        (Shape::Vector(n), Shape::Scalar) | (Shape::Scalar, Shape::Vector(n)) => {
            Ok(Shape::Vector(n))
        }
        (Shape::Vector(a), Shape::Vector(b)) if a == b => Ok(Shape::Vector(a)),
        (a, b) => Err(DslError::ShapeMismatch {
            message: format!(
                "cannot apply `{}` to {} and {}",
                op.symbol(),
                a.describe(),
                b.describe()
            ),
        }),
    }
}

/// Runtime counterpart of [`binary_shape`].
pub fn binary_eval(op: BinOp, lhs: &Value, rhs: &Value) -> Result<Value, DslError> {
    binary_eval_in(op, lhs, rhs, &mut VecPool::default())
}

/// [`binary_eval`] drawing result vectors from a [`VecPool`] — the hot-path
/// form. Identical arithmetic (and therefore bit-identical results); only
/// the provenance of the output buffer differs.
pub fn binary_eval_in(
    op: BinOp,
    lhs: &Value,
    rhs: &Value,
    pool: &mut VecPool,
) -> Result<Value, DslError> {
    let f = |a: f64, b: f64| match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
    };
    match (lhs, rhs) {
        (Value::Scalar(a), Value::Scalar(b)) => Ok(Value::Scalar(f(*a, *b))),
        (Value::Vector(v), Value::Scalar(b)) => {
            let mut out = pool.take();
            out.extend(v.iter().map(|&a| f(a, *b)));
            Ok(Value::Vector(out))
        }
        (Value::Scalar(a), Value::Vector(v)) => {
            let mut out = pool.take();
            out.extend(v.iter().map(|&b| f(*a, b)));
            Ok(Value::Vector(out))
        }
        (Value::Vector(a), Value::Vector(b)) => {
            if a.len() != b.len() {
                return Err(DslError::ShapeMismatch {
                    message: format!("vector lengths differ: {} vs {}", a.len(), b.len()),
                });
            }
            let mut out = pool.take();
            out.extend(a.iter().zip(b).map(|(&x, &y)| f(x, y)));
            Ok(Value::Vector(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcasting_rules() {
        assert_eq!(
            binary_shape(BinOp::Add, Shape::Scalar, Shape::Scalar),
            Ok(Shape::Scalar)
        );
        assert_eq!(
            binary_shape(BinOp::Mul, Shape::Vector(8), Shape::Scalar),
            Ok(Shape::Vector(8))
        );
        assert!(binary_shape(BinOp::Add, Shape::Vector(8), Shape::Vector(6)).is_err());
    }

    #[test]
    fn elementwise_eval() {
        let v = Value::Vector(vec![2.0, 4.0]);
        let s = Value::Scalar(2.0);
        assert_eq!(
            binary_eval(BinOp::Div, &v, &s).unwrap(),
            Value::Vector(vec![1.0, 2.0])
        );
        assert_eq!(
            binary_eval(BinOp::Sub, &s, &v).unwrap(),
            Value::Vector(vec![0.0, -2.0])
        );
    }

    #[test]
    fn vector_vector_requires_equal_len() {
        let a = Value::Vector(vec![1.0, 2.0]);
        let b = Value::Vector(vec![1.0, 2.0, 3.0]);
        assert!(binary_eval(BinOp::Add, &a, &b).is_err());
    }

    #[test]
    fn finiteness_and_max_abs() {
        assert!(Value::Scalar(1.0).is_finite());
        assert!(!Value::Vector(vec![1.0, f64::NAN]).is_finite());
        assert_eq!(Value::Vector(vec![-5.0, 3.0]).max_abs(), 5.0);
    }

    #[test]
    fn as_slice_covers_both_variants() {
        assert_eq!(Value::Scalar(7.0).as_slice(), &[7.0]);
        assert_eq!(Value::Vector(vec![1.0, 2.0]).as_slice(), &[1.0, 2.0]);
    }
}
