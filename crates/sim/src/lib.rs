//! Network environments for the NADA reproduction, behind the
//! workload-generic [`netenv::NetEnv`] trait.
//!
//! NADA's case study is Pensieve-style ABR video streaming; this crate
//! provides everything the paper's evaluation environment needs, plus a
//! second workload — chunkless congestion control ([`cc`]) — proving the
//! pipeline generalizes:
//!
//! * [`video`] — video manifests and the paper's two bitrate ladders
//!   ({300…4300} kbps for FCC/Starlink, {1850…53000} kbps for 4G/5G,
//!   following YouTube's recommended encoding settings);
//! * [`qoe`] — the `QoE_lin` reward from Pensieve, plus log/HD variants;
//! * [`transport`] — how chunk bytes traverse the network:
//!   [`transport::SimTransport`] is a faithful port of Pensieve's
//!   `fixed_env.py` chunk-level simulator, and [`emulator::EmuTransport`] is
//!   an HTTP/TCP-flavoured emulator standing in for dash.js-over-Mahimahi
//!   (per-chunk slow-start ramp, RTT jitter, request overhead);
//! * [`crate::env`] — the RL episode interface ([`env::AbrEnv`]) producing raw
//!   [`obs::Observation`]s that state programs (see `nada-dsl`) turn into
//!   feature matrices;
//! * [`baselines`] — classic hand-designed ABR policies (buffer-based,
//!   rate-based, BOLA, robust MPC) used as sanity baselines and in examples;
//! * [`session`] — episode drivers and summaries;
//! * [`netenv`] — the declared-field environment interface every workload
//!   implements ([`env::AbrEnv`] and [`cc::CcEnv`]);
//! * [`cc`] — congestion control: CWND actions over a fluid bottleneck
//!   model on the same traces, with a Cubic-like baseline;
//! * [`emu_cc`] — the packet-level CC emulation twin ([`emu_cc::EmuCcEnv`]):
//!   ACK-clocked whole-packet rounds with RTT jitter, the Table 4
//!   counterpart of [`emulator::EmuTransport`] for the CC workload.
//!
//! ```
//! use nada_sim::prelude::*;
//! use nada_traces::Trace;
//!
//! let trace = Trace::from_uniform("flat", 1.0, &[3.0; 400]).unwrap();
//! let manifest = VideoManifest::pensieve_like(Ladder::broadband(), 48, 7);
//! let mut env = AbrEnv::new_sim(&manifest, &trace, QoeLin::default(), 42);
//! let policy = BufferBased::default();
//! let summary = run_episode(&mut env, policy);
//! assert!(summary.chunks == 48);
//! ```

pub mod baselines;
pub mod cc;
pub mod emu_cc;
pub mod emulator;
pub mod env;
pub mod netenv;
pub mod obs;
pub mod qoe;
pub mod session;
pub mod transport;
pub mod video;

/// Convenient single-import surface for examples and tests.
pub mod prelude {
    pub use crate::baselines::{AbrPolicy, Bola, BufferBased, RateBased, RobustMpc};
    pub use crate::cc::{run_cc_episode, CcEnv, CcPolicy, CcReward, CubicLike, CC_FIELDS};
    pub use crate::emu_cc::{run_emu_cc_episode, EmuCcEnv};
    pub use crate::emulator::EmuTransport;
    pub use crate::env::{AbrEnv, StepResult};
    pub use crate::netenv::{EnvStep, FieldSpec, NetEnv, ObsValue};
    pub use crate::obs::{Observation, ABR_FIELDS, HISTORY_LEN};
    pub use crate::qoe::{QoeLin, QoeMetric};
    pub use crate::session::{run_episode, EpisodeSummary};
    pub use crate::transport::{ChunkTransport, SimTransport};
    pub use crate::video::{Ladder, VideoManifest};
}
