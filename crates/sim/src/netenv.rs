//! The workload-generic environment interface.
//!
//! NADA's thesis is that the generate→filter→train→rank loop applies to
//! *any* network algorithm, not just ABR. [`NetEnv`] is the seam that makes
//! that true in this reproduction: an episodic RL environment with a
//! discrete action space whose observations are **declared** as an ordered
//! list of named fields ([`FieldSpec`]) instead of a hard-coded struct.
//!
//! The pipeline never mentions workload field names: it binds a
//! [`NetEnv::reset`]/[`NetEnv::step`] observation (a `Vec<ObsValue>` in
//! spec order) positionally to a DSL input schema derived from the same
//! spec. Adding a workload means implementing this trait and declaring its
//! fields — no pipeline surgery.
//!
//! Implementations: [`crate::env::AbrEnv`] (Pensieve ABR) and
//! [`crate::cc::CcEnv`] (chunkless congestion control).

/// One observation field's value: a scalar or a fixed-length vector.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsValue {
    /// A single number.
    Scalar(f64),
    /// A fixed-length series (history window, per-action vector, ...).
    Vector(Vec<f64>),
}

impl ObsValue {
    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        match self {
            ObsValue::Scalar(x) => x.is_finite(),
            ObsValue::Vector(xs) => xs.iter().all(|x| x.is_finite()),
        }
    }

    /// The scalar value; panics on vectors (use only on fields whose spec
    /// declares `dim: None`).
    pub fn as_scalar(&self) -> f64 {
        match self {
            ObsValue::Scalar(x) => *x,
            ObsValue::Vector(_) => panic!("expected scalar observation field"),
        }
    }

    /// The vector elements; panics on scalars.
    pub fn as_vector(&self) -> &[f64] {
        match self {
            ObsValue::Scalar(_) => panic!("expected vector observation field"),
            ObsValue::Vector(xs) => xs,
        }
    }
}

/// Declaration of one observation field an environment offers.
///
/// The `lo`/`hi` range describes realistic raw magnitudes and doubles as
/// the fuzzing range for the paper's §2.2 normalization check — so declare
/// *raw* units (bytes, kbps, ms) and let generated designs prove they
/// normalize.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldSpec {
    /// Field name, as referenced by DSL state programs.
    pub name: &'static str,
    /// `None` for a scalar, `Some(n)` for a length-`n` vector.
    pub dim: Option<usize>,
    /// Lower bound of realistic per-element values.
    pub lo: f64,
    /// Upper bound of realistic per-element values.
    pub hi: f64,
    /// What the field means (surfaced in generated prompts).
    pub doc: &'static str,
}

impl FieldSpec {
    /// Does `value` have the declared shape?
    pub fn matches(&self, value: &ObsValue) -> bool {
        match (self.dim, value) {
            (None, ObsValue::Scalar(_)) => true,
            (Some(n), ObsValue::Vector(xs)) => xs.len() == n,
            _ => false,
        }
    }
}

/// Writes a scalar into an observation slot, reusing the slot in place.
pub fn write_scalar(slot: &mut ObsValue, x: f64) {
    match slot {
        ObsValue::Scalar(s) => *s = x,
        other => *other = ObsValue::Scalar(x),
    }
}

/// Writes a vector into an observation slot, reusing the slot's existing
/// allocation when it is already a vector. Steady-state use (same field
/// shapes every step) performs no heap allocation.
pub fn write_vector<I: IntoIterator<Item = f64>>(slot: &mut ObsValue, xs: I) {
    match slot {
        ObsValue::Vector(dst) => {
            dst.clear();
            dst.extend(xs);
        }
        other => *other = ObsValue::Vector(xs.into_iter().collect()),
    }
}

/// Grows or shrinks an observation buffer to `len` slots (new slots start
/// as scalars; [`write_scalar`]/[`write_vector`] fix the variants).
pub fn prepare_obs(obs: &mut Vec<ObsValue>, len: usize) {
    obs.resize(len, ObsValue::Scalar(0.0));
}

/// Result of one environment step when the observation is written into a
/// caller-owned buffer ([`NetEnv::step_into`]) instead of returned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Reward earned by the action just taken.
    pub reward: f64,
    /// True when the episode is over.
    pub done: bool,
}

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvStep {
    /// Observation for the *next* decision, in [`NetEnv::observation_spec`]
    /// order. Valid even when `done` (terminal observations feed value
    /// bootstrapping).
    pub obs: Vec<ObsValue>,
    /// Reward earned by the action just taken.
    pub reward: f64,
    /// True when the episode is over.
    pub done: bool,
}

/// An episodic network environment with a discrete action space.
///
/// Contract:
/// * [`reset`](NetEnv::reset) restarts the episode from its initial state
///   and returns the first observation; constructing an environment and
///   resetting it twice yields identical episodes (determinism is part of
///   the contract — any randomness must be seeded at construction and
///   replayed on reset);
/// * [`step`](NetEnv::step) takes an action index in
///   `0..action_space()` and advances one decision;
/// * observations always carry one value per declared field, in order,
///   with the declared shapes, at every step including the terminal one.
pub trait NetEnv {
    /// The declared observation fields, in binding order.
    fn observation_spec(&self) -> &'static [FieldSpec];

    /// Number of discrete actions.
    fn action_space(&self) -> usize;

    /// Restarts the episode, returning the initial observation.
    fn reset(&mut self) -> Vec<ObsValue>;

    /// Takes one action.
    ///
    /// # Panics
    /// May panic if called after `done` or with an out-of-range action —
    /// both are driver bugs, not recoverable conditions.
    fn step(&mut self, action: usize) -> EnvStep;

    /// [`NetEnv::reset`] writing the observation into a reusable buffer.
    ///
    /// The default delegates to `reset` (one allocation per call);
    /// implementations on hot paths should override it to write fields in
    /// place via [`write_scalar`]/[`write_vector`], making steady-state
    /// resets allocation-free. Must observe identical values to `reset`.
    fn reset_into(&mut self, obs: &mut Vec<ObsValue>) {
        *obs = self.reset();
    }

    /// [`NetEnv::step`] writing the next observation into a reusable
    /// buffer. Same override contract as [`NetEnv::reset_into`].
    fn step_into(&mut self, action: usize, obs: &mut Vec<ObsValue>) -> StepOutcome {
        let s = self.step(action);
        *obs = s.obs;
        StepOutcome {
            reward: s.reward,
            done: s.done,
        }
    }

    /// Exact number of decision steps remaining in the current episode,
    /// when the environment knows it ahead of time — which requires the
    /// episode length to be independent of the actions taken. `None` when
    /// unknown.
    ///
    /// The batched training engine uses this to pre-draw each step's
    /// action-sampling randomness in serial episode order (keeping lockstep
    /// execution bit-identical to episode-at-a-time execution); an
    /// environment returning `Some(n)` and then terminating after a
    /// different number of steps is a contract violation the engine
    /// asserts against.
    fn len_hint(&self) -> Option<usize> {
        None
    }
}

/// Checks an observation against a spec, returning the first mismatch.
pub fn spec_mismatch(spec: &[FieldSpec], obs: &[ObsValue]) -> Option<String> {
    if spec.len() != obs.len() {
        return Some(format!("expected {} fields, got {}", spec.len(), obs.len()));
    }
    for (f, v) in spec.iter().zip(obs) {
        if !f.matches(v) {
            return Some(format!("field `{}` has the wrong shape", f.name));
        }
        if !v.is_finite() {
            return Some(format!("field `{}` is non-finite", f.name));
        }
    }
    None
}

/// Looks up a field's value by declared name (test/baseline convenience).
pub fn field<'o>(spec: &[FieldSpec], obs: &'o [ObsValue], name: &str) -> &'o ObsValue {
    let idx = spec
        .iter()
        .position(|f| f.name == name)
        .unwrap_or_else(|| panic!("no field named `{name}` in spec"));
    &obs[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: [FieldSpec; 2] = [
        FieldSpec {
            name: "hist",
            dim: Some(3),
            lo: 0.0,
            hi: 1.0,
            doc: "history",
        },
        FieldSpec {
            name: "level",
            dim: None,
            lo: 0.0,
            hi: 60.0,
            doc: "level",
        },
    ];

    #[test]
    fn shapes_are_checked() {
        let ok = vec![ObsValue::Vector(vec![0.0; 3]), ObsValue::Scalar(1.0)];
        assert_eq!(spec_mismatch(&SPEC, &ok), None);

        let short = vec![ObsValue::Vector(vec![0.0; 2]), ObsValue::Scalar(1.0)];
        assert!(spec_mismatch(&SPEC, &short).unwrap().contains("hist"));

        let swapped = vec![ObsValue::Scalar(1.0), ObsValue::Vector(vec![0.0; 3])];
        assert!(spec_mismatch(&SPEC, &swapped).is_some());

        let nan = vec![ObsValue::Vector(vec![f64::NAN; 3]), ObsValue::Scalar(1.0)];
        assert!(spec_mismatch(&SPEC, &nan).unwrap().contains("non-finite"));
    }

    #[test]
    fn field_lookup_finds_by_name() {
        let obs = vec![ObsValue::Vector(vec![0.5; 3]), ObsValue::Scalar(42.0)];
        assert_eq!(field(&SPEC, &obs, "level").as_scalar(), 42.0);
        assert_eq!(field(&SPEC, &obs, "hist").as_vector().len(), 3);
    }

    #[test]
    #[should_panic(expected = "no field named")]
    fn field_lookup_rejects_unknown_names() {
        let obs = vec![ObsValue::Vector(vec![0.5; 3]), ObsValue::Scalar(42.0)];
        let _ = field(&SPEC, &obs, "nope");
    }
}
