//! Quality-of-experience metrics.
//!
//! The paper adopts Pensieve's linear QoE (`QoE_lin`) as the RL reward:
//!
//! ```text
//! QoE_lin(chunk t) = q(R_t) − μ · T_rebuf,t − |q(R_t) − q(R_{t−1})|
//! ```
//!
//! with `q(R) = R` in Mbps and rebuffer penalty `μ = 4.3`. `QoE_log` and
//! `QoE_hd` from the MPC/Pensieve papers are provided for completeness and
//! used by ablation benches.

/// A per-chunk QoE function. Implementations must be pure.
pub trait QoeMetric {
    /// Reward for downloading one chunk at `bitrate_kbps` after
    /// `rebuffer_s` seconds of stall, having previously played a chunk at
    /// `prev_bitrate_kbps`.
    fn chunk_reward(&self, bitrate_kbps: f64, prev_bitrate_kbps: f64, rebuffer_s: f64) -> f64;

    /// Short name used in reports.
    fn name(&self) -> &'static str;
}

/// Pensieve's `QoE_lin`: quality in Mbps, rebuffer penalty 4.3/s,
/// smoothness penalty 1 per Mbps of bitrate change.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QoeLin {
    /// Rebuffering penalty per second of stall (paper: 4.3).
    pub rebuf_penalty: f64,
    /// Smoothness penalty per Mbps of bitrate change (paper: 1.0).
    pub smooth_penalty: f64,
}

impl Default for QoeLin {
    fn default() -> Self {
        Self {
            rebuf_penalty: 4.3,
            smooth_penalty: 1.0,
        }
    }
}

impl QoeMetric for QoeLin {
    fn chunk_reward(&self, bitrate_kbps: f64, prev_bitrate_kbps: f64, rebuffer_s: f64) -> f64 {
        let q = bitrate_kbps / 1000.0;
        let q_prev = prev_bitrate_kbps / 1000.0;
        q - self.rebuf_penalty * rebuffer_s - self.smooth_penalty * (q - q_prev).abs()
    }

    fn name(&self) -> &'static str {
        "QoE_lin"
    }
}

/// Logarithmic QoE: `q(R) = ln(R / R_min)`, diminishing returns at high
/// bitrates (from the MPC paper). `r_min_kbps` anchors the log.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QoeLog {
    /// Lowest ladder bitrate, kbps (the log anchor).
    pub r_min_kbps: f64,
    /// Rebuffering penalty per second of stall.
    pub rebuf_penalty: f64,
}

impl QoeLog {
    /// Builds a log-QoE anchored at the given minimum ladder bitrate.
    pub fn new(r_min_kbps: f64) -> Self {
        assert!(r_min_kbps > 0.0);
        Self {
            r_min_kbps,
            rebuf_penalty: 2.66,
        }
    }
}

impl QoeMetric for QoeLog {
    fn chunk_reward(&self, bitrate_kbps: f64, prev_bitrate_kbps: f64, rebuffer_s: f64) -> f64 {
        let q = (bitrate_kbps / self.r_min_kbps).ln();
        let q_prev = (prev_bitrate_kbps.max(self.r_min_kbps) / self.r_min_kbps).ln();
        q - self.rebuf_penalty * rebuffer_s - (q - q_prev).abs()
    }

    fn name(&self) -> &'static str {
        "QoE_log"
    }
}

/// HD-focused QoE: large bonus for bitrates at or above an "HD" threshold
/// (from the Pensieve paper's QoE_hd variant).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QoeHd {
    /// Bitrate from which a chunk counts as HD, kbps.
    pub hd_threshold_kbps: f64,
    /// Reward for an HD chunk.
    pub hd_reward: f64,
    /// Reward for a non-HD chunk.
    pub sd_reward: f64,
    /// Rebuffering penalty per second of stall.
    pub rebuf_penalty: f64,
}

impl Default for QoeHd {
    fn default() -> Self {
        Self {
            hd_threshold_kbps: 1850.0,
            hd_reward: 3.0,
            sd_reward: 1.0,
            rebuf_penalty: 8.0,
        }
    }
}

impl QoeMetric for QoeHd {
    fn chunk_reward(&self, bitrate_kbps: f64, prev_bitrate_kbps: f64, rebuffer_s: f64) -> f64 {
        let score = |r: f64| {
            if r >= self.hd_threshold_kbps {
                self.hd_reward
            } else {
                self.sd_reward
            }
        };
        let q = score(bitrate_kbps);
        let q_prev = score(prev_bitrate_kbps);
        q - self.rebuf_penalty * rebuffer_s - (q - q_prev).abs()
    }

    fn name(&self) -> &'static str {
        "QoE_hd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qoe_lin_matches_hand_arithmetic() {
        let q = QoeLin::default();
        // 4300 kbps after 1850 kbps with 0.5 s stall:
        // 4.3 - 4.3*0.5 - |4.3-1.85| = 4.3 - 2.15 - 2.45 = -0.3
        let r = q.chunk_reward(4300.0, 1850.0, 0.5);
        assert!((r - (-0.3)).abs() < 1e-9);
    }

    #[test]
    fn steady_high_bitrate_is_best_case() {
        let q = QoeLin::default();
        let steady = q.chunk_reward(4300.0, 4300.0, 0.0);
        assert!((steady - 4.3).abs() < 1e-12);
        assert!(q.chunk_reward(4300.0, 300.0, 0.0) < steady);
        assert!(q.chunk_reward(4300.0, 4300.0, 1.0) < steady);
    }

    #[test]
    fn rebuffering_dominates_at_low_bitrates() {
        let q = QoeLin::default();
        // 300 kbps with a 2 s stall is strongly negative.
        assert!(q.chunk_reward(300.0, 300.0, 2.0) < -8.0);
    }

    #[test]
    fn qoe_log_has_diminishing_returns() {
        let q = QoeLog::new(300.0);
        let low_step = q.chunk_reward(750.0, 750.0, 0.0) - q.chunk_reward(300.0, 300.0, 0.0);
        let high_step = q.chunk_reward(4300.0, 4300.0, 0.0) - q.chunk_reward(2850.0, 2850.0, 0.0);
        assert!(low_step > high_step);
    }

    #[test]
    fn qoe_hd_rewards_threshold_crossing() {
        let q = QoeHd::default();
        assert!(q.chunk_reward(1850.0, 1850.0, 0.0) > q.chunk_reward(1200.0, 1200.0, 0.0));
    }
}
