//! Chunk transport models.
//!
//! The environment ([`crate::env::AbrEnv`]) is generic over *how* chunk bytes
//! cross the network. [`SimTransport`] is a direct port of Pensieve's
//! `fixed_env.py` chunk-level model (what the paper calls "simulation");
//! [`crate::emulator::EmuTransport`] adds HTTP/TCP dynamics ("emulation").

use nada_traces::{Trace, TraceCursor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of fetching one chunk through a transport.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fetch {
    /// Wall-clock seconds from request to last byte (includes RTT and any
    /// transport noise).
    pub delay_s: f64,
    /// Application-observed throughput over the fetch, Mbps
    /// (`bytes * 8 / delay`), i.e. what a player's bandwidth estimator sees.
    pub throughput_mbps: f64,
}

/// A deterministic model of downloading chunk bytes over a traced link.
///
/// `Clone` is a supertrait because transports own all episode randomness:
/// cloning a pristine transport is how environments rewind an episode for
/// [`crate::netenv::NetEnv::reset`].
pub trait ChunkTransport: Clone {
    /// Downloads `bytes` and returns timing; advances internal link time.
    fn fetch(&mut self, bytes: f64) -> Fetch;

    /// Advances link time by `dt_s` seconds without transferring data
    /// (the player sleeping while its buffer is full).
    fn advance_idle(&mut self, dt_s: f64);
}

/// Pensieve `fixed_env.py` constants.
pub mod pensieve_constants {
    /// Fraction of link bytes that are chunk payload (rest is headers/ACKs).
    pub const PACKET_PAYLOAD_PORTION: f64 = 0.95;
    /// Link round-trip time added to every chunk fetch, seconds.
    pub const LINK_RTT_S: f64 = 0.080;
    /// Multiplicative delay noise is drawn from `[LOW, HIGH]` uniformly.
    pub const NOISE_LOW: f64 = 0.9;
    /// Upper bound of the delay noise band.
    pub const NOISE_HIGH: f64 = 1.1;
}

/// Chunk-level simulator matching Pensieve's `fixed_env.py` /
/// `env.py`: piecewise-constant trace bandwidth, a payload-portion factor,
/// one link RTT per chunk, and (for training parity with `env.py`) optional
/// uniform multiplicative delay noise.
#[derive(Debug, Clone)]
pub struct SimTransport<'a> {
    cursor: TraceCursor<'a>,
    rng: StdRng,
    /// Whether to apply `env.py`'s ±10 % delay noise (on for training
    /// environments, off for deterministic fixtures).
    noise: bool,
}

impl<'a> SimTransport<'a> {
    /// Creates a simulator starting at a seed-derived random trace offset
    /// (Pensieve starts every episode at a random point) with delay noise on.
    pub fn new(trace: &'a Trace, seed: u64) -> Self {
        Self {
            cursor: TraceCursor::with_random_start(trace, seed),
            rng: StdRng::seed_from_u64(seed ^ 0x51A7_0000_0000_0006),
            noise: true,
        }
    }

    /// Creates a noise-free simulator starting at the trace beginning;
    /// used for reproducible test arithmetic.
    pub fn deterministic(trace: &'a Trace) -> Self {
        Self {
            cursor: TraceCursor::new(trace),
            rng: StdRng::seed_from_u64(0),
            noise: false,
        }
    }

    /// Total trace seconds consumed so far.
    pub fn elapsed_s(&self) -> f64 {
        self.cursor.elapsed_s()
    }
}

impl ChunkTransport for SimTransport<'_> {
    fn fetch(&mut self, bytes: f64) -> Fetch {
        use pensieve_constants::*;
        // Effective goodput is the trace bandwidth times the payload portion,
        // so the wire carries `bytes / PORTION` total.
        let wire = self.cursor.download(bytes / PACKET_PAYLOAD_PORTION);
        let noise = if self.noise {
            self.rng.gen_range(NOISE_LOW..NOISE_HIGH)
        } else {
            1.0
        };
        let delay_s = wire.duration_s * noise + LINK_RTT_S;
        Fetch {
            delay_s,
            throughput_mbps: bytes * 8.0 / delay_s / 1e6,
        }
    }

    fn advance_idle(&mut self, dt_s: f64) {
        self.cursor.advance_time(dt_s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nada_traces::Trace;

    #[test]
    fn deterministic_fetch_matches_arithmetic() {
        // 8 Mbps link => 0.95 MB/s goodput. 0.95 MB payload downloads in
        // exactly 1 s + 80 ms RTT.
        let t = Trace::from_uniform("flat", 1.0, &[8.0; 100]).unwrap();
        let mut s = SimTransport::deterministic(&t);
        let f = s.fetch(950_000.0);
        assert!((f.delay_s - 1.08).abs() < 1e-9, "delay {}", f.delay_s);
    }

    #[test]
    fn observed_throughput_includes_rtt_overhead() {
        let t = Trace::from_uniform("flat", 1.0, &[8.0; 100]).unwrap();
        let mut s = SimTransport::deterministic(&t);
        let f = s.fetch(950_000.0);
        // 0.95 MB in 1.08 s ≈ 7.04 Mbps observed < 8 Mbps link rate.
        assert!(f.throughput_mbps < 8.0);
        assert!((f.throughput_mbps - 950_000.0 * 8.0 / 1.08 / 1e6).abs() < 1e-9);
    }

    #[test]
    fn noisy_transport_is_seed_deterministic() {
        let t = Trace::from_uniform("flat", 1.0, &[8.0; 100]).unwrap();
        let mut a = SimTransport::new(&t, 7);
        let mut b = SimTransport::new(&t, 7);
        for _ in 0..5 {
            assert_eq!(a.fetch(100_000.0), b.fetch(100_000.0));
        }
    }

    #[test]
    fn noise_band_is_respected() {
        let t = Trace::from_uniform("flat", 1.0, &[8.0; 1000]).unwrap();
        let mut s = SimTransport::new(&t, 11);
        for _ in 0..200 {
            let f = s.fetch(95_000.0);
            // Pure transfer takes 0.1 s; noise keeps it within [0.09, 0.11],
            // plus the fixed 80 ms RTT.
            assert!(
                f.delay_s > 0.09 + 0.079 && f.delay_s < 0.11 + 0.081,
                "{}",
                f.delay_s
            );
        }
    }

    #[test]
    fn idle_advance_moves_link_time() {
        let t = Trace::from_uniform("step", 1.0, &[1.0, 100.0]).unwrap();
        let mut s = SimTransport::deterministic(&t);
        s.advance_idle(1.5); // into the fast segment
        let f = s.fetch(1_250_000.0); // 10 Mbit at 100 Mbps = 0.1 s... plus payload factor
        assert!(
            f.delay_s < 0.3,
            "fetch should hit the fast segment, took {}",
            f.delay_s
        );
    }
}
