//! Episode drivers: run a policy through an environment and summarize.

use crate::baselines::AbrPolicy;
use crate::env::{AbrEnv, StepResult};
use crate::qoe::QoeMetric;
use crate::transport::ChunkTransport;

/// Per-episode aggregate statistics.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EpisodeSummary {
    /// Chunks downloaded (equals the manifest length on completion).
    pub chunks: usize,
    /// Mean per-chunk QoE reward — the paper's per-episode score unit.
    pub mean_reward: f64,
    /// Total QoE reward.
    pub total_reward: f64,
    /// Total rebuffering, seconds.
    pub total_rebuffer_s: f64,
    /// Mean selected bitrate, kbps.
    pub mean_bitrate_kbps: f64,
    /// Number of quality switches.
    pub switches: usize,
}

/// One chunk's record inside an [`EpisodeTrace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkRecord {
    /// Quality level selected for this chunk.
    pub quality: usize,
    /// Bitrate of that level, kbps.
    pub bitrate_kbps: f64,
    /// QoE reward earned.
    pub reward: f64,
    /// Rebuffering incurred, seconds.
    pub rebuffer_s: f64,
    /// Download delay, seconds.
    pub delay_s: f64,
    /// Buffer level after the download, seconds.
    pub buffer_s: f64,
}

/// Full per-chunk log of an episode, for plotting and debugging.
#[derive(Debug, Clone, Default)]
pub struct EpisodeTrace {
    /// One record per downloaded chunk, in order.
    pub records: Vec<ChunkRecord>,
}

impl EpisodeTrace {
    /// Collapses the log into summary statistics.
    pub fn summarize(&self) -> EpisodeSummary {
        let n = self.records.len();
        let total_reward: f64 = self.records.iter().map(|r| r.reward).sum();
        let switches = self
            .records
            .windows(2)
            .filter(|w| w[0].quality != w[1].quality)
            .count();
        EpisodeSummary {
            chunks: n,
            mean_reward: if n > 0 { total_reward / n as f64 } else { 0.0 },
            total_reward,
            total_rebuffer_s: self.records.iter().map(|r| r.rebuffer_s).sum(),
            mean_bitrate_kbps: if n > 0 {
                self.records.iter().map(|r| r.bitrate_kbps).sum::<f64>() / n as f64
            } else {
                0.0
            },
            switches,
        }
    }
}

/// Runs `policy` through `env` until the video ends, returning the summary.
pub fn run_episode<T, Q, P>(env: &mut AbrEnv<'_, T, Q>, mut policy: P) -> EpisodeSummary
where
    T: ChunkTransport,
    Q: QoeMetric,
    P: AbrPolicy,
{
    run_episode_traced(env, &mut policy).summarize()
}

/// Runs `policy` through `env`, keeping the per-chunk log.
pub fn run_episode_traced<T, Q, P>(env: &mut AbrEnv<'_, T, Q>, policy: &mut P) -> EpisodeTrace
where
    T: ChunkTransport,
    Q: QoeMetric,
    P: AbrPolicy,
{
    policy.reset();
    let mut obs = env.initial_observation();
    let mut trace = EpisodeTrace::default();
    loop {
        let quality = policy.select(&obs);
        let bitrate_kbps = obs.ladder_kbps[quality.min(obs.n_levels() - 1)];
        let StepResult {
            obs: next,
            reward,
            rebuffer_s,
            delay_s,
            done,
            ..
        } = env.step(quality);
        trace.records.push(ChunkRecord {
            quality,
            bitrate_kbps,
            reward,
            rebuffer_s,
            delay_s,
            buffer_s: next.buffer_s,
        });
        obs = next;
        if done {
            return trace;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{BufferBased, Constant, RateBased, RobustMpc};
    use crate::qoe::QoeLin;
    use crate::video::{Ladder, VideoManifest};
    use nada_traces::Trace;

    fn fixture() -> (VideoManifest, Trace) {
        let m = VideoManifest::pensieve_like(Ladder::broadband(), 48, 1);
        let t = Trace::from_uniform("flat3", 1.0, &[3.0; 4000]).unwrap();
        (m, t)
    }

    #[test]
    fn summary_counts_every_chunk() {
        let (m, t) = fixture();
        let mut env = AbrEnv::new_sim_deterministic(&m, &t, QoeLin::default());
        let s = run_episode(&mut env, BufferBased::default());
        assert_eq!(s.chunks, 48);
        assert!(s.mean_bitrate_kbps >= 300.0);
    }

    #[test]
    fn adaptive_beats_constant_top_quality_on_constrained_link() {
        let (m, t) = fixture();
        let mut env1 = AbrEnv::new_sim_deterministic(&m, &t, QoeLin::default());
        let adaptive = run_episode(&mut env1, RateBased::default());
        let mut env2 = AbrEnv::new_sim_deterministic(&m, &t, QoeLin::default());
        let constant_max = run_episode(&mut env2, Constant(5));
        assert!(
            adaptive.mean_reward > constant_max.mean_reward,
            "adaptive {} <= constant {}",
            adaptive.mean_reward,
            constant_max.mean_reward
        );
    }

    #[test]
    fn mpc_is_competitive_with_buffer_based() {
        let (m, t) = fixture();
        let mut env1 = AbrEnv::new_sim_deterministic(&m, &t, QoeLin::default());
        let mpc = run_episode(&mut env1, RobustMpc::default());
        let mut env2 = AbrEnv::new_sim_deterministic(&m, &t, QoeLin::default());
        let bb = run_episode(&mut env2, BufferBased::default());
        // MPC should not be catastrophically worse on a flat link.
        assert!(mpc.mean_reward > bb.mean_reward - 1.0);
    }

    #[test]
    fn traced_run_matches_summary() {
        let (m, t) = fixture();
        let mut env = AbrEnv::new_sim_deterministic(&m, &t, QoeLin::default());
        let mut p = BufferBased::default();
        let trace = run_episode_traced(&mut env, &mut p);
        let s = trace.summarize();
        assert_eq!(trace.records.len(), s.chunks);
        let manual: f64 = trace.records.iter().map(|r| r.reward).sum();
        assert!((manual - s.total_reward).abs() < 1e-9);
    }

    #[test]
    fn switches_counted_between_consecutive_chunks() {
        let tr = EpisodeTrace {
            records: vec![
                ChunkRecord {
                    quality: 0,
                    bitrate_kbps: 300.0,
                    reward: 0.0,
                    rebuffer_s: 0.0,
                    delay_s: 1.0,
                    buffer_s: 4.0,
                },
                ChunkRecord {
                    quality: 1,
                    bitrate_kbps: 750.0,
                    reward: 0.0,
                    rebuffer_s: 0.0,
                    delay_s: 1.0,
                    buffer_s: 4.0,
                },
                ChunkRecord {
                    quality: 1,
                    bitrate_kbps: 750.0,
                    reward: 0.0,
                    rebuffer_s: 0.0,
                    delay_s: 1.0,
                    buffer_s: 4.0,
                },
            ],
        };
        assert_eq!(tr.summarize().switches, 1);
    }
}
