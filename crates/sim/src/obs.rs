//! Raw observations handed to state programs.
//!
//! Pensieve's state is built from fixed-length histories of network
//! measurements plus playback scalars. NADA's generated states may use *any*
//! of these inputs — including the buffer-occupancy history that the original
//! Pensieve design ignores (the paper's §4 highlights buffer history as the
//! most interesting discovered feature) — so the environment tracks a
//! superset of what the original design consumes.

use crate::netenv::{FieldSpec, ObsValue};
use std::collections::VecDeque;

/// Length of every history window, matching Pensieve's `S_LEN = 8`.
pub const HISTORY_LEN: usize = 8;

/// Ladder levels offered by both paper ladders.
pub const N_LEVELS: usize = 6;

/// The ABR workload's declared observation fields, in binding order.
/// This is the single sim-side source of truth that `nada_dsl::abr_schema`
/// mirrors (the pipeline asserts they agree).
pub const ABR_FIELDS: [FieldSpec; 9] = [
    FieldSpec {
        name: "throughput_mbps",
        dim: Some(HISTORY_LEN),
        lo: 0.0,
        hi: 150.0,
        doc: "throughput measured for each of the last 8 chunk downloads, Mbps",
    },
    FieldSpec {
        name: "download_time_s",
        dim: Some(HISTORY_LEN),
        lo: 0.0,
        hi: 30.0,
        doc: "download delay of each of the last 8 chunks, seconds",
    },
    FieldSpec {
        name: "buffer_history_s",
        dim: Some(HISTORY_LEN),
        lo: 0.0,
        hi: 60.0,
        doc: "playback buffer level after each of the last 8 downloads, seconds",
    },
    FieldSpec {
        name: "next_chunk_sizes_bytes",
        dim: Some(N_LEVELS),
        lo: 0.0,
        hi: 3.0e7,
        doc: "encoded size of the next chunk at each quality, bytes",
    },
    FieldSpec {
        name: "buffer_s",
        dim: None,
        lo: 0.0,
        hi: 60.0,
        doc: "current playback buffer, seconds",
    },
    FieldSpec {
        name: "chunks_remaining",
        dim: None,
        lo: 0.0,
        hi: 48.0,
        doc: "chunks left in the video",
    },
    FieldSpec {
        name: "total_chunks",
        dim: None,
        lo: 48.0,
        hi: 48.0,
        doc: "total chunks in the video",
    },
    FieldSpec {
        name: "last_bitrate_kbps",
        dim: None,
        lo: 300.0,
        hi: 53_000.0,
        doc: "bitrate of the previously selected chunk, kbps",
    },
    FieldSpec {
        name: "max_bitrate_kbps",
        dim: None,
        lo: 4_300.0,
        hi: 53_000.0,
        doc: "highest ladder bitrate, kbps",
    },
];

/// Raw, unnormalized inputs available to a state program at decision time.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Throughput observed for the last [`HISTORY_LEN`] chunk downloads,
    /// Mbps, oldest first, zero-padded at episode start.
    pub throughput_mbps: Vec<f64>,
    /// Download delay of the last [`HISTORY_LEN`] chunks, seconds, oldest
    /// first, zero-padded.
    pub download_time_s: Vec<f64>,
    /// Playback buffer level after each of the last [`HISTORY_LEN`] chunk
    /// downloads, seconds, oldest first, zero-padded. (Not used by the
    /// original Pensieve state; exposed for generated designs.)
    pub buffer_history_s: Vec<f64>,
    /// Encoded sizes of the *next* chunk at each quality, bytes, lowest
    /// bitrate first.
    pub next_chunk_sizes_bytes: Vec<f64>,
    /// Current playback buffer, seconds.
    pub buffer_s: f64,
    /// Chunks left in the video, including the one about to be selected.
    pub chunks_remaining: usize,
    /// Total chunks in the video.
    pub total_chunks: usize,
    /// Bitrate of the previously selected chunk, kbps.
    pub last_bitrate_kbps: f64,
    /// The ladder, kbps, lowest first (for normalization by max bitrate).
    pub ladder_kbps: Vec<f64>,
}

impl Observation {
    /// Number of selectable quality levels.
    pub fn n_levels(&self) -> usize {
        self.ladder_kbps.len()
    }

    /// Highest ladder bitrate, kbps.
    pub fn max_bitrate_kbps(&self) -> f64 {
        *self.ladder_kbps.last().expect("ladder is non-empty")
    }

    /// Fraction of the video still to play, in `[0, 1]`.
    pub fn remaining_fraction(&self) -> f64 {
        self.chunks_remaining as f64 / self.total_chunks as f64
    }

    /// The observation as declared field values, in [`ABR_FIELDS`] order.
    pub fn field_values(&self) -> Vec<ObsValue> {
        vec![
            ObsValue::Vector(self.throughput_mbps.clone()),
            ObsValue::Vector(self.download_time_s.clone()),
            ObsValue::Vector(self.buffer_history_s.clone()),
            ObsValue::Vector(self.next_chunk_sizes_bytes.clone()),
            ObsValue::Scalar(self.buffer_s),
            ObsValue::Scalar(self.chunks_remaining as f64),
            ObsValue::Scalar(self.total_chunks as f64),
            ObsValue::Scalar(self.last_bitrate_kbps),
            ObsValue::Scalar(self.max_bitrate_kbps()),
        ]
    }
}

/// Rolling histories maintained by the environment between steps.
#[derive(Debug, Clone, Default)]
pub(crate) struct HistoryBuffers {
    throughput_mbps: VecDeque<f64>,
    download_time_s: VecDeque<f64>,
    buffer_s: VecDeque<f64>,
}

impl HistoryBuffers {
    pub(crate) fn new() -> Self {
        let zeros = || VecDeque::from(vec![0.0; HISTORY_LEN]);
        Self {
            throughput_mbps: zeros(),
            download_time_s: zeros(),
            buffer_s: zeros(),
        }
    }

    pub(crate) fn push(&mut self, throughput_mbps: f64, download_time_s: f64, buffer_s: f64) {
        push_window(&mut self.throughput_mbps, throughput_mbps);
        push_window(&mut self.download_time_s, download_time_s);
        push_window(&mut self.buffer_s, buffer_s);
    }

    pub(crate) fn throughput(&self) -> Vec<f64> {
        self.throughput_mbps.iter().copied().collect()
    }

    pub(crate) fn throughput_iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.throughput_mbps.iter().copied()
    }

    pub(crate) fn download_time_iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.download_time_s.iter().copied()
    }

    pub(crate) fn buffer_iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.buffer_s.iter().copied()
    }

    pub(crate) fn download_time(&self) -> Vec<f64> {
        self.download_time_s.iter().copied().collect()
    }

    pub(crate) fn buffer(&self) -> Vec<f64> {
        self.buffer_s.iter().copied().collect()
    }
}

fn push_window(q: &mut VecDeque<f64>, v: f64) {
    q.pop_front();
    q.push_back(v);
    debug_assert_eq!(q.len(), HISTORY_LEN);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histories_start_zeroed_and_roll() {
        let mut h = HistoryBuffers::new();
        assert_eq!(h.throughput(), vec![0.0; HISTORY_LEN]);
        h.push(5.0, 1.0, 10.0);
        let thr = h.throughput();
        assert_eq!(thr.len(), HISTORY_LEN);
        assert_eq!(thr[HISTORY_LEN - 1], 5.0);
        assert_eq!(thr[HISTORY_LEN - 2], 0.0);
        for i in 0..HISTORY_LEN {
            h.push(i as f64, 0.0, 0.0);
        }
        assert_eq!(h.throughput()[0], 0.0);
        assert_eq!(h.throughput()[HISTORY_LEN - 1], (HISTORY_LEN - 1) as f64);
    }

    #[test]
    fn observation_helpers() {
        let obs = Observation {
            throughput_mbps: vec![0.0; HISTORY_LEN],
            download_time_s: vec![0.0; HISTORY_LEN],
            buffer_history_s: vec![0.0; HISTORY_LEN],
            next_chunk_sizes_bytes: vec![1.0; 6],
            buffer_s: 0.0,
            chunks_remaining: 24,
            total_chunks: 48,
            last_bitrate_kbps: 750.0,
            ladder_kbps: vec![300.0, 750.0, 4300.0],
        };
        assert_eq!(obs.n_levels(), 3);
        assert_eq!(obs.max_bitrate_kbps(), 4300.0);
        assert!((obs.remaining_fraction() - 0.5).abs() < 1e-12);
    }
}
