//! HTTP/TCP-flavoured chunk emulator.
//!
//! The paper validates its best designs by streaming real video with dash.js
//! in a browser over Mahimahi (Table 4). That harness cannot be shipped in a
//! Rust library, so [`EmuTransport`] substitutes a finer-grained transport
//! model that reproduces the *reasons* emulation scores diverge from
//! chunk-level simulation:
//!
//! * every chunk is an HTTP request: one jittered RTT of request latency
//!   before the first byte;
//! * TCP slow start: the congestion window ramps from `IW = 10` packets,
//!   doubling per round until the link is saturated, so short chunks never
//!   reach link rate (small low-bitrate chunks are hit hardest);
//! * between chunks the connection idles and the window decays
//!   (slow-start restart), so capacity must be re-probed;
//! * queueing jitter perturbs each round's delivery time.
//!
//! The result, as in the paper, is lower absolute QoE than simulation with
//! preserved design rankings.

use crate::transport::{pensieve_constants, ChunkTransport, Fetch};
use nada_traces::{Trace, TraceCursor, PACKET_PAYLOAD_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// TCP initial congestion window, packets (RFC 6928).
pub const INITIAL_CWND_PKTS: f64 = 10.0;
/// Maximum congestion window, packets (64 MB of 1500 B packets is plenty).
pub const MAX_CWND_PKTS: f64 = 4096.0;
/// Multiplicative window decay applied per idle second between chunk
/// requests (models slow-start restart after idle).
pub const IDLE_DECAY_PER_S: f64 = 0.5;

/// Emulated HTTP/TCP transport over a traced link.
#[derive(Debug, Clone)]
pub struct EmuTransport<'a> {
    cursor: TraceCursor<'a>,
    rng: StdRng,
    /// Congestion window carried across chunks on the persistent connection.
    cwnd_pkts: f64,
    /// Base round-trip time, seconds.
    base_rtt_s: f64,
    /// Standard deviation of per-round RTT jitter, seconds.
    rtt_jitter_s: f64,
}

impl<'a> EmuTransport<'a> {
    /// Creates an emulator starting at a seed-derived random trace offset.
    pub fn new(trace: &'a Trace, seed: u64) -> Self {
        Self {
            cursor: TraceCursor::with_random_start(trace, seed),
            rng: StdRng::seed_from_u64(seed ^ 0xE4A0_0000_0000_0007),
            cwnd_pkts: INITIAL_CWND_PKTS,
            base_rtt_s: pensieve_constants::LINK_RTT_S,
            rtt_jitter_s: 0.008,
        }
    }

    /// Creates a jitter-free emulator starting at the trace beginning.
    pub fn deterministic(trace: &'a Trace) -> Self {
        let mut e = Self::new(trace, 0);
        e.cursor = TraceCursor::new(trace);
        e.rtt_jitter_s = 0.0;
        e
    }

    fn jittered_rtt(&mut self) -> f64 {
        if self.rtt_jitter_s == 0.0 {
            return self.base_rtt_s;
        }
        // Box–Muller; clamp so jitter never makes the RTT non-positive.
        let u1: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.gen();
        let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.base_rtt_s + g * self.rtt_jitter_s).max(self.base_rtt_s * 0.25)
    }
}

impl ChunkTransport for EmuTransport<'_> {
    fn fetch(&mut self, bytes: f64) -> Fetch {
        // HTTP GET: one RTT before the first byte.
        let mut elapsed_s = self.jittered_rtt();
        self.cursor.advance_time(elapsed_s);

        let mut remaining = bytes / pensieve_constants::PACKET_PAYLOAD_PORTION;
        while remaining > 0.0 {
            let rtt = self.jittered_rtt();
            let burst = (self.cwnd_pkts * PACKET_PAYLOAD_BYTES).min(remaining);
            // The link drains the burst at trace rate; a self-clocked sender
            // cannot complete a round faster than one RTT.
            let drain = self.cursor.download(burst);
            let round_s = drain.duration_s.max(rtt);
            if drain.duration_s < rtt {
                // The window did not fill the pipe: idle until the ACKs
                // return, then grow the window (slow start).
                self.cursor.advance_time(rtt - drain.duration_s);
                self.cwnd_pkts = (self.cwnd_pkts * 2.0).min(MAX_CWND_PKTS);
            } else {
                // Link-limited: additive increase.
                self.cwnd_pkts = (self.cwnd_pkts + 1.0).min(MAX_CWND_PKTS);
            }
            elapsed_s += round_s;
            remaining -= burst;
        }

        Fetch {
            delay_s: elapsed_s,
            throughput_mbps: bytes * 8.0 / elapsed_s / 1e6,
        }
    }

    fn advance_idle(&mut self, dt_s: f64) {
        self.cursor.advance_time(dt_s);
        // Slow-start restart: the window decays while the connection idles.
        self.cwnd_pkts = (self.cwnd_pkts * IDLE_DECAY_PER_S.powf(dt_s)).max(INITIAL_CWND_PKTS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nada_traces::Trace;

    fn flat(mbps: f64, secs: usize) -> Trace {
        Trace::from_uniform("flat", 1.0, &vec![mbps; secs]).unwrap()
    }

    #[test]
    fn emulated_fetch_is_slower_than_simulated() {
        let t = flat(8.0, 4000);
        let mut emu = EmuTransport::deterministic(&t);
        let mut sim = crate::transport::SimTransport::deterministic(&t);
        let bytes = 500_000.0;
        let fe = emu.fetch(bytes);
        let fs = sim.fetch(bytes);
        assert!(
            fe.delay_s > fs.delay_s,
            "emulation ({}) should be slower than simulation ({})",
            fe.delay_s,
            fs.delay_s
        );
    }

    #[test]
    fn slow_start_penalizes_small_chunks_relatively_more() {
        let t = flat(20.0, 4000);
        let mut emu_small = EmuTransport::deterministic(&t);
        let small = emu_small.fetch(100_000.0);
        let mut emu_big = EmuTransport::deterministic(&t);
        let big = emu_big.fetch(4_000_000.0);
        // Effective throughput of the large transfer is much closer to the
        // 20 Mbps link rate than the small one's.
        assert!(big.throughput_mbps > small.throughput_mbps * 1.5);
    }

    #[test]
    fn window_carries_over_between_chunks() {
        let t = flat(20.0, 4000);
        let mut emu = EmuTransport::deterministic(&t);
        let first = emu.fetch(1_000_000.0);
        let second = emu.fetch(1_000_000.0);
        assert!(
            second.delay_s < first.delay_s,
            "warm connection should be faster"
        );
    }

    #[test]
    fn idle_decay_cools_the_connection() {
        let t = flat(20.0, 4000);
        let mut emu = EmuTransport::deterministic(&t);
        let _ = emu.fetch(4_000_000.0);
        let warm = emu.cwnd_pkts;
        emu.advance_idle(10.0);
        assert!(emu.cwnd_pkts < warm, "cwnd should decay over idle time");
        assert!(emu.cwnd_pkts >= INITIAL_CWND_PKTS);
    }

    #[test]
    fn deterministic_emulator_is_reproducible() {
        let t = flat(8.0, 4000);
        let mut a = EmuTransport::new(&t, 3);
        let mut b = EmuTransport::new(&t, 3);
        for _ in 0..4 {
            assert_eq!(a.fetch(300_000.0), b.fetch(300_000.0));
        }
    }

    #[test]
    fn throughput_converges_toward_link_rate_for_huge_transfers() {
        let t = flat(10.0, 40_000);
        let mut emu = EmuTransport::deterministic(&t);
        let f = emu.fetch(50_000_000.0); // 50 MB
        assert!(f.throughput_mbps > 7.0, "got {}", f.throughput_mbps);
        assert!(f.throughput_mbps <= 10.0);
    }
}
