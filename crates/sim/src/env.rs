//! The ABR episode environment: Pensieve's player model over a transport.
//!
//! One episode = one video playback over one trace. Each step the policy
//! picks a quality level for the next chunk; the environment downloads it
//! through the transport, updates the playback buffer (stalling if it runs
//! dry, sleeping if it overflows Pensieve's 60-second cap), and returns the
//! next [`Observation`] plus the `QoE_lin` reward.

use crate::emulator::EmuTransport;
use crate::netenv::{EnvStep, FieldSpec, NetEnv, ObsValue, StepOutcome};
use crate::obs::{HistoryBuffers, Observation, ABR_FIELDS};
use crate::qoe::QoeMetric;
use crate::transport::{ChunkTransport, SimTransport};
use crate::video::VideoManifest;
use nada_traces::Trace;

/// Playback buffer cap: Pensieve sleeps once the buffer exceeds 60 s.
pub const BUFFER_CAP_S: f64 = 60.0;
/// Sleep quantum while the buffer is above the cap (Pensieve: 500 ms).
pub const DRAIN_SLEEP_S: f64 = 0.5;
/// Quality level selected for the implicit chunk before the episode starts
/// (Pensieve's `DEFAULT_QUALITY = 1`).
pub const DEFAULT_QUALITY: usize = 1;

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// Observation for choosing the *next* chunk (valid even when `done`;
    /// terminal observations feed value bootstrapping).
    pub obs: Observation,
    /// `QoE` reward earned by the chunk just downloaded.
    pub reward: f64,
    /// Seconds of rebuffering incurred by this chunk.
    pub rebuffer_s: f64,
    /// Download delay of this chunk, seconds.
    pub delay_s: f64,
    /// Seconds slept because the buffer exceeded [`BUFFER_CAP_S`].
    pub sleep_s: f64,
    /// True when the video has no chunks left.
    pub done: bool,
}

/// The ABR environment, generic over the transport model.
#[derive(Debug, Clone)]
pub struct AbrEnv<'a, T: ChunkTransport, Q: QoeMetric> {
    manifest: &'a VideoManifest,
    transport: T,
    /// Pristine copy of the transport, for [`NetEnv::reset`] (the transport
    /// owns all episode randomness, so cloning it replays the episode).
    pristine: T,
    qoe: Q,
    history: HistoryBuffers,
    buffer_s: f64,
    next_chunk: usize,
    last_quality: usize,
}

impl<'a, Q: QoeMetric> AbrEnv<'a, SimTransport<'a>, Q> {
    /// Builds a simulation-backed environment (Pensieve `env.py` semantics:
    /// random trace start offset and ±10 % delay noise, seeded).
    pub fn new_sim(manifest: &'a VideoManifest, trace: &'a Trace, qoe: Q, seed: u64) -> Self {
        Self::with_transport(manifest, SimTransport::new(trace, seed), qoe)
    }

    /// Builds a deterministic, noise-free simulation environment starting at
    /// the trace beginning (for tests and reproducible fixtures).
    pub fn new_sim_deterministic(manifest: &'a VideoManifest, trace: &'a Trace, qoe: Q) -> Self {
        Self::with_transport(manifest, SimTransport::deterministic(trace), qoe)
    }
}

impl<'a, Q: QoeMetric> AbrEnv<'a, EmuTransport<'a>, Q> {
    /// Builds an emulation-backed environment (HTTP/TCP dynamics; see
    /// [`crate::emulator`]).
    pub fn new_emu(manifest: &'a VideoManifest, trace: &'a Trace, qoe: Q, seed: u64) -> Self {
        Self::with_transport(manifest, EmuTransport::new(trace, seed), qoe)
    }
}

impl<'a, T: ChunkTransport, Q: QoeMetric> AbrEnv<'a, T, Q> {
    /// Builds an environment over an arbitrary transport.
    pub fn with_transport(manifest: &'a VideoManifest, transport: T, qoe: Q) -> Self {
        Self {
            manifest,
            pristine: transport.clone(),
            transport,
            qoe,
            history: HistoryBuffers::new(),
            buffer_s: 0.0,
            next_chunk: 0,
            last_quality: DEFAULT_QUALITY,
        }
    }

    /// Rewinds to the start of the episode (same trace offset, same noise
    /// stream).
    fn reset_episode(&mut self) {
        self.transport = self.pristine.clone();
        self.history = HistoryBuffers::new();
        self.buffer_s = 0.0;
        self.next_chunk = 0;
        self.last_quality = DEFAULT_QUALITY;
    }

    /// The manifest being streamed.
    pub fn manifest(&self) -> &VideoManifest {
        self.manifest
    }

    /// Observation for selecting the first chunk.
    pub fn initial_observation(&self) -> Observation {
        self.observation()
    }

    fn observation(&self) -> Observation {
        let next = self.next_chunk.min(self.manifest.n_chunks() - 1);
        Observation {
            throughput_mbps: self.history.throughput(),
            download_time_s: self.history.download_time(),
            buffer_history_s: self.history.buffer(),
            next_chunk_sizes_bytes: self.manifest.sizes_at(next).to_vec(),
            buffer_s: self.buffer_s,
            chunks_remaining: self.manifest.n_chunks() - self.next_chunk,
            total_chunks: self.manifest.n_chunks(),
            last_bitrate_kbps: self.manifest.bitrate_kbps(self.last_quality),
            ladder_kbps: self.manifest.ladder().levels_kbps().to_vec(),
        }
    }

    /// Writes the current observation as declared field values into a
    /// reusable buffer, in [`ABR_FIELDS`] order — the allocation-free twin
    /// of [`Observation::field_values`].
    fn write_obs(&self, out: &mut Vec<ObsValue>) {
        use crate::netenv::{prepare_obs, write_scalar, write_vector};
        let next = self.next_chunk.min(self.manifest.n_chunks() - 1);
        prepare_obs(out, ABR_FIELDS.len());
        write_vector(&mut out[0], self.history.throughput_iter());
        write_vector(&mut out[1], self.history.download_time_iter());
        write_vector(&mut out[2], self.history.buffer_iter());
        write_vector(&mut out[3], self.manifest.sizes_at(next).iter().copied());
        write_scalar(&mut out[4], self.buffer_s);
        write_scalar(
            &mut out[5],
            (self.manifest.n_chunks() - self.next_chunk) as f64,
        );
        write_scalar(&mut out[6], self.manifest.n_chunks() as f64);
        write_scalar(&mut out[7], self.manifest.bitrate_kbps(self.last_quality));
        write_scalar(
            &mut out[8],
            *self
                .manifest
                .ladder()
                .levels_kbps()
                .last()
                .expect("ladder is non-empty"),
        );
    }

    /// Player dynamics for one chunk: download, stall/sleep accounting,
    /// reward — everything [`AbrEnv::step`] does except building the next
    /// observation. Returns `(reward, rebuffer_s, delay_s, sleep_s, done)`.
    fn advance(&mut self, quality: usize) -> (f64, f64, f64, f64, bool) {
        assert!(
            self.next_chunk < self.manifest.n_chunks(),
            "episode already finished"
        );
        assert!(
            quality < self.manifest.n_levels(),
            "quality {quality} out of range"
        );

        let size = self.manifest.size_bytes(self.next_chunk, quality);
        let fetch = self.transport.fetch(size);

        // Player dynamics (Pensieve fixed_env.py):
        // the buffer drains while downloading; a dry buffer stalls playback.
        let rebuffer_s = (fetch.delay_s - self.buffer_s).max(0.0);
        self.buffer_s = (self.buffer_s - fetch.delay_s).max(0.0) + self.manifest.chunk_duration_s();

        // Sleep in 500 ms quanta while above the cap, advancing link time.
        let mut sleep_s = 0.0;
        if self.buffer_s > BUFFER_CAP_S {
            let excess = self.buffer_s - BUFFER_CAP_S;
            sleep_s = (excess / DRAIN_SLEEP_S).ceil() * DRAIN_SLEEP_S;
            self.buffer_s -= sleep_s;
            self.transport.advance_idle(sleep_s);
        }

        let bitrate = self.manifest.bitrate_kbps(quality);
        let prev_bitrate = self.manifest.bitrate_kbps(self.last_quality);
        let reward = self.qoe.chunk_reward(bitrate, prev_bitrate, rebuffer_s);

        self.history
            .push(fetch.throughput_mbps, fetch.delay_s, self.buffer_s);
        self.last_quality = quality;
        self.next_chunk += 1;
        let done = self.next_chunk >= self.manifest.n_chunks();
        (reward, rebuffer_s, fetch.delay_s, sleep_s, done)
    }

    /// Downloads the next chunk at `quality` and advances playback.
    ///
    /// # Panics
    /// Panics if called after the episode finished or with an out-of-range
    /// quality — both are policy-side bugs, not recoverable conditions.
    pub fn step(&mut self, quality: usize) -> StepResult {
        let (reward, rebuffer_s, delay_s, sleep_s, done) = self.advance(quality);
        StepResult {
            obs: self.observation(),
            reward,
            rebuffer_s,
            delay_s,
            sleep_s,
            done,
        }
    }
}

impl<T: ChunkTransport, Q: QoeMetric> NetEnv for AbrEnv<'_, T, Q> {
    fn observation_spec(&self) -> &'static [FieldSpec] {
        &ABR_FIELDS
    }

    fn action_space(&self) -> usize {
        self.manifest.n_levels()
    }

    fn reset(&mut self) -> Vec<ObsValue> {
        self.reset_episode();
        self.observation().field_values()
    }

    fn step(&mut self, action: usize) -> EnvStep {
        let r = AbrEnv::step(self, action);
        EnvStep {
            obs: r.obs.field_values(),
            reward: r.reward,
            done: r.done,
        }
    }

    fn reset_into(&mut self, obs: &mut Vec<ObsValue>) {
        self.reset_episode();
        self.write_obs(obs);
    }

    fn step_into(&mut self, action: usize, obs: &mut Vec<ObsValue>) -> StepOutcome {
        let (reward, _, _, _, done) = self.advance(action);
        self.write_obs(obs);
        StepOutcome { reward, done }
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.manifest.n_chunks() - self.next_chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qoe::QoeLin;
    use crate::video::{Ladder, VideoManifest};
    use nada_traces::Trace;

    fn fixture() -> (VideoManifest, Trace) {
        let m = VideoManifest::constant_bitrate(Ladder::broadband(), 48, 4.0);
        // 4.3 Mbps link: comfortably streams mid bitrates.
        let t = Trace::from_uniform("flat", 1.0, &[4.3; 4000]).unwrap();
        (m, t)
    }

    #[test]
    fn episode_runs_to_completion() {
        let (m, t) = fixture();
        let mut env = AbrEnv::new_sim_deterministic(&m, &t, QoeLin::default());
        let mut steps = 0;
        loop {
            let r = env.step(0);
            steps += 1;
            if r.done {
                break;
            }
        }
        assert_eq!(steps, 48);
    }

    #[test]
    fn buffer_grows_when_link_outpaces_bitrate() {
        let (m, t) = fixture();
        let mut env = AbrEnv::new_sim_deterministic(&m, &t, QoeLin::default());
        // 300 kbps chunks over a 4.3 Mbps link: downloads much faster than
        // playback, so the buffer builds.
        let mut last_buffer = 0.0;
        for _ in 0..5 {
            let r = env.step(0);
            last_buffer = r.obs.buffer_s;
        }
        assert!(last_buffer > 10.0, "buffer {last_buffer} should build up");
    }

    #[test]
    fn first_chunk_always_rebuffers() {
        // Buffer starts empty, so chunk 1 stalls for its whole download.
        let (m, t) = fixture();
        let mut env = AbrEnv::new_sim_deterministic(&m, &t, QoeLin::default());
        let r = env.step(0);
        assert!(r.rebuffer_s > 0.0);
        assert!((r.rebuffer_s - r.delay_s).abs() < 1e-9);
    }

    #[test]
    fn oversized_bitrate_stalls_playback() {
        let m = VideoManifest::constant_bitrate(Ladder::broadband(), 10, 4.0);
        // 1 Mbps link cannot sustain the 4.3 Mbps top level.
        let t = Trace::from_uniform("slow", 1.0, &[1.0; 4000]).unwrap();
        let mut env = AbrEnv::new_sim_deterministic(&m, &t, QoeLin::default());
        let mut total_rebuf = 0.0;
        for _ in 0..10 {
            total_rebuf += env.step(5).rebuffer_s;
        }
        assert!(total_rebuf > 50.0, "rebuf {total_rebuf}");
    }

    #[test]
    fn buffer_never_exceeds_cap_after_sleep() {
        let m = VideoManifest::constant_bitrate(Ladder::broadband(), 48, 4.0);
        let t = Trace::from_uniform("fast", 1.0, &[100.0; 4000]).unwrap();
        let mut env = AbrEnv::new_sim_deterministic(&m, &t, QoeLin::default());
        for _ in 0..48 {
            let r = env.step(0);
            assert!(
                r.obs.buffer_s <= BUFFER_CAP_S + 1e-9,
                "buffer {}",
                r.obs.buffer_s
            );
            if r.done {
                break;
            }
        }
    }

    #[test]
    fn sleep_time_is_quantized() {
        let m = VideoManifest::constant_bitrate(Ladder::broadband(), 48, 4.0);
        let t = Trace::from_uniform("fast", 1.0, &[100.0; 4000]).unwrap();
        let mut env = AbrEnv::new_sim_deterministic(&m, &t, QoeLin::default());
        for _ in 0..48 {
            let r = env.step(0);
            let q = r.sleep_s / DRAIN_SLEEP_S;
            assert!(
                (q - q.round()).abs() < 1e-9,
                "sleep {} not quantized",
                r.sleep_s
            );
            if r.done {
                break;
            }
        }
    }

    #[test]
    fn observation_histories_track_downloads() {
        let (m, t) = fixture();
        let mut env = AbrEnv::new_sim_deterministic(&m, &t, QoeLin::default());
        let r = env.step(2);
        let obs = r.obs;
        assert!(obs.throughput_mbps.last().copied().unwrap() > 0.0);
        assert!(obs.download_time_s.last().copied().unwrap() > 0.0);
        assert_eq!(obs.chunks_remaining, 47);
        assert_eq!(obs.last_bitrate_kbps, 1200.0);
    }

    #[test]
    fn netenv_reset_replays_the_episode() {
        let (m, t) = fixture();
        let mut env = AbrEnv::new_sim(&m, &t, QoeLin::default(), 21);
        let run = |env: &mut AbrEnv<'_, _, _>| {
            let obs0 = NetEnv::reset(env);
            let mut rewards = vec![];
            for q in 0..6 {
                rewards.push(NetEnv::step(env, q).reward);
            }
            (obs0, rewards)
        };
        let a = run(&mut env);
        let b = run(&mut env);
        assert_eq!(a, b, "reset must rewind trace offset and noise stream");
    }

    #[test]
    fn netenv_observation_matches_declared_spec() {
        use crate::netenv::spec_mismatch;
        let (m, t) = fixture();
        let mut env = AbrEnv::new_sim_deterministic(&m, &t, QoeLin::default());
        let obs = NetEnv::reset(&mut env);
        assert_eq!(spec_mismatch(&ABR_FIELDS, &obs), None);
        assert_eq!(NetEnv::action_space(&env), 6);
        let step = NetEnv::step(&mut env, 2);
        assert_eq!(spec_mismatch(&ABR_FIELDS, &step.obs), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_quality() {
        let (m, t) = fixture();
        let mut env = AbrEnv::new_sim_deterministic(&m, &t, QoeLin::default());
        let _ = env.step(99);
    }
}
