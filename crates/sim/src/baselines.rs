//! Classic hand-designed ABR policies.
//!
//! The paper's intro motivates NADA with the long line of human-designed ABR
//! heuristics; these four are the standard points of comparison and serve as
//! sanity baselines and example fodder in this reproduction:
//!
//! * [`BufferBased`] — BBA-0 (Netflix): map buffer occupancy linearly onto
//!   the ladder between a reservoir and a cushion;
//! * [`RateBased`] — pick the highest bitrate below an EMA of measured
//!   throughput;
//! * [`Bola`] — Lyapunov-style utility maximization on buffer levels;
//! * [`RobustMpc`] — model-predictive control over a short horizon with a
//!   conservative (harmonic-mean / max-error discounted) throughput
//!   predictor.

use crate::obs::Observation;

/// An ABR policy: picks the next chunk's quality level from an observation.
pub trait AbrPolicy {
    /// Returns a quality index in `0..obs.n_levels()`.
    fn select(&mut self, obs: &Observation) -> usize;

    /// Resets internal state between episodes.
    fn reset(&mut self) {}

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// BBA-0 buffer-based ABR (Huang et al., SIGCOMM 2014).
#[derive(Debug, Clone)]
pub struct BufferBased {
    /// Below this buffer level, stream the lowest quality.
    pub reservoir_s: f64,
    /// Above `reservoir + cushion`, stream the highest quality.
    pub cushion_s: f64,
}

impl Default for BufferBased {
    fn default() -> Self {
        Self {
            reservoir_s: 5.0,
            cushion_s: 30.0,
        }
    }
}

impl AbrPolicy for BufferBased {
    fn select(&mut self, obs: &Observation) -> usize {
        let n = obs.n_levels();
        if obs.buffer_s <= self.reservoir_s {
            return 0;
        }
        if obs.buffer_s >= self.reservoir_s + self.cushion_s {
            return n - 1;
        }
        let frac = (obs.buffer_s - self.reservoir_s) / self.cushion_s;
        ((frac * n as f64) as usize).min(n - 1)
    }

    fn name(&self) -> &'static str {
        "BufferBased"
    }
}

/// Rate-based ABR: exponentially weighted throughput estimate with a safety
/// factor, then the highest sustainable ladder rung.
#[derive(Debug, Clone)]
pub struct RateBased {
    /// EMA smoothing factor for new throughput samples, in `(0, 1]`.
    pub alpha: f64,
    /// Fraction of the estimate considered safe to spend.
    pub safety: f64,
    ema_mbps: Option<f64>,
}

impl Default for RateBased {
    fn default() -> Self {
        Self {
            alpha: 0.4,
            safety: 0.9,
            ema_mbps: None,
        }
    }
}

impl AbrPolicy for RateBased {
    fn select(&mut self, obs: &Observation) -> usize {
        if let Some(&last) = obs.throughput_mbps.last().filter(|&&t| t > 0.0) {
            self.ema_mbps = Some(match self.ema_mbps {
                Some(e) => (1.0 - self.alpha) * e + self.alpha * last,
                None => last,
            });
        }
        let budget_kbps = self.ema_mbps.unwrap_or(0.0) * 1000.0 * self.safety;
        highest_affordable(obs, budget_kbps)
    }

    fn reset(&mut self) {
        self.ema_mbps = None;
    }

    fn name(&self) -> &'static str {
        "RateBased"
    }
}

/// BOLA (Spiteri et al., INFOCOM 2016), simplified: maximize
/// `(V * utility(level) + V * gamma - buffer_chunks) / size(level)` where
/// utility is log-relative bitrate.
#[derive(Debug, Clone)]
pub struct Bola {
    /// Lyapunov trade-off parameter; larger favours quality over buffer.
    pub v: f64,
    /// Rebuffer-avoidance weight.
    pub gamma: f64,
}

impl Default for Bola {
    fn default() -> Self {
        Self {
            v: 0.93,
            gamma: 5.0,
        }
    }
}

impl AbrPolicy for Bola {
    fn select(&mut self, obs: &Observation) -> usize {
        let buffer_chunks = obs.buffer_s / 4.0; // chunk lengths are 4 s
        let min_kbps = obs.ladder_kbps[0];
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (i, &kbps) in obs.ladder_kbps.iter().enumerate() {
            let utility = (kbps / min_kbps).ln();
            let size = obs.next_chunk_sizes_bytes[i];
            let score = (self.v * (utility + self.gamma) - buffer_chunks) / size;
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "BOLA"
    }
}

/// RobustMPC (Yin et al., SIGCOMM 2015), exhaustive over a short horizon:
/// predicts throughput as the harmonic mean of the last five samples
/// discounted by the recent maximum prediction error, then enumerates all
/// quality sequences over the horizon maximizing total `QoE_lin`.
#[derive(Debug, Clone)]
pub struct RobustMpc {
    /// Lookahead horizon in chunks (5 in the MPC paper).
    pub horizon: usize,
    /// Rebuffer penalty used in the internal objective.
    pub rebuf_penalty: f64,
    past_errors: Vec<f64>,
    last_prediction_mbps: Option<f64>,
}

impl Default for RobustMpc {
    fn default() -> Self {
        Self {
            horizon: 5,
            rebuf_penalty: 4.3,
            past_errors: Vec::new(),
            last_prediction_mbps: None,
        }
    }
}

impl RobustMpc {
    fn predict_throughput_mbps(&mut self, obs: &Observation) -> f64 {
        let samples: Vec<f64> = obs
            .throughput_mbps
            .iter()
            .rev()
            .take(5)
            .filter(|&&t| t > 0.0)
            .copied()
            .collect();
        if samples.is_empty() {
            return obs.ladder_kbps[0] / 1000.0;
        }
        // Track prediction error for the robustness discount.
        if let (Some(pred), Some(&actual)) = (self.last_prediction_mbps, samples.first()) {
            let err = ((pred - actual) / actual).abs();
            self.past_errors.push(err);
            if self.past_errors.len() > 5 {
                self.past_errors.remove(0);
            }
        }
        let harmonic = samples.len() as f64 / samples.iter().map(|t| 1.0 / t).sum::<f64>();
        let max_err = self.past_errors.iter().copied().fold(0.0, f64::max);
        let robust = harmonic / (1.0 + max_err);
        self.last_prediction_mbps = Some(robust);
        robust
    }
}

impl AbrPolicy for RobustMpc {
    fn select(&mut self, obs: &Observation) -> usize {
        let n = obs.n_levels();
        let pred_mbps = self.predict_throughput_mbps(obs);
        let horizon = self.horizon.min(obs.chunks_remaining).max(1);
        let chunk_s = 4.0;

        // Exhaustive search over quality sequences (6^5 = 7776 worst case).
        let mut best_first = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        let mut seq = vec![0usize; horizon];
        loop {
            // Evaluate the sequence.
            let mut buffer = obs.buffer_s;
            let mut last_kbps = obs.last_bitrate_kbps;
            let mut score = 0.0;
            for (h, &q) in seq.iter().enumerate() {
                // Approximate future chunk sizes by nominal bitrate sizes;
                // the true size is only known for the immediate next chunk.
                let bytes = if h == 0 {
                    obs.next_chunk_sizes_bytes[q]
                } else {
                    obs.ladder_kbps[q] * 1000.0 / 8.0 * chunk_s
                };
                let dl = bytes * 8.0 / (pred_mbps * 1e6);
                let rebuf = (dl - buffer).max(0.0);
                buffer = (buffer - dl).max(0.0) + chunk_s;
                let q_mbps = obs.ladder_kbps[q] / 1000.0;
                score += q_mbps - self.rebuf_penalty * rebuf - (q_mbps - last_kbps / 1000.0).abs();
                last_kbps = obs.ladder_kbps[q];
            }
            if score > best_score {
                best_score = score;
                best_first = seq[0];
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == horizon {
                    return best_first;
                }
                seq[i] += 1;
                if seq[i] < n {
                    break;
                }
                seq[i] = 0;
                i += 1;
            }
        }
    }

    fn reset(&mut self) {
        self.past_errors.clear();
        self.last_prediction_mbps = None;
    }

    fn name(&self) -> &'static str {
        "RobustMPC"
    }
}

/// Always picks the same quality; useful as a degenerate baseline in tests.
#[derive(Debug, Clone, Copy)]
pub struct Constant(pub usize);

impl AbrPolicy for Constant {
    fn select(&mut self, obs: &Observation) -> usize {
        self.0.min(obs.n_levels() - 1)
    }

    fn name(&self) -> &'static str {
        "Constant"
    }
}

fn highest_affordable(obs: &Observation, budget_kbps: f64) -> usize {
    let mut pick = 0usize;
    for (i, &kbps) in obs.ladder_kbps.iter().enumerate() {
        if kbps <= budget_kbps {
            pick = i;
        }
    }
    pick
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::HISTORY_LEN;

    fn obs_with(buffer_s: f64, throughput_mbps: f64) -> Observation {
        let ladder = vec![300.0, 750.0, 1200.0, 1850.0, 2850.0, 4300.0];
        Observation {
            throughput_mbps: vec![throughput_mbps; HISTORY_LEN],
            download_time_s: vec![1.0; HISTORY_LEN],
            buffer_history_s: vec![buffer_s; HISTORY_LEN],
            next_chunk_sizes_bytes: ladder.iter().map(|k| k * 500.0).collect(),
            buffer_s,
            chunks_remaining: 20,
            total_chunks: 48,
            last_bitrate_kbps: 750.0,
            ladder_kbps: ladder,
        }
    }

    #[test]
    fn buffer_based_maps_buffer_to_ladder() {
        let mut p = BufferBased::default();
        assert_eq!(p.select(&obs_with(1.0, 5.0)), 0);
        assert_eq!(p.select(&obs_with(50.0, 5.0)), 5);
        let mid = p.select(&obs_with(20.0, 5.0));
        assert!(mid > 0 && mid < 5);
    }

    #[test]
    fn rate_based_tracks_throughput() {
        let mut p = RateBased::default();
        // 5 Mbps: affords 4300 kbps with 0.9 safety (4500 > 4300).
        assert_eq!(p.select(&obs_with(10.0, 5.0)), 5);
        p.reset();
        // 1 Mbps: affords 750 kbps (900 budget).
        assert_eq!(p.select(&obs_with(10.0, 1.0)), 1);
    }

    #[test]
    fn rate_based_ignores_zero_padded_history() {
        let mut p = RateBased::default();
        let mut obs = obs_with(10.0, 0.0);
        obs.throughput_mbps = vec![0.0; HISTORY_LEN];
        assert_eq!(p.select(&obs), 0, "no data must fall back to lowest");
    }

    #[test]
    fn bola_is_monotone_in_buffer() {
        let mut p = Bola::default();
        let low = p.select(&obs_with(2.0, 3.0));
        let high = p.select(&obs_with(55.0, 3.0));
        assert!(high >= low);
    }

    #[test]
    fn mpc_picks_low_when_starved_and_high_when_rich() {
        let mut p = RobustMpc::default();
        let starved = p.select(&obs_with(0.5, 0.4));
        assert!(starved <= 1, "starved pick {starved}");
        p.reset();
        let rich = p.select(&obs_with(30.0, 50.0));
        assert!(rich >= 4, "rich pick {rich}");
    }

    #[test]
    fn constant_clamps_to_ladder() {
        let mut p = Constant(99);
        assert_eq!(p.select(&obs_with(1.0, 1.0)), 5);
    }
}
