//! Chunkless congestion control over traced links.
//!
//! The second workload of this reproduction, mirroring the authors'
//! follow-up (*Congestion Control System Optimization with Large Language
//! Models*, arXiv:2508.16074): instead of picking chunk bitrates, the agent
//! adjusts a congestion window over the same trace datasets. Each decision
//! interval the policy picks a CWND action; a fluid bottleneck model
//! (window-paced arrivals, a finite queue, tail drop) yields delivered
//! throughput, queuing delay and loss; the reward is throughput minus a
//! latency-inflation penalty minus a loss penalty.
//!
//! The environment is deliberately *chunkless*: episodes are a fixed number
//! of ticks, and the observation is a history window of transport
//! measurements — raw (Mbps, milliseconds, packets), so the §2.2
//! normalization check stays as meaningful here as for ABR byte counts.

use crate::netenv::{EnvStep, FieldSpec, NetEnv, ObsValue, StepOutcome};
use nada_traces::{Trace, TraceCursor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Decision interval, seconds.
pub const TICK_S: f64 = 0.1;
/// Bottleneck packet size, bytes (Mahimahi MTU payload).
pub const CC_PKT_BYTES: f64 = 1500.0;
/// Propagation round-trip time, seconds.
pub const BASE_RTT_S: f64 = 0.04;
/// Bottleneck queue capacity, packets (tail drop beyond).
pub const QUEUE_CAP_PKTS: f64 = 500.0;
/// Smallest congestion window, packets.
pub const MIN_CWND_PKTS: f64 = 2.0;
/// Largest congestion window, packets.
pub const MAX_CWND_PKTS: f64 = 2000.0;
/// Initial congestion window, packets (RFC 6928).
pub const INITIAL_CWND_PKTS: f64 = 10.0;
/// Cap on the modelled RTT during outages, seconds.
pub const MAX_RTT_S: f64 = 1.0;
/// History window length (matches the ABR workload's `S_LEN`).
pub const CC_HISTORY_LEN: usize = 8;
/// EWMA weight of the newest RTT sample in the smoothed RTT.
pub const SRTT_ALPHA: f64 = 0.5;

/// One discrete CWND adjustment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CwndAction {
    /// Multiply the window by a factor.
    Scale(f64),
    /// Add packets to the window (may be negative).
    Add(f64),
}

/// The action space: backoffs, additive tweaks, and probes.
pub const CC_ACTIONS: [CwndAction; 7] = [
    CwndAction::Scale(0.5),
    CwndAction::Scale(0.9),
    CwndAction::Add(-10.0),
    CwndAction::Add(0.0),
    CwndAction::Add(10.0),
    CwndAction::Scale(1.1),
    CwndAction::Scale(2.0),
];

/// The declared observation fields, in binding order. Raw magnitudes on
/// purpose: RTTs in milliseconds and windows in packets exceed the T = 100
/// normalization threshold, exactly like ABR's byte counts.
pub const CC_FIELDS: [FieldSpec; 7] = [
    FieldSpec {
        name: "throughput_history_mbps",
        dim: Some(CC_HISTORY_LEN),
        lo: 0.0,
        hi: 150.0,
        doc: "delivered throughput over each of the last 8 intervals, Mbps",
    },
    FieldSpec {
        name: "rtt_history_ms",
        dim: Some(CC_HISTORY_LEN),
        lo: 0.0,
        hi: 1000.0,
        doc: "smoothed round-trip time after each of the last 8 intervals, milliseconds",
    },
    FieldSpec {
        name: "loss_history",
        dim: Some(CC_HISTORY_LEN),
        lo: 0.0,
        hi: 1.0,
        doc: "fraction of offered packets dropped in each of the last 8 intervals",
    },
    FieldSpec {
        name: "cwnd_pkts",
        dim: None,
        lo: MIN_CWND_PKTS,
        hi: MAX_CWND_PKTS,
        doc: "current congestion window, packets",
    },
    FieldSpec {
        name: "min_rtt_ms",
        dim: None,
        lo: 1.0,
        hi: 200.0,
        doc: "minimum round-trip time observed this episode, milliseconds",
    },
    FieldSpec {
        name: "ticks_remaining",
        dim: None,
        lo: 0.0,
        hi: 2400.0,
        doc: "decision intervals left in the episode",
    },
    FieldSpec {
        name: "total_ticks",
        dim: None,
        lo: 60.0,
        hi: 2400.0,
        doc: "total decision intervals in the episode",
    },
];

/// The congestion-control reward: `throughput − a·latency_inflation −
/// b·loss`, the shape used by arXiv:2508.16074 (and Orca/Aurora before it).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CcReward {
    /// Penalty per unit of latency inflation (`rtt/base_rtt − 1`), in Mbps
    /// equivalents.
    pub latency_penalty: f64,
    /// Penalty per unit loss fraction, in Mbps equivalents.
    pub loss_penalty: f64,
}

impl Default for CcReward {
    fn default() -> Self {
        Self {
            latency_penalty: 1.0,
            loss_penalty: 10.0,
        }
    }
}

impl CcReward {
    /// Reward for one tick.
    pub fn tick_reward(&self, throughput_mbps: f64, rtt_s: f64, loss_frac: f64) -> f64 {
        let inflation = (rtt_s / BASE_RTT_S - 1.0).max(0.0);
        throughput_mbps - self.latency_penalty * inflation - self.loss_penalty * loss_frac
    }
}

/// Result of one congestion-control tick (typed mirror of [`EnvStep`], for
/// baselines and diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct CcTick {
    /// Delivered throughput this tick, Mbps.
    pub throughput_mbps: f64,
    /// Round-trip time at the end of the tick, seconds.
    pub rtt_s: f64,
    /// Fraction of offered packets dropped this tick.
    pub loss_frac: f64,
    /// Reward earned.
    pub reward: f64,
    /// Congestion window after the action, packets.
    pub cwnd_pkts: f64,
    /// True when the episode finished.
    pub done: bool,
}

/// The congestion-control environment: a CWND policy over one traced link.
#[derive(Debug, Clone)]
pub struct CcEnv<'a> {
    trace: &'a Trace,
    cursor: TraceCursor<'a>,
    rng: StdRng,
    reward: CcReward,
    seed: u64,
    noise: bool,
    total_ticks: usize,
    // Mutable episode state.
    tick: usize,
    cwnd_pkts: f64,
    queue_pkts: f64,
    srtt_s: f64,
    min_rtt_s: f64,
    throughput_hist: VecDeque<f64>,
    rtt_hist: VecDeque<f64>,
    loss_hist: VecDeque<f64>,
}

impl<'a> CcEnv<'a> {
    /// Builds a training environment: seed-derived random trace offset and
    /// ±10 % capacity noise (`env.py` parity with the ABR workload).
    pub fn new(trace: &'a Trace, total_ticks: usize, reward: CcReward, seed: u64) -> Self {
        Self::build(trace, total_ticks, reward, seed, true)
    }

    /// Builds a deterministic, noise-free environment starting at the trace
    /// beginning (checkpoint evaluation and tests).
    pub fn deterministic(trace: &'a Trace, total_ticks: usize, reward: CcReward) -> Self {
        Self::build(trace, total_ticks, reward, 0, false)
    }

    fn build(
        trace: &'a Trace,
        total_ticks: usize,
        reward: CcReward,
        seed: u64,
        noise: bool,
    ) -> Self {
        assert!(total_ticks > 0, "episodes need at least one tick");
        let mut env = Self {
            trace,
            cursor: TraceCursor::new(trace),
            rng: StdRng::seed_from_u64(0),
            reward,
            seed,
            noise,
            total_ticks,
            tick: 0,
            cwnd_pkts: INITIAL_CWND_PKTS,
            queue_pkts: 0.0,
            srtt_s: BASE_RTT_S,
            min_rtt_s: BASE_RTT_S,
            throughput_hist: VecDeque::new(),
            rtt_hist: VecDeque::new(),
            loss_hist: VecDeque::new(),
        };
        env.reset_episode();
        env
    }

    fn reset_episode(&mut self) {
        self.cursor = if self.noise {
            TraceCursor::with_random_start(self.trace, self.seed)
        } else {
            TraceCursor::new(self.trace)
        };
        self.rng = StdRng::seed_from_u64(self.seed ^ 0xCC00_0000_0000_0015);
        self.tick = 0;
        self.cwnd_pkts = INITIAL_CWND_PKTS;
        self.queue_pkts = 0.0;
        self.srtt_s = BASE_RTT_S;
        self.min_rtt_s = BASE_RTT_S;
        let zeros = || VecDeque::from(vec![0.0; CC_HISTORY_LEN]);
        self.throughput_hist = zeros();
        self.rtt_hist = zeros();
        self.loss_hist = zeros();
    }

    /// The current congestion window, packets.
    pub fn cwnd_pkts(&self) -> f64 {
        self.cwnd_pkts
    }

    /// Episode length in ticks.
    pub fn total_ticks(&self) -> usize {
        self.total_ticks
    }

    fn observation(&self) -> Vec<ObsValue> {
        vec![
            ObsValue::Vector(self.throughput_hist.iter().copied().collect()),
            ObsValue::Vector(self.rtt_hist.iter().copied().collect()),
            ObsValue::Vector(self.loss_hist.iter().copied().collect()),
            ObsValue::Scalar(self.cwnd_pkts),
            ObsValue::Scalar(self.min_rtt_s * 1000.0),
            ObsValue::Scalar((self.total_ticks - self.tick) as f64),
            ObsValue::Scalar(self.total_ticks as f64),
        ]
    }

    /// Allocation-free twin of [`CcEnv::observation`]: writes the same
    /// values into a reusable buffer, in [`CC_FIELDS`] order.
    fn write_obs(&self, out: &mut Vec<ObsValue>) {
        use crate::netenv::{prepare_obs, write_scalar, write_vector};
        prepare_obs(out, CC_FIELDS.len());
        write_vector(&mut out[0], self.throughput_hist.iter().copied());
        write_vector(&mut out[1], self.rtt_hist.iter().copied());
        write_vector(&mut out[2], self.loss_hist.iter().copied());
        write_scalar(&mut out[3], self.cwnd_pkts);
        write_scalar(&mut out[4], self.min_rtt_s * 1000.0);
        write_scalar(&mut out[5], (self.total_ticks - self.tick) as f64);
        write_scalar(&mut out[6], self.total_ticks as f64);
    }

    /// Applies `action` and simulates one tick, returning the typed result.
    ///
    /// # Panics
    /// Panics after the episode finished or on an out-of-range action.
    pub fn tick(&mut self, action: usize) -> CcTick {
        assert!(self.tick < self.total_ticks, "episode already finished");
        assert!(action < CC_ACTIONS.len(), "action {action} out of range");

        self.cwnd_pkts = match CC_ACTIONS[action] {
            CwndAction::Scale(f) => self.cwnd_pkts * f,
            CwndAction::Add(d) => self.cwnd_pkts + d,
        }
        .clamp(MIN_CWND_PKTS, MAX_CWND_PKTS);

        // Link capacity over this tick (±10 % noise in training mode).
        let noise = if self.noise {
            self.rng.gen_range(0.9..1.1)
        } else {
            1.0
        };
        let bw_mbps = self.cursor.current_bandwidth_mbps() * noise;
        self.cursor.advance_time(TICK_S);
        let cap_rate_pps = bw_mbps * 1e6 / (8.0 * CC_PKT_BYTES);
        let cap_pkts = cap_rate_pps * TICK_S;

        // Window-paced arrivals into a finite tail-drop queue. The sender
        // is genuinely window-limited: it can never have more than `cwnd`
        // packets un-ACKed, so injections are capped by the window room
        // (packets served within the tick are ACKed — the tick is longer
        // than the base RTT — and free window as they go). Steady state
        // lands on Little's law: backlog ≈ cwnd − BDP.
        let paced = self.cwnd_pkts * TICK_S / self.srtt_s.max(BASE_RTT_S);
        let ack_estimate = (self.queue_pkts + paced).min(cap_pkts);
        let window_room = (self.cwnd_pkts - self.queue_pkts + ack_estimate).max(0.0);
        let offered = paced.min(window_room);
        self.queue_pkts += offered;
        let served = self.queue_pkts.min(cap_pkts);
        self.queue_pkts -= served;
        let dropped = (self.queue_pkts - QUEUE_CAP_PKTS).max(0.0);
        self.queue_pkts = self.queue_pkts.min(QUEUE_CAP_PKTS);
        let loss_frac = if offered > 0.0 {
            (dropped / offered).min(1.0)
        } else {
            0.0
        };

        // Queuing delay on top of the propagation RTT, capped for outages.
        let queue_delay = if cap_rate_pps > 0.0 {
            self.queue_pkts / cap_rate_pps
        } else {
            MAX_RTT_S
        };
        let rtt_s = (BASE_RTT_S + queue_delay).min(MAX_RTT_S);
        // EWMA smoothing, as the observation spec promises ("smoothed
        // round-trip time"); also keeps the pacing divisor from reacting
        // fully to single-tick spikes.
        self.srtt_s = (1.0 - SRTT_ALPHA) * self.srtt_s + SRTT_ALPHA * rtt_s;
        self.min_rtt_s = self.min_rtt_s.min(self.srtt_s);

        let throughput_mbps = served * CC_PKT_BYTES * 8.0 / TICK_S / 1e6;
        let reward = self.reward.tick_reward(throughput_mbps, rtt_s, loss_frac);

        push_window(&mut self.throughput_hist, throughput_mbps);
        push_window(&mut self.rtt_hist, self.srtt_s * 1000.0);
        push_window(&mut self.loss_hist, loss_frac);
        self.tick += 1;

        CcTick {
            throughput_mbps,
            rtt_s,
            loss_frac,
            reward,
            cwnd_pkts: self.cwnd_pkts,
            done: self.tick >= self.total_ticks,
        }
    }
}

fn push_window(q: &mut VecDeque<f64>, v: f64) {
    q.pop_front();
    q.push_back(v);
    debug_assert_eq!(q.len(), CC_HISTORY_LEN);
}

impl NetEnv for CcEnv<'_> {
    fn observation_spec(&self) -> &'static [FieldSpec] {
        &CC_FIELDS
    }

    fn action_space(&self) -> usize {
        CC_ACTIONS.len()
    }

    fn reset(&mut self) -> Vec<ObsValue> {
        self.reset_episode();
        self.observation()
    }

    fn step(&mut self, action: usize) -> EnvStep {
        let t = self.tick(action);
        EnvStep {
            obs: self.observation(),
            reward: t.reward,
            done: t.done,
        }
    }

    fn reset_into(&mut self, obs: &mut Vec<ObsValue>) {
        self.reset_episode();
        self.write_obs(obs);
    }

    fn step_into(&mut self, action: usize, obs: &mut Vec<ObsValue>) -> StepOutcome {
        let t = self.tick(action);
        self.write_obs(obs);
        StepOutcome {
            reward: t.reward,
            done: t.done,
        }
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.total_ticks - self.tick)
    }
}

/// A congestion-control policy over declared observations.
pub trait CcPolicy {
    /// Picks an action index in `0..CC_ACTIONS.len()`.
    fn select(&mut self, obs: &[ObsValue]) -> usize;

    /// Resets internal state between episodes.
    fn reset(&mut self) {}

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// A Cubic-flavoured baseline: multiplicative backoff on loss, gentler
/// backoff on delay inflation, fast (multiplicative) recovery below the
/// last known saturation point and additive probing above it. Projected
/// onto the discrete [`CC_ACTIONS`] space, so the concave/convex cubic
/// curve becomes a two-regime approximation.
#[derive(Debug, Clone)]
pub struct CubicLike {
    /// Window at the last congestion event, packets.
    w_max: f64,
    /// RTT inflation factor treated as congestion (Vegas-style guard).
    pub delay_threshold: f64,
}

impl Default for CubicLike {
    fn default() -> Self {
        Self {
            w_max: MAX_CWND_PKTS,
            delay_threshold: 2.0,
        }
    }
}

impl CcPolicy for CubicLike {
    fn select(&mut self, obs: &[ObsValue]) -> usize {
        let loss = *crate::netenv::field(&CC_FIELDS, obs, "loss_history")
            .as_vector()
            .last()
            .expect("history is non-empty");
        let rtt_ms = *crate::netenv::field(&CC_FIELDS, obs, "rtt_history_ms")
            .as_vector()
            .last()
            .expect("history is non-empty");
        let min_rtt_ms = crate::netenv::field(&CC_FIELDS, obs, "min_rtt_ms").as_scalar();
        let cwnd = crate::netenv::field(&CC_FIELDS, obs, "cwnd_pkts").as_scalar();

        if loss > 0.05 {
            self.w_max = cwnd;
            return 0; // ×0.5: heavy loss, hard backoff
        }
        if min_rtt_ms > 0.0 && rtt_ms > 2.0 * self.delay_threshold * min_rtt_ms {
            // The queue is far beyond the operating point (e.g. the initial
            // window overloading a low-BDP link); drain it fast instead of
            // nibbling ×0.9 per tick.
            self.w_max = self.w_max.min(cwnd.max(MIN_CWND_PKTS));
            return 0; // ×0.5: severe delay inflation
        }
        if loss > 0.0 || (min_rtt_ms > 0.0 && rtt_ms > self.delay_threshold * min_rtt_ms) {
            self.w_max = self.w_max.min(cwnd.max(MIN_CWND_PKTS));
            return 1; // ×0.9: light congestion signal
        }
        if cwnd < 0.9 * self.w_max {
            5 // ×1.1: multiplicative recovery toward the last saturation point
        } else {
            4 // +10: additive probing beyond it
        }
    }

    fn reset(&mut self) {
        self.w_max = MAX_CWND_PKTS;
    }

    fn name(&self) -> &'static str {
        "CubicLike"
    }
}

/// Constant-window reference policy (holds whatever the window is).
#[derive(Debug, Clone, Default)]
pub struct HoldCwnd;

impl CcPolicy for HoldCwnd {
    fn select(&mut self, _obs: &[ObsValue]) -> usize {
        3
    }

    fn name(&self) -> &'static str {
        "HoldCwnd"
    }
}

/// Runs `policy` through a whole episode, returning the mean per-tick
/// reward.
pub fn run_cc_episode<P: CcPolicy>(env: &mut CcEnv<'_>, policy: &mut P) -> f64 {
    policy.reset();
    let mut obs = env.reset();
    let mut total = 0.0;
    let mut ticks = 0usize;
    loop {
        let action = policy.select(&obs);
        let step = env.step(action);
        total += step.reward;
        ticks += 1;
        obs = step.obs;
        if step.done {
            return total / ticks as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netenv::spec_mismatch;

    fn flat(mbps: f64) -> Trace {
        Trace::from_uniform("flat", 1.0, &[mbps; 600]).unwrap()
    }

    #[test]
    fn episode_runs_exactly_total_ticks() {
        let t = flat(10.0);
        let mut env = CcEnv::deterministic(&t, 50, CcReward::default());
        let mut steps = 0;
        env.reset();
        loop {
            let s = env.step(3);
            steps += 1;
            if s.done {
                break;
            }
        }
        assert_eq!(steps, 50);
    }

    #[test]
    fn observations_match_spec_at_every_step_including_terminal() {
        let t = flat(5.0);
        let mut env = CcEnv::new(&t, 30, CcReward::default(), 9);
        let obs0 = env.reset();
        assert_eq!(spec_mismatch(&CC_FIELDS, &obs0), None);
        loop {
            let s = env.step(5);
            assert_eq!(spec_mismatch(&CC_FIELDS, &s.obs), None);
            if s.done {
                break;
            }
        }
    }

    #[test]
    fn cwnd_stays_within_declared_bounds() {
        let t = flat(2.0);
        let mut env = CcEnv::deterministic(&t, 200, CcReward::default());
        env.reset();
        // Slam the window both ways; the clamp must hold.
        for i in 0..200 {
            let action = if i % 10 < 8 { 6 } else { 0 }; // mostly ×2, some ×0.5
            let s = env.tick(action);
            assert!(s.cwnd_pkts >= MIN_CWND_PKTS && s.cwnd_pkts <= MAX_CWND_PKTS);
            if s.done {
                break;
            }
        }
    }

    #[test]
    fn throughput_is_capacity_bounded() {
        let t = flat(8.0);
        let mut env = CcEnv::deterministic(&t, 100, CcReward::default());
        env.reset();
        for _ in 0..100 {
            let s = env.tick(6); // always double: saturate the link
            assert!(
                s.throughput_mbps <= 8.0 + 1e-9,
                "served {} above link rate",
                s.throughput_mbps
            );
        }
    }

    #[test]
    fn overdriving_the_link_inflates_rtt_then_drops() {
        let t = flat(4.0);
        let mut env = CcEnv::deterministic(&t, 300, CcReward::default());
        env.reset();
        let mut saw_inflation = false;
        let mut saw_loss = false;
        for _ in 0..300 {
            let s = env.tick(6);
            saw_inflation |= s.rtt_s > 2.0 * BASE_RTT_S;
            saw_loss |= s.loss_frac > 0.0;
        }
        assert!(saw_inflation, "queue never built");
        assert!(saw_loss, "queue never overflowed");
    }

    #[test]
    fn rtt_is_bounded_and_above_base() {
        let t = Trace::from_uniform("outage", 1.0, &[0.0, 6.0].repeat(100)).unwrap();
        let mut env = CcEnv::deterministic(&t, 200, CcReward::default());
        env.reset();
        for _ in 0..200 {
            let s = env.tick(4);
            assert!(s.rtt_s >= BASE_RTT_S - 1e-12);
            assert!(s.rtt_s <= MAX_RTT_S + 1e-12);
        }
    }

    #[test]
    fn reset_replays_the_same_episode_for_a_seed() {
        let t = flat(6.0);
        let mut env = CcEnv::new(&t, 40, CcReward::default(), 77);
        let run = |env: &mut CcEnv<'_>| {
            let mut rewards = Vec::new();
            env.reset();
            for i in 0..40 {
                rewards.push(env.step(i % CC_ACTIONS.len()).reward);
            }
            rewards
        };
        let a = run(&mut env);
        let b = run(&mut env);
        assert_eq!(a, b, "reset must replay the episode bit-for-bit");
    }

    #[test]
    fn good_control_beats_blasting_on_a_constrained_link() {
        let t = flat(3.0);
        let mut env = CcEnv::deterministic(&t, 300, CcReward::default());
        let cubic = run_cc_episode(&mut env, &mut CubicLike::default());
        let mut env2 = CcEnv::deterministic(&t, 300, CcReward::default());
        let mut blast = AlwaysDouble;
        let blasting = run_cc_episode(&mut env2, &mut blast);
        assert!(
            cubic > blasting,
            "cubic-like {cubic} should beat window-blasting {blasting}"
        );
    }

    #[test]
    fn cubic_like_tracks_available_bandwidth() {
        // On a clean 10 Mbps link the baseline should deliver most of it.
        let t = flat(10.0);
        let mut env = CcEnv::deterministic(&t, 400, CcReward::default());
        let score = run_cc_episode(&mut env, &mut CubicLike::default());
        assert!(
            score > 5.0,
            "cubic-like reward {score} too low on a clean link"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_action() {
        let t = flat(5.0);
        let mut env = CcEnv::deterministic(&t, 10, CcReward::default());
        env.reset();
        let _ = env.step(99);
    }

    struct AlwaysDouble;

    impl CcPolicy for AlwaysDouble {
        fn select(&mut self, _obs: &[ObsValue]) -> usize {
            6
        }

        fn name(&self) -> &'static str {
            "AlwaysDouble"
        }
    }
}
