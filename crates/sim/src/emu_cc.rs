//! Packet-level congestion-control emulator.
//!
//! [`crate::cc::CcEnv`] is a *fluid* model: arrivals, service and ACKs are
//! real-valued rates settled once per 100 ms tick, with an optimistic
//! within-tick ACK estimate. The paper's emulation methodology (Table 4)
//! validates designs in a finer-grained world; [`EmuCcEnv`] is that world
//! for the CC workload, exactly as [`crate::emulator::EmuTransport`] is for
//! ABR. It reproduces the *reasons* packet-level scores diverge from the
//! fluid simulation:
//!
//! * **ACK clocking**: the sender may only inject at ACK-round boundaries,
//!   and a round lasts one (jittered) RTT *plus the current queue delay* —
//!   a deep queue slows the clock, so window turnover genuinely takes an
//!   RTT instead of the fluid model's within-tick ACK estimate;
//! * **whole packets**: injections and link service happen in integer
//!   packets (fractional link capacity is carried as credit while the
//!   queue is backlogged and forfeited when it drains);
//! * **RTT jitter**: each round's RTT is perturbed (Box–Muller), and the
//!   jitter inflates the latency penalty asymmetrically — `max(rtt/base −
//!   1, 0)` taxes the slow rounds without refunding the fast ones;
//! * **handshake**: the first round of every episode is connection setup —
//!   one RTT in which nothing is delivered.
//!
//! The observation schema, action space and reward are identical to
//! [`crate::cc::CcEnv`] ([`CC_FIELDS`]/[`CC_ACTIONS`]/[`CcReward`]), so any
//! policy trained in the fluid simulator runs here unchanged. The result,
//! as in the paper, is lower absolute reward with preserved design
//! rankings.

use crate::cc::{
    CcReward, CcTick, BASE_RTT_S, CC_ACTIONS, CC_FIELDS, CC_HISTORY_LEN, CC_PKT_BYTES,
    INITIAL_CWND_PKTS, MAX_CWND_PKTS, MAX_RTT_S, MIN_CWND_PKTS, QUEUE_CAP_PKTS, SRTT_ALPHA, TICK_S,
};
use crate::netenv::{EnvStep, FieldSpec, NetEnv, ObsValue, StepOutcome};
use nada_traces::{Trace, TraceCursor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Standard deviation of per-round RTT jitter, seconds.
pub const EMU_RTT_JITTER_S: f64 = 0.004;

/// The packet-level CC environment: same contract as [`crate::cc::CcEnv`],
/// finer transport underneath.
#[derive(Debug, Clone)]
pub struct EmuCcEnv<'a> {
    trace: &'a Trace,
    cursor: TraceCursor<'a>,
    rng: StdRng,
    reward: CcReward,
    seed: u64,
    jitter_s: f64,
    random_start: bool,
    total_ticks: usize,
    // Mutable episode state.
    tick: usize,
    cwnd_pkts: f64,
    /// Whole packets waiting at the bottleneck.
    queue_pkts: u32,
    /// Un-ACKed packets: queued, traversing, or with an ACK in flight.
    inflight_pkts: u32,
    /// Packets served in the current ACK round; their ACKs free window at
    /// the next round boundary.
    ack_pending_pkts: u32,
    /// Time left in the current ACK round, seconds.
    round_left_s: f64,
    /// Fractional link service carried between slices while backlogged.
    serve_credit: f64,
    /// The most recent round's full length (jitter + queue delay), the
    /// RTT packets actually experienced.
    last_rtt_s: f64,
    srtt_s: f64,
    min_rtt_s: f64,
    throughput_hist: VecDeque<f64>,
    rtt_hist: VecDeque<f64>,
    loss_hist: VecDeque<f64>,
}

impl<'a> EmuCcEnv<'a> {
    /// Builds a jittered emulation episode starting at a seed-derived
    /// random trace offset (the Table 4 evaluation configuration,
    /// mirroring [`crate::emulator::EmuTransport::new`]).
    pub fn new(trace: &'a Trace, total_ticks: usize, reward: CcReward, seed: u64) -> Self {
        Self::build(trace, total_ticks, reward, seed, EMU_RTT_JITTER_S, true)
    }

    /// Builds a jitter-free episode starting at the trace beginning
    /// (tests and diagnostics).
    pub fn deterministic(trace: &'a Trace, total_ticks: usize, reward: CcReward) -> Self {
        Self::build(trace, total_ticks, reward, 0, 0.0, false)
    }

    fn build(
        trace: &'a Trace,
        total_ticks: usize,
        reward: CcReward,
        seed: u64,
        jitter_s: f64,
        random_start: bool,
    ) -> Self {
        assert!(total_ticks > 0, "episodes need at least one tick");
        let mut env = Self {
            trace,
            cursor: TraceCursor::new(trace),
            rng: StdRng::seed_from_u64(0),
            reward,
            seed,
            jitter_s,
            random_start,
            total_ticks,
            tick: 0,
            cwnd_pkts: INITIAL_CWND_PKTS,
            queue_pkts: 0,
            inflight_pkts: 0,
            ack_pending_pkts: 0,
            round_left_s: 0.0,
            serve_credit: 0.0,
            last_rtt_s: BASE_RTT_S,
            srtt_s: BASE_RTT_S,
            min_rtt_s: BASE_RTT_S,
            throughput_hist: VecDeque::new(),
            rtt_hist: VecDeque::new(),
            loss_hist: VecDeque::new(),
        };
        env.reset_episode();
        env
    }

    fn reset_episode(&mut self) {
        self.cursor = if self.random_start {
            TraceCursor::with_random_start(self.trace, self.seed)
        } else {
            TraceCursor::new(self.trace)
        };
        self.rng = StdRng::seed_from_u64(self.seed ^ 0xECC1_0000_0000_0019);
        self.tick = 0;
        self.cwnd_pkts = INITIAL_CWND_PKTS;
        self.queue_pkts = 0;
        self.inflight_pkts = 0;
        self.ack_pending_pkts = 0;
        // Connection setup: the first round delivers nothing (the
        // handshake occupies it), so the episode starts one RTT behind
        // the fluid model.
        self.round_left_s = self.jittered_rtt();
        self.serve_credit = 0.0;
        self.last_rtt_s = BASE_RTT_S;
        self.srtt_s = BASE_RTT_S;
        self.min_rtt_s = BASE_RTT_S;
        let zeros = || VecDeque::from(vec![0.0; CC_HISTORY_LEN]);
        self.throughput_hist = zeros();
        self.rtt_hist = zeros();
        self.loss_hist = zeros();
    }

    /// The current congestion window, packets.
    pub fn cwnd_pkts(&self) -> f64 {
        self.cwnd_pkts
    }

    /// Episode length in ticks.
    pub fn total_ticks(&self) -> usize {
        self.total_ticks
    }

    fn jittered_rtt(&mut self) -> f64 {
        if self.jitter_s == 0.0 {
            return BASE_RTT_S;
        }
        // Box–Muller; clamp so jitter never makes the RTT non-positive.
        let u1: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.gen();
        let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (BASE_RTT_S + g * self.jitter_s).max(BASE_RTT_S * 0.25)
    }

    fn observation(&self) -> Vec<ObsValue> {
        vec![
            ObsValue::Vector(self.throughput_hist.iter().copied().collect()),
            ObsValue::Vector(self.rtt_hist.iter().copied().collect()),
            ObsValue::Vector(self.loss_hist.iter().copied().collect()),
            ObsValue::Scalar(self.cwnd_pkts),
            ObsValue::Scalar(self.min_rtt_s * 1000.0),
            ObsValue::Scalar((self.total_ticks - self.tick) as f64),
            ObsValue::Scalar(self.total_ticks as f64),
        ]
    }

    /// Allocation-free twin of [`EmuCcEnv::observation`], in
    /// [`CC_FIELDS`] order.
    fn write_obs(&self, out: &mut Vec<ObsValue>) {
        use crate::netenv::{prepare_obs, write_scalar, write_vector};
        prepare_obs(out, CC_FIELDS.len());
        write_vector(&mut out[0], self.throughput_hist.iter().copied());
        write_vector(&mut out[1], self.rtt_hist.iter().copied());
        write_vector(&mut out[2], self.loss_hist.iter().copied());
        write_scalar(&mut out[3], self.cwnd_pkts);
        write_scalar(&mut out[4], self.min_rtt_s * 1000.0);
        write_scalar(&mut out[5], (self.total_ticks - self.tick) as f64);
        write_scalar(&mut out[6], self.total_ticks as f64);
    }

    /// Applies `action` and emulates one tick at packet granularity.
    ///
    /// # Panics
    /// Panics after the episode finished or on an out-of-range action.
    pub fn tick(&mut self, action: usize) -> CcTick {
        assert!(self.tick < self.total_ticks, "episode already finished");
        assert!(action < CC_ACTIONS.len(), "action {action} out of range");

        self.cwnd_pkts = match CC_ACTIONS[action] {
            crate::cc::CwndAction::Scale(f) => self.cwnd_pkts * f,
            crate::cc::CwndAction::Add(d) => self.cwnd_pkts + d,
        }
        .clamp(MIN_CWND_PKTS, MAX_CWND_PKTS);

        let bw_mbps = self.cursor.current_bandwidth_mbps();
        self.cursor.advance_time(TICK_S);
        let cap_rate_pps = bw_mbps * 1e6 / (8.0 * CC_PKT_BYTES);

        let mut served_total: u32 = 0;
        let mut offered_total: u32 = 0;
        let mut dropped_total: u32 = 0;
        let mut remaining_s = TICK_S;
        while remaining_s > 1e-12 {
            // Serve the queue for the rest of this round or tick,
            // whichever ends first.
            let dt = self.round_left_s.min(remaining_s);
            let can = cap_rate_pps * dt + self.serve_credit;
            let serve = (can.floor() as u32).min(self.queue_pkts);
            self.queue_pkts -= serve;
            self.ack_pending_pkts += serve;
            served_total += serve;
            // Fractional capacity carries over only while backlogged — an
            // idle link cannot bank service for later.
            self.serve_credit = if self.queue_pkts > 0 {
                can - can.floor()
            } else {
                0.0
            };
            self.round_left_s -= dt;
            remaining_s -= dt;

            if self.round_left_s <= 1e-12 {
                // Round boundary: ACKs for everything served during the
                // finished round arrive and free window.
                self.inflight_pkts = self.inflight_pkts.saturating_sub(self.ack_pending_pkts);
                self.ack_pending_pkts = 0;
                // The sender injects whole packets into its window room.
                let room = (self.cwnd_pkts.floor() as u32).saturating_sub(self.inflight_pkts);
                let space = QUEUE_CAP_PKTS as u32 - self.queue_pkts.min(QUEUE_CAP_PKTS as u32);
                let accepted = room.min(space);
                let dropped = room - accepted;
                self.queue_pkts += accepted;
                self.inflight_pkts += accepted;
                offered_total += room;
                dropped_total += dropped;
                // The next round lasts one jittered RTT plus however long
                // the queue now delays the ACK clock.
                let queue_delay = if cap_rate_pps > 0.0 {
                    f64::from(self.queue_pkts) / cap_rate_pps
                } else {
                    MAX_RTT_S
                };
                self.last_rtt_s = (self.jittered_rtt() + queue_delay).min(MAX_RTT_S);
                self.round_left_s = self.last_rtt_s;
            }
        }

        let loss_frac = if offered_total > 0 {
            f64::from(dropped_total) / f64::from(offered_total)
        } else {
            0.0
        };
        let rtt_s = self.last_rtt_s;
        self.srtt_s = (1.0 - SRTT_ALPHA) * self.srtt_s + SRTT_ALPHA * rtt_s;
        self.min_rtt_s = self.min_rtt_s.min(self.srtt_s);

        let throughput_mbps = f64::from(served_total) * CC_PKT_BYTES * 8.0 / TICK_S / 1e6;
        let reward = self.reward.tick_reward(throughput_mbps, rtt_s, loss_frac);

        push_window(&mut self.throughput_hist, throughput_mbps);
        push_window(&mut self.rtt_hist, self.srtt_s * 1000.0);
        push_window(&mut self.loss_hist, loss_frac);
        self.tick += 1;

        CcTick {
            throughput_mbps,
            rtt_s,
            loss_frac,
            reward,
            cwnd_pkts: self.cwnd_pkts,
            done: self.tick >= self.total_ticks,
        }
    }
}

fn push_window(q: &mut VecDeque<f64>, v: f64) {
    q.pop_front();
    q.push_back(v);
    debug_assert_eq!(q.len(), CC_HISTORY_LEN);
}

impl NetEnv for EmuCcEnv<'_> {
    fn observation_spec(&self) -> &'static [FieldSpec] {
        &CC_FIELDS
    }

    fn action_space(&self) -> usize {
        CC_ACTIONS.len()
    }

    fn reset(&mut self) -> Vec<ObsValue> {
        self.reset_episode();
        self.observation()
    }

    fn step(&mut self, action: usize) -> EnvStep {
        let t = self.tick(action);
        EnvStep {
            obs: self.observation(),
            reward: t.reward,
            done: t.done,
        }
    }

    fn reset_into(&mut self, obs: &mut Vec<ObsValue>) {
        self.reset_episode();
        self.write_obs(obs);
    }

    fn step_into(&mut self, action: usize, obs: &mut Vec<ObsValue>) -> StepOutcome {
        let t = self.tick(action);
        self.write_obs(obs);
        StepOutcome {
            reward: t.reward,
            done: t.done,
        }
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.total_ticks - self.tick)
    }
}

/// Runs `policy` through a whole emulated episode, returning the mean
/// per-tick reward (the packet-level twin of
/// [`crate::cc::run_cc_episode`]).
pub fn run_emu_cc_episode<P: crate::cc::CcPolicy>(env: &mut EmuCcEnv<'_>, policy: &mut P) -> f64 {
    policy.reset();
    let mut obs = env.reset();
    let mut total = 0.0;
    let mut ticks = 0usize;
    loop {
        let action = policy.select(&obs);
        let step = env.step(action);
        total += step.reward;
        ticks += 1;
        obs = step.obs;
        if step.done {
            return total / ticks as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{run_cc_episode, CcEnv, CcPolicy, CubicLike, HoldCwnd};
    use crate::netenv::spec_mismatch;

    fn flat(mbps: f64) -> Trace {
        Trace::from_uniform("flat", 1.0, &[mbps; 600]).unwrap()
    }

    struct AlwaysDouble;

    impl CcPolicy for AlwaysDouble {
        fn select(&mut self, _obs: &[ObsValue]) -> usize {
            6
        }

        fn name(&self) -> &'static str {
            "AlwaysDouble"
        }
    }

    #[test]
    fn episode_runs_exactly_total_ticks() {
        let t = flat(10.0);
        let mut env = EmuCcEnv::deterministic(&t, 50, CcReward::default());
        env.reset();
        let mut steps = 0;
        loop {
            let s = env.step(3);
            steps += 1;
            if s.done {
                break;
            }
        }
        assert_eq!(steps, 50);
    }

    #[test]
    fn observations_match_spec_at_every_step() {
        let t = flat(5.0);
        let mut env = EmuCcEnv::new(&t, 30, CcReward::default(), 9);
        let obs0 = env.reset();
        assert_eq!(spec_mismatch(&CC_FIELDS, &obs0), None);
        loop {
            let s = env.step(5);
            assert_eq!(spec_mismatch(&CC_FIELDS, &s.obs), None);
            if s.done {
                break;
            }
        }
    }

    #[test]
    fn throughput_is_capacity_bounded() {
        let t = flat(8.0);
        let mut env = EmuCcEnv::deterministic(&t, 100, CcReward::default());
        env.reset();
        for _ in 0..100 {
            let s = env.tick(6);
            // Whole-packet service can round a hair above the fluid cap
            // within one tick; one packet of slack covers it.
            let cap = 8.0 + CC_PKT_BYTES * 8.0 / TICK_S / 1e6;
            assert!(s.throughput_mbps <= cap, "served {}", s.throughput_mbps);
        }
    }

    #[test]
    fn overdriving_the_link_inflates_rtt_then_drops() {
        let t = flat(4.0);
        let mut env = EmuCcEnv::deterministic(&t, 300, CcReward::default());
        env.reset();
        let mut saw_inflation = false;
        let mut saw_loss = false;
        for _ in 0..300 {
            let s = env.tick(6);
            saw_inflation |= s.rtt_s > 2.0 * BASE_RTT_S;
            saw_loss |= s.loss_frac > 0.0;
        }
        assert!(saw_inflation, "queue never built");
        assert!(saw_loss, "queue never overflowed");
    }

    #[test]
    fn seeded_episodes_replay_bit_identically() {
        let t = flat(6.0);
        let mut env = EmuCcEnv::new(&t, 40, CcReward::default(), 77);
        let run = |env: &mut EmuCcEnv<'_>| {
            let mut rewards = Vec::new();
            env.reset();
            for i in 0..40 {
                rewards.push(env.step(i % CC_ACTIONS.len()).reward);
            }
            rewards
        };
        let a = run(&mut env);
        let b = run(&mut env);
        assert_eq!(a, b, "reset must replay the episode bit-for-bit");
        let mut fresh = EmuCcEnv::new(&t, 40, CcReward::default(), 77);
        assert_eq!(a, run(&mut fresh), "same seed, fresh env, same episode");
    }

    #[test]
    fn emulation_scores_below_simulation_with_preserved_rankings() {
        // The Table 4 property at transport level: every policy scores
        // lower in the packet world than the fluid world, and the policy
        // ordering is unchanged.
        let t = flat(6.0);
        let ticks = 300;
        let mut sim_scores = Vec::new();
        let mut emu_scores = Vec::new();
        let policies: Vec<Box<dyn Fn() -> Box<dyn CcPolicy>>> = vec![
            Box::new(|| Box::new(CubicLike::default())),
            Box::new(|| Box::new(HoldCwnd)),
            Box::new(|| Box::new(AlwaysDouble)),
        ];
        for make in &policies {
            let mut sim_env = CcEnv::deterministic(&t, ticks, CcReward::default());
            let mut p = make();
            sim_scores.push(run_cc_episode_dyn(&mut sim_env, p.as_mut()));
            let mut emu_env = EmuCcEnv::new(&t, ticks, CcReward::default(), 0xE);
            let mut p = make();
            emu_scores.push(run_emu_cc_episode_dyn(&mut emu_env, p.as_mut()));
        }
        // The strict below-simulation claim holds for policies that
        // actually control congestion (CubicLike, HoldCwnd). The blasting
        // policy is *less* catastrophic in the packet world — ACK
        // self-clocking throttles it once the queue is deep, where the
        // fluid model lets it keep pacing into the full queue — so its
        // absolute score is not comparable; only its (last-place) rank is.
        for (i, (s, e)) in sim_scores.iter().zip(&emu_scores).take(2).enumerate() {
            assert!(e < s, "policy {i}: emu {e} should be below sim {s}");
        }
        let rank = |xs: &[f64]| {
            let mut idx: Vec<usize> = (0..xs.len()).collect();
            idx.sort_by(|&a, &b| xs[b].partial_cmp(&xs[a]).unwrap());
            idx
        };
        assert_eq!(rank(&sim_scores), rank(&emu_scores), "rankings must hold");
    }

    fn run_cc_episode_dyn(env: &mut CcEnv<'_>, policy: &mut dyn CcPolicy) -> f64 {
        struct Shim<'p>(&'p mut dyn CcPolicy);
        impl CcPolicy for Shim<'_> {
            fn select(&mut self, obs: &[ObsValue]) -> usize {
                self.0.select(obs)
            }
            fn reset(&mut self) {
                self.0.reset()
            }
            fn name(&self) -> &'static str {
                self.0.name()
            }
        }
        run_cc_episode(env, &mut Shim(policy))
    }

    fn run_emu_cc_episode_dyn(env: &mut EmuCcEnv<'_>, policy: &mut dyn CcPolicy) -> f64 {
        struct Shim<'p>(&'p mut dyn CcPolicy);
        impl CcPolicy for Shim<'_> {
            fn select(&mut self, obs: &[ObsValue]) -> usize {
                self.0.select(obs)
            }
            fn reset(&mut self) {
                self.0.reset()
            }
            fn name(&self) -> &'static str {
                self.0.name()
            }
        }
        run_emu_cc_episode(env, &mut Shim(policy))
    }

    #[test]
    fn in_place_writes_match_allocating_steps() {
        let t = flat(5.0);
        let mut a = EmuCcEnv::new(&t, 60, CcReward::default(), 5);
        let mut b = EmuCcEnv::new(&t, 60, CcReward::default(), 5);
        let mut obs = vec![ObsValue::Scalar(1.0); 2];
        let reference = a.reset();
        b.reset_into(&mut obs);
        assert_eq!(obs, reference);
        for i in 0..60 {
            let step = a.step(i % CC_ACTIONS.len());
            let out = b.step_into(i % CC_ACTIONS.len(), &mut obs);
            assert_eq!(obs, step.obs, "step {i}");
            assert_eq!(out.reward, step.reward, "step {i}");
            assert_eq!(out.done, step.done, "step {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_action() {
        let t = flat(5.0);
        let mut env = EmuCcEnv::deterministic(&t, 10, CcReward::default());
        env.reset();
        let _ = env.step(99);
    }
}
