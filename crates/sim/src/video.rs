//! Video manifests: bitrate ladders and per-chunk encoded sizes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bitrate ladder: the encoded bitrates a player may switch between.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Ladder {
    levels_kbps: Vec<f64>,
}

impl Ladder {
    /// Builds a ladder from strictly increasing, positive bitrates in kbps.
    ///
    /// # Panics
    /// Panics on an empty or non-increasing ladder — ladders are
    /// program-defined constants, not user input.
    pub fn new(levels_kbps: Vec<f64>) -> Self {
        assert!(
            !levels_kbps.is_empty(),
            "ladder must have at least one level"
        );
        for w in levels_kbps.windows(2) {
            assert!(w[0] < w[1], "ladder must be strictly increasing");
        }
        assert!(levels_kbps[0] > 0.0, "bitrates must be positive");
        Self { levels_kbps }
    }

    /// Pensieve's original ladder, used by the paper for FCC and Starlink:
    /// {300, 750, 1200, 1850, 2850, 4300} kbps.
    pub fn broadband() -> Self {
        Self::new(vec![300.0, 750.0, 1200.0, 1850.0, 2850.0, 4300.0])
    }

    /// The paper's elevated ladder for 4G and 5G, following YouTube's
    /// recommended encoding settings: {1850, 2850, 4300, 12000, 24000,
    /// 53000} kbps.
    pub fn cellular() -> Self {
        Self::new(vec![1850.0, 2850.0, 4300.0, 12_000.0, 24_000.0, 53_000.0])
    }

    /// Bitrates in kbps, lowest first.
    pub fn levels_kbps(&self) -> &[f64] {
        &self.levels_kbps
    }

    /// Number of quality levels.
    pub fn len(&self) -> usize {
        self.levels_kbps.len()
    }

    /// True if the ladder has no levels (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.levels_kbps.is_empty()
    }

    /// Highest bitrate in kbps.
    pub fn max_kbps(&self) -> f64 {
        *self.levels_kbps.last().expect("non-empty ladder")
    }
}

/// A video manifest: ladder, chunk timing, and per-chunk encoded sizes.
///
/// Sizes follow a variable-bitrate model: the nominal size
/// `bitrate * chunk_duration / 8` is modulated by a per-chunk complexity
/// factor shared across quality levels (an action scene is big at every
/// bitrate), as in real DASH encodes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VideoManifest {
    ladder: Ladder,
    chunk_duration_s: f64,
    /// `sizes_bytes[chunk][level]`.
    sizes_bytes: Vec<Vec<f64>>,
}

impl VideoManifest {
    /// Pensieve's configuration: 4-second chunks, VBR size jitter with ±20 %
    /// per-chunk complexity, deterministic in `seed`.
    pub fn pensieve_like(ladder: Ladder, n_chunks: usize, seed: u64) -> Self {
        assert!(n_chunks > 0, "need at least one chunk");
        let chunk_duration_s = 4.0;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x71DE_0000_0000_0005);
        let sizes_bytes = (0..n_chunks)
            .map(|_| {
                // Shared scene-complexity factor plus small per-level jitter.
                let complexity = 1.0 + 0.2 * (2.0 * rng.gen::<f64>() - 1.0);
                ladder
                    .levels_kbps()
                    .iter()
                    .map(|kbps| {
                        let jitter = 1.0 + 0.05 * (2.0 * rng.gen::<f64>() - 1.0);
                        kbps * 1000.0 / 8.0 * chunk_duration_s * complexity * jitter
                    })
                    .collect()
            })
            .collect();
        Self {
            ladder,
            chunk_duration_s,
            sizes_bytes,
        }
    }

    /// Builds a manifest with exact nominal sizes (no VBR jitter); useful in
    /// tests where arithmetic must be predictable.
    pub fn constant_bitrate(ladder: Ladder, n_chunks: usize, chunk_duration_s: f64) -> Self {
        assert!(n_chunks > 0 && chunk_duration_s > 0.0);
        let sizes_bytes = (0..n_chunks)
            .map(|_| {
                ladder
                    .levels_kbps()
                    .iter()
                    .map(|kbps| kbps * 1000.0 / 8.0 * chunk_duration_s)
                    .collect()
            })
            .collect();
        Self {
            ladder,
            chunk_duration_s,
            sizes_bytes,
        }
    }

    /// The bitrate ladder.
    pub fn ladder(&self) -> &Ladder {
        &self.ladder
    }

    /// Duration of each chunk in seconds.
    pub fn chunk_duration_s(&self) -> f64 {
        self.chunk_duration_s
    }

    /// Total number of chunks in the video.
    pub fn n_chunks(&self) -> usize {
        self.sizes_bytes.len()
    }

    /// Number of quality levels.
    pub fn n_levels(&self) -> usize {
        self.ladder.len()
    }

    /// Encoded size in bytes of `chunk` at quality `level`.
    ///
    /// # Panics
    /// Panics if `chunk` or `level` is out of range (indices come from the
    /// simulator's own loop, so this is an internal invariant).
    pub fn size_bytes(&self, chunk: usize, level: usize) -> f64 {
        self.sizes_bytes[chunk][level]
    }

    /// Sizes of `chunk` at every quality, lowest bitrate first.
    pub fn sizes_at(&self, chunk: usize) -> &[f64] {
        &self.sizes_bytes[chunk]
    }

    /// Bitrate of quality `level`, kbps.
    pub fn bitrate_kbps(&self, level: usize) -> f64 {
        self.ladder.levels_kbps()[level]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladders_match_paper() {
        assert_eq!(
            Ladder::broadband().levels_kbps(),
            &[300.0, 750.0, 1200.0, 1850.0, 2850.0, 4300.0]
        );
        assert_eq!(
            Ladder::cellular().levels_kbps(),
            &[1850.0, 2850.0, 4300.0, 12_000.0, 24_000.0, 53_000.0]
        );
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn ladder_rejects_non_increasing() {
        let _ = Ladder::new(vec![300.0, 300.0]);
    }

    #[test]
    fn sizes_increase_with_level() {
        let m = VideoManifest::pensieve_like(Ladder::broadband(), 48, 1);
        for c in 0..m.n_chunks() {
            for l in 1..m.n_levels() {
                assert!(
                    m.size_bytes(c, l) > m.size_bytes(c, l - 1),
                    "chunk {c}: level {l} not larger"
                );
            }
        }
    }

    #[test]
    fn vbr_sizes_stay_near_nominal() {
        let m = VideoManifest::pensieve_like(Ladder::broadband(), 200, 2);
        for c in 0..m.n_chunks() {
            for l in 0..m.n_levels() {
                let nominal = m.bitrate_kbps(l) * 1000.0 / 8.0 * m.chunk_duration_s();
                let ratio = m.size_bytes(c, l) / nominal;
                assert!((0.7..1.3).contains(&ratio), "ratio {ratio} out of VBR band");
            }
        }
    }

    #[test]
    fn manifest_is_deterministic() {
        let a = VideoManifest::pensieve_like(Ladder::cellular(), 48, 9);
        let b = VideoManifest::pensieve_like(Ladder::cellular(), 48, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn cbr_sizes_are_exact() {
        let m = VideoManifest::constant_bitrate(Ladder::broadband(), 3, 4.0);
        // 300 kbps * 4 s / 8 = 150_000 bytes.
        assert!((m.size_bytes(0, 0) - 150_000.0).abs() < 1e-9);
    }
}
