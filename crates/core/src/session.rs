//! The staged search session: Figure 1 as a typed state machine.
//!
//! [`SearchSession`] replaces the old one-shot search monolith with five
//! individually-invocable stages over shared cross-stage state:
//!
//! ```text
//! Generate ──► Precheck ──► Probe ──► Screen ──► Finalize ──► Done
//! ```
//!
//! * **Generate** asks the LLM for the candidate pool (§2.1 prompts).
//! * **Precheck** runs the compilation + normalization checks in parallel
//!   and compiles survivors against the workload (§2.2).
//! * **Probe** fully trains a pool prefix to fit the early-stopping model.
//! * **Screen** trains everyone else through the early phase and lets the
//!   Reward-Only classifier decide who continues (§2.2).
//! * **Finalize** runs the full §3.1 protocol on the original design and
//!   the top-ranked survivors, and assembles the
//!   [`SearchOutcome`].
//!
//! Three things are first-class on the session:
//!
//! * **Observation** — every stage transition, per-candidate verdict and
//!   budget cut is emitted to registered
//!   [`SearchObserver`]s (see [`crate::observer`]).
//! * **Budgets** — a [`Budget`] truncates the search gracefully *mid*-stage
//!   at deterministic wave boundaries, instead of only at configured pool
//!   sizes (see [`crate::budget`]).
//! * **Snapshot/resume** — [`SearchSession::snapshot`] captures all
//!   cross-stage state at a stage boundary;
//!   [`SearchSession::resume`] reconstructs the session and the finished
//!   search is bit-identical to an uninterrupted one (see
//!   [`crate::snapshot`]).
//!
//! The legacy entry points `Nada::run_state_search` /
//! `Nada::run_arch_search` are thin wrappers over this API.

use crate::budget::Budget;
use crate::candidate::{Candidate, CompiledDesign};
use crate::observer::{SearchEvent, SearchObserver};
use crate::pipeline::{DesignResult, Nada, PrecheckStats, SearchOutcome, SearchStats};
use crate::score::smoothed_score;
use crate::snapshot::{config_fingerprint, SessionSnapshot, SnapshotError};
use crate::train::{DesignTrainer, TrainOutcome, TrainRunConfig};
use nada_dsl::CompiledState;
use nada_earlystop::classifiers::{Classifier, DesignSample, FitConfig, RewardCnnClassifier};
use nada_exec::pool_map_indexed;
use nada_llm::{DesignKind, FeedbackContext, LlmClient};
use nada_nn::ArchConfig;

/// One prechecked pool entry: the candidate plus the `(state, arch)` pair
/// it trains as (the non-searched component is the workload's seed).
pub type PoolEntry = (Candidate, CompiledState, ArchConfig);

/// Designs trained between budget checks when an epoch budget is set.
/// A fixed constant (not the machine's worker count) so that *which*
/// candidates a budgeted search trains is machine-independent.
pub const BUDGET_WAVE: usize = 8;

/// Number of top-ranked designs evaluated under the full §3.1 protocol.
pub const N_FINALISTS: usize = 3;

/// The session's position in the staged pipeline. Ordering follows
/// execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Generate the candidate pool from the LLM.
    Generate,
    /// Compilation + normalization checks.
    Precheck,
    /// Fully train a pool prefix to fit the early-stopping model.
    Probe,
    /// Early-stopped batch training of the remaining pool.
    Screen,
    /// Full protocol on the finalists; rank and assemble the outcome.
    Finalize,
    /// The search has produced its [`SearchOutcome`].
    Done,
}

impl Stage {
    /// Every stage, in execution order. Exhaustive by construction: tests
    /// iterate this to prove `from_name(name())` round-trips for every
    /// variant, so adding a stage without wiring its name is caught.
    pub const ALL: [Stage; 6] = [
        Stage::Generate,
        Stage::Precheck,
        Stage::Probe,
        Stage::Screen,
        Stage::Finalize,
        Stage::Done,
    ];

    /// Stable lowercase name (used by snapshots and reports).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Generate => "generate",
            Stage::Precheck => "precheck",
            Stage::Probe => "probe",
            Stage::Screen => "screen",
            Stage::Finalize => "finalize",
            Stage::Done => "done",
        }
    }

    /// Inverse of [`Stage::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "generate" => Some(Stage::Generate),
            "precheck" => Some(Stage::Precheck),
            "probe" => Some(Stage::Probe),
            "screen" => Some(Stage::Screen),
            "finalize" => Some(Stage::Finalize),
            "done" => Some(Stage::Done),
            _ => None,
        }
    }
}

/// A stage was invoked out of order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrongStage {
    /// The stage the session is actually at.
    pub found: Stage,
    /// The stage the caller tried to run.
    pub requested: Stage,
}

impl std::fmt::Display for WrongStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Both stages are always named — a caller debugging an already-
        // finalized session still needs to see what it tried to run.
        write!(
            f,
            "session is at stage `{}`{}, cannot run `{}`",
            self.found.name(),
            if self.found == Stage::Done {
                " (already finalized)"
            } else {
                ""
            },
            self.requested.name()
        )
    }
}

impl std::error::Error for WrongStage {}

/// An observable, budgeted, resumable search over one [`Nada`] pipeline.
pub struct SearchSession<'a> {
    nada: &'a Nada,
    kind: DesignKind,
    budget: Budget,
    /// Fed-back outcomes of earlier rounds, applied to the Generate
    /// prompt (and carried by snapshots, so a session interrupted before
    /// Generate still produces the same pool on resume).
    feedback: Option<FeedbackContext>,
    /// Pre-computed full-protocol evaluation of the original design.
    /// Training the original is deterministic, so multi-round drivers
    /// inject round 0's result instead of re-training every round.
    original: Option<DesignResult>,
    observers: Vec<Box<dyn SearchObserver + 'a>>,
    stage: Stage,
    /// Emitted as a `Resumed` event when the next stage starts (observers
    /// are typically attached only after [`SearchSession::resume`]).
    pending_resume: Option<Stage>,
    candidates: Vec<Candidate>,
    precheck_stats: Option<PrecheckStats>,
    /// Compiled survivors; re-derived (not serialized) on resume.
    pool: Vec<PoolEntry>,
    probes: Vec<(usize, Option<TrainOutcome>)>,
    screened: Vec<(usize, Option<TrainOutcome>, bool)>,
    stats: SearchStats,
}

impl<'a> SearchSession<'a> {
    /// A fresh session at the Generate stage.
    pub fn new(nada: &'a Nada, kind: DesignKind) -> Self {
        Self {
            nada,
            kind,
            budget: Budget::unlimited(),
            feedback: None,
            original: None,
            observers: Vec::new(),
            stage: Stage::Generate,
            pending_resume: None,
            candidates: Vec::new(),
            precheck_stats: None,
            pool: Vec::new(),
            probes: Vec::new(),
            screened: Vec::new(),
            stats: SearchStats::default(),
        }
    }

    /// Sets the session's spending limits (builder style).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches ranked outcomes of earlier search rounds (builder style).
    /// The Generate stage renders them into the LLM prompt via
    /// [`nada_llm::Prompt::with_feedback`]; see [`crate::driver`] for the
    /// loop that produces them.
    pub fn with_feedback(mut self, feedback: FeedbackContext) -> Self {
        self.feedback = Some(feedback);
        self
    }

    /// Supplies a pre-computed evaluation of the original design (builder
    /// style). Must come from an identically-configured pipeline; the
    /// original's training is deterministic, so this is purely a
    /// recomputation saving (the driver reuses round 0's result instead
    /// of re-training the seed design every round).
    pub fn with_original(mut self, original: DesignResult) -> Self {
        self.original = Some(original);
        self
    }

    /// Registers an observer for the session's event stream. Pass by value
    /// to hand ownership over, or by reference (`&observer`) to inspect
    /// the observer after the search.
    pub fn observe(&mut self, observer: impl SearchObserver + 'a) -> &mut Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// The stage the session will run next.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The session's spending limits.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Spend bookkeeping accumulated so far.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Pre-check statistics, once the Precheck stage has run.
    pub fn precheck_stats(&self) -> Option<PrecheckStats> {
        self.precheck_stats
    }

    /// Which design kind this session searches.
    pub fn kind(&self) -> DesignKind {
        self.kind
    }

    // ---- stages ------------------------------------------------------------

    /// **Generate**: ask the LLM for the candidate pool. The candidate
    /// budget caps the LLM batch itself (via
    /// [`LlmClient::generate_batch_while`]), not just downstream use.
    /// Returns the number of candidates generated.
    pub fn generate(&mut self, llm: &mut dyn LlmClient) -> Result<usize, WrongStage> {
        self.expect(Stage::Generate)?;
        self.start_stage(Stage::Generate);
        let want = self.nada.config().n_candidates;
        let cap = self.budget.max_candidates.unwrap_or(usize::MAX);
        let mut prompt = self.nada.prompt_for(self.kind);
        if let Some(feedback) = &self.feedback {
            prompt = prompt.with_feedback(feedback.clone());
        }
        let kind = self.kind;
        // Token spend is measured as a delta over the process-wide meter:
        // live HTTP backends record `usage` there, offline backends bill
        // zero. The hook gates *wave issuance* — every completion of an
        // already-issued wave is kept, so paid work is never discarded.
        let meter = nada_llm::global_token_meter();
        let tokens_start = meter.snapshot().total();
        let budget = self.budget;
        let completions = llm.generate_batch_while(&prompt, want, &mut |made| {
            let spent = meter.snapshot().total().saturating_sub(tokens_start);
            made < cap && !budget.tokens_exhausted(spent)
        });
        self.stats.llm_tokens_spent += meter.snapshot().total().saturating_sub(tokens_start);
        self.candidates = completions
            .into_iter()
            .enumerate()
            .map(|(id, c)| Candidate {
                id,
                kind,
                code: c.code,
                reasoning: c.reasoning,
            })
            .collect();
        let n = self.candidates.len();
        if n < want {
            self.emit(&SearchEvent::BudgetExhausted {
                stage: Stage::Generate,
                epochs_spent: self.stats.epochs_spent,
                skipped: want - n,
            });
        }
        self.emit(&SearchEvent::PoolGenerated { n });
        self.finish_stage(Stage::Generate, Stage::Precheck);
        Ok(n)
    }

    /// **Precheck**: run both §2.2 checks over the pool (in parallel) and
    /// compile survivors against the workload. Returns Table 2 statistics.
    pub fn precheck(&mut self) -> Result<PrecheckStats, WrongStage> {
        self.expect(Stage::Precheck)?;
        self.start_stage(Stage::Precheck);
        let stats = self.build_pool(true);
        self.precheck_stats = Some(stats);
        self.finish_stage(Stage::Precheck, Stage::Probe);
        Ok(stats)
    }

    /// Runs the pre-checks and fills `self.pool`, optionally emitting
    /// per-candidate events (resume re-derives the pool silently).
    fn build_pool(&mut self, emit_events: bool) -> PrecheckStats {
        let results = self.nada.precheck_each(&self.candidates);
        let mut stats = PrecheckStats {
            total: self.candidates.len(),
            compilable: 0,
            normalized: 0,
        };
        let seed_state = self.nada.workload().seed_state();
        let seed_arch = self.nada.workload().seed_arch();
        let mut pool: Vec<PoolEntry> = Vec::new();
        for (cand, result) in self.candidates.iter().zip(results) {
            stats.record(&result);
            match result {
                Ok(design) => {
                    match design {
                        CompiledDesign::State(s) => {
                            pool.push((cand.clone(), *s, seed_arch.clone()))
                        }
                        CompiledDesign::Arch(a) => pool.push((cand.clone(), seed_state.clone(), a)),
                    }
                    if emit_events {
                        self.emit(&SearchEvent::CandidateAccepted { id: cand.id });
                    }
                }
                Err(reason) => {
                    if emit_events {
                        self.emit(&SearchEvent::CandidateRejected {
                            id: cand.id,
                            reason: reason.to_string(),
                        });
                    }
                }
            }
        }
        self.pool = pool;
        stats
    }

    /// Number of pool entries probed (trained fully up-front).
    fn n_probe(&self) -> usize {
        self.nada.config().n_probe.min(self.pool.len())
    }

    /// Per-design training seed (identical to the pre-session pipeline, so
    /// wrapper results are unchanged).
    fn design_seed(&self, id: usize) -> u64 {
        self.nada.config().seed.wrapping_add(7000 + id as u64)
    }

    /// The source text that identifies a candidate's *state* for score-cache
    /// keys: the candidate's own program for state searches, the workload's
    /// seed state for architecture searches (where the candidate varies the
    /// architecture instead).
    fn state_identity<'c>(&'c self, cand: &'c Candidate) -> &'c str {
        match cand.kind {
            DesignKind::State => &cand.code,
            DesignKind::Architecture => self.nada.workload().seed_state_source(),
        }
    }

    /// The wave length for budgeted stages: a fixed, machine-independent
    /// chunk when an epoch budget is set, the whole remainder otherwise.
    fn wave_len(&self, remaining: usize) -> usize {
        if self.budget.max_epochs.is_some() {
            BUDGET_WAVE.min(remaining)
        } else {
            remaining
        }
    }

    /// **Probe**: fully train the pool prefix to fit the early-stopping
    /// model. The first wave always runs — even over budget — so the
    /// search can always rank at least one design; later waves stop when
    /// the epoch budget is exhausted.
    pub fn probe(&mut self) -> Result<(), WrongStage> {
        self.expect(Stage::Probe)?;
        self.start_stage(Stage::Probe);
        let probes: Vec<PoolEntry> = self.pool[..self.n_probe()].to_vec();
        let run_cfg = TrainRunConfig::from(self.nada.config());
        let mut idx = 0;
        while idx < probes.len() {
            if idx > 0 && self.budget.epochs_exhausted(self.stats.epochs_spent) {
                let skipped = probes.len() - idx;
                self.stats.skipped += skipped;
                self.emit(&SearchEvent::BudgetExhausted {
                    stage: Stage::Probe,
                    epochs_spent: self.stats.epochs_spent,
                    skipped,
                });
                break;
            }
            let wave = &probes[idx..idx + self.wave_len(probes.len() - idx)];
            idx += wave.len();
            let this = &*self;
            let results: Vec<(usize, Option<TrainOutcome>)> = pool_map_indexed(wave.len(), |w| {
                let (cand, state, arch) = &wave[w];
                let out = this
                    .nada
                    .train_design_probe(
                        this.state_identity(cand),
                        state,
                        arch,
                        &run_cfg,
                        this.design_seed(cand.id),
                    )
                    .ok();
                this.emit(&SearchEvent::ProbeTrained {
                    id: cand.id,
                    epochs: out.as_ref().map_or(0, |o| o.reward_curve.len()),
                    failed: out.is_none(),
                });
                (cand.id, out)
            });
            for (_, out) in &results {
                match out {
                    Some(o) => {
                        self.stats.fully_trained += 1;
                        self.stats.epochs_spent += o.reward_curve.len();
                    }
                    None => self.stats.failed += 1,
                }
            }
            self.probes.extend(results);
        }
        self.finish_stage(Stage::Probe, Stage::Screen);
        Ok(())
    }

    /// Fits the Reward-Only classifier on the probe outcomes (§2.2), when
    /// enough probes trained cleanly. Deterministic in the session seed.
    fn fit_classifier(&self) -> Option<RewardCnnClassifier> {
        let cfg = self.nada.config();
        let samples: Vec<DesignSample> = self
            .probes
            .iter()
            .filter_map(|(id, o)| o.as_ref().map(|o| (id, o)))
            .map(|(id, o)| DesignSample {
                reward_curve: o.early_curve(cfg.early_epochs).to_vec(),
                code: self.candidate_code(*id),
            })
            .collect();
        let finals: Vec<f64> = self
            .probes
            .iter()
            .filter_map(|(_, o)| o.as_ref())
            .map(|o| smoothed_score(&o.checkpoints))
            .collect();
        if samples.len() < 4 {
            return None;
        }
        let fit = FitConfig {
            // Small pools: "top 1 %" degenerates to the single best probe;
            // keep the paper's 20 % smoothing.
            top_fraction: 0.01,
            seed: cfg.seed,
            ..FitConfig::default()
        };
        let mut clf = RewardCnnClassifier::new(&fit);
        clf.fit(&samples, &finals, &fit);
        Some(clf)
    }

    /// The source code of a pool candidate (for the text-aware
    /// early-stopping classifier variants).
    fn candidate_code(&self, id: usize) -> String {
        self.pool
            .iter()
            .find(|(c, _, _)| c.id == id)
            .map(|(c, _, _)| c.code.clone())
            .unwrap_or_default()
    }

    /// **Screen**: early-stopped batch training of the non-probe pool.
    /// Every design trains through the early phase; the classifier decides
    /// who trains to completion. Stops at wave boundaries when the epoch
    /// budget runs out.
    pub fn screen(&mut self) -> Result<(), WrongStage> {
        self.expect(Stage::Screen)?;
        self.start_stage(Stage::Screen);
        let rest: Vec<PoolEntry> = self.pool[self.n_probe()..].to_vec();
        let run_cfg = TrainRunConfig::from(self.nada.config());
        let early_epochs = self.nada.config().early_epochs;
        let train_epochs = self.nada.config().train_epochs;
        let classifier = self.fit_classifier();
        let mut idx = 0;
        while idx < rest.len() {
            if self.budget.epochs_exhausted(self.stats.epochs_spent) {
                let skipped = rest.len() - idx;
                self.stats.skipped += skipped;
                self.emit(&SearchEvent::BudgetExhausted {
                    stage: Stage::Screen,
                    epochs_spent: self.stats.epochs_spent,
                    skipped,
                });
                break;
            }
            let wave = &rest[idx..idx + self.wave_len(rest.len() - idx)];
            idx += wave.len();
            let this = &*self;
            let classifier = &classifier;
            let results: Vec<(usize, Option<TrainOutcome>, bool)> =
                pool_map_indexed(wave.len(), |w| {
                    let (cand, state, arch) = &wave[w];
                    let mut session = DesignTrainer::new(
                        this.nada.workload(),
                        state,
                        arch,
                        this.nada.dataset(),
                        run_cfg,
                        this.design_seed(cand.id),
                    );
                    if session.run_until(early_epochs).is_err() {
                        this.emit(&SearchEvent::ScreenTrained {
                            id: cand.id,
                            epochs: 0,
                            completed: false,
                            failed: true,
                        });
                        return (cand.id, None, false);
                    }
                    let keep = match classifier {
                        Some(clf) => {
                            let mut clf = clf.clone();
                            clf.keep(&DesignSample {
                                reward_curve: session.outcome().reward_curve.clone(),
                                code: cand.code.clone(),
                            })
                        }
                        None => true,
                    };
                    this.emit(&SearchEvent::EarlyStopVerdict { id: cand.id, keep });
                    if !keep {
                        let out = session.into_outcome();
                        this.emit(&SearchEvent::ScreenTrained {
                            id: cand.id,
                            epochs: out.reward_curve.len(),
                            completed: false,
                            failed: false,
                        });
                        return (cand.id, Some(out), false);
                    }
                    match session.run_until(train_epochs) {
                        Ok(()) => {
                            let out = session.into_outcome();
                            this.emit(&SearchEvent::ScreenTrained {
                                id: cand.id,
                                epochs: out.reward_curve.len(),
                                completed: true,
                                failed: false,
                            });
                            (cand.id, Some(out), true)
                        }
                        Err(_) => {
                            this.emit(&SearchEvent::ScreenTrained {
                                id: cand.id,
                                epochs: 0,
                                completed: false,
                                failed: true,
                            });
                            (cand.id, None, false)
                        }
                    }
                });
            for (_, out, completed) in &results {
                match (out, completed) {
                    (Some(o), true) => {
                        self.stats.fully_trained += 1;
                        self.stats.epochs_spent += o.reward_curve.len();
                    }
                    (Some(o), false) => {
                        self.stats.early_stopped += 1;
                        self.stats.epochs_spent += o.reward_curve.len();
                        self.stats.epochs_saved += train_epochs - o.reward_curve.len();
                    }
                    (None, _) => self.stats.failed += 1,
                }
            }
            self.screened.extend(results);
        }
        self.finish_stage(Stage::Screen, Stage::Finalize);
        Ok(())
    }

    /// Screening-phase ranking: every completed design by smoothed score,
    /// best first, ties broken by candidate id.
    fn rank(&self) -> Vec<(usize, f64)> {
        let mut ranked: Vec<(usize, f64)> = self
            .probes
            .iter()
            .filter_map(|(id, o)| o.as_ref().map(|o| (*id, smoothed_score(&o.checkpoints))))
            .chain(self.screened.iter().filter_map(|(id, o, completed)| {
                if *completed {
                    o.as_ref().map(|o| (*id, smoothed_score(&o.checkpoints)))
                } else {
                    None
                }
            }))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite scores")
                .then(a.0.cmp(&b.0))
        });
        ranked
    }

    /// **Finalize**: full §3.1 protocol for the original design and the
    /// top-ranked survivors, then rank and assemble the outcome. Finalists
    /// are skipped (best falls back to the strongest evaluated design, or
    /// the original) once the epoch budget is exhausted.
    pub fn finalize(&mut self) -> Result<SearchOutcome, WrongStage> {
        self.expect(Stage::Finalize)?;
        self.start_stage(Stage::Finalize);
        let original = self
            .original
            .clone()
            .unwrap_or_else(|| self.nada.train_original());
        let ranked = self.rank();
        let top_k = N_FINALISTS.min(ranked.len());
        let finalists: Vec<PoolEntry> = ranked[..top_k]
            .iter()
            .filter_map(|(id, _)| self.pool.iter().find(|(c, _, _)| c.id == *id).cloned())
            .collect();

        let finals: Vec<Option<DesignResult>> = if self.budget.max_epochs.is_some() {
            // Budgeted: evaluate one finalist at a time (each already fans
            // out n_seeds sessions) so the budget cuts between finalists.
            let mut finals = Vec::new();
            for (i, entry) in finalists.into_iter().enumerate() {
                if self.budget.epochs_exhausted(self.stats.epochs_spent) {
                    let skipped = top_k - i;
                    self.stats.skipped += skipped;
                    self.emit(&SearchEvent::BudgetExhausted {
                        stage: Stage::Finalize,
                        epochs_spent: self.stats.epochs_spent,
                        skipped,
                    });
                    break;
                }
                let result = self.evaluate_finalist(&entry);
                if let Some(r) = &result {
                    self.stats.epochs_spent += finalist_epochs(r);
                }
                finals.push(result);
            }
            finals
        } else {
            let this = &*self;
            // Nested fan-out: each finalist evaluation itself pool-maps its
            // n_seeds sessions; the shared pool interleaves both levels.
            let finals =
                pool_map_indexed(finalists.len(), |i| this.evaluate_finalist(&finalists[i]));
            for r in finals.iter().flatten() {
                self.stats.epochs_spent += finalist_epochs(r);
            }
            finals
        };

        // Keep every evaluated finalist (screening-rank order) on the
        // outcome — the feedback loop's hall of fame is built from them.
        let finalists: Vec<DesignResult> = finals.into_iter().flatten().collect();
        let best = finalists
            .iter()
            .cloned()
            .max_by(|a, b| {
                a.test_score
                    .partial_cmp(&b.test_score)
                    .expect("finite scores")
            })
            .unwrap_or_else(|| original.clone());

        let outcome = SearchOutcome {
            kind: self.kind,
            precheck: self.precheck_stats.unwrap_or(PrecheckStats {
                total: 0,
                compilable: 0,
                normalized: 0,
            }),
            original,
            best,
            finalists,
            ranked,
            stats: self.stats,
        };
        self.finish_stage(Stage::Finalize, Stage::Done);
        Ok(outcome)
    }

    /// Full-protocol evaluation of one finalist, with its event.
    fn evaluate_finalist(&self, (cand, state, arch): &PoolEntry) -> Option<DesignResult> {
        let result = self
            .nada
            .evaluate_design_full_keyed(self.state_identity(cand), state, arch)
            .ok()
            .map(|(sessions, score)| DesignResult {
                code: cand.code.clone(),
                candidate: Some(cand.clone()),
                sessions,
                test_score: score,
            });
        self.emit(&SearchEvent::FinalistEvaluated {
            id: cand.id,
            score: result.as_ref().map(|r| r.test_score),
        });
        result
    }

    /// Drives the session from its current stage to completion.
    pub fn run(&mut self, llm: &mut dyn LlmClient) -> Result<SearchOutcome, WrongStage> {
        loop {
            match self.stage {
                Stage::Generate => {
                    self.generate(llm)?;
                }
                Stage::Precheck => {
                    self.precheck()?;
                }
                Stage::Probe => self.probe()?,
                Stage::Screen => self.screen()?,
                Stage::Finalize => return self.finalize(),
                Stage::Done => {
                    return Err(WrongStage {
                        found: Stage::Done,
                        requested: Stage::Done,
                    })
                }
            }
        }
    }

    // ---- snapshot / resume -------------------------------------------------

    /// Captures all cross-stage state at the current stage boundary.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            fingerprint: config_fingerprint(self.nada),
            kind: self.kind,
            next_stage: self.stage,
            budget: self.budget,
            feedback: self.feedback.clone(),
            candidates: self.candidates.clone(),
            precheck: self.precheck_stats,
            probes: self.probes.clone(),
            screened: self.screened.clone(),
            stats: self.stats,
        }
    }

    /// Reconstructs a session from a snapshot taken against the same
    /// pipeline. Compiled designs are re-derived (deterministically) from
    /// the stored candidate pool; the resumed session's finished
    /// [`SearchOutcome`] is bit-identical to an uninterrupted run's.
    pub fn resume(nada: &'a Nada, snapshot: SessionSnapshot) -> Result<Self, SnapshotError> {
        let expected = config_fingerprint(nada);
        if snapshot.fingerprint != expected {
            return Err(SnapshotError(format!(
                "snapshot was taken from a different pipeline \
                 (fingerprint {:#x}, this pipeline is {:#x})",
                snapshot.fingerprint, expected
            )));
        }
        let mut session = SearchSession::new(nada, snapshot.kind).with_budget(snapshot.budget);
        session.feedback = snapshot.feedback;
        session.candidates = snapshot.candidates;
        session.precheck_stats = snapshot.precheck;
        session.probes = snapshot.probes;
        session.screened = snapshot.screened;
        session.stats = snapshot.stats;
        session.stage = snapshot.next_stage;
        session.pending_resume = Some(snapshot.next_stage);
        if session.stage > Stage::Precheck && session.stage < Stage::Done {
            let rederived = session.build_pool(false);
            if session.precheck_stats != Some(rederived) {
                return Err(SnapshotError(format!(
                    "re-derived pre-check statistics {rederived:?} disagree with the \
                     snapshot's {:?} — dataset or workload changed since the snapshot",
                    session.precheck_stats
                )));
            }
        }
        Ok(session)
    }

    // ---- plumbing ----------------------------------------------------------

    fn expect(&self, requested: Stage) -> Result<(), WrongStage> {
        if self.stage == requested {
            Ok(())
        } else {
            Err(WrongStage {
                found: self.stage,
                requested,
            })
        }
    }

    fn start_stage(&mut self, stage: Stage) {
        if let Some(next_stage) = self.pending_resume.take() {
            self.emit(&SearchEvent::Resumed { next_stage });
        }
        self.emit(&SearchEvent::StageStarted { stage });
    }

    fn finish_stage(&mut self, finished: Stage, next: Stage) {
        self.stage = next;
        self.emit(&SearchEvent::StageFinished { stage: finished });
    }

    fn emit(&self, event: &SearchEvent) {
        for obs in &self.observers {
            obs.on_event(event);
        }
    }
}

/// Training epochs one finalist evaluation actually spent (the sum of its
/// per-seed session curves — not the configured `n_seeds × train_epochs`).
fn finalist_epochs(result: &DesignResult) -> usize {
    result
        .sessions
        .iter()
        .map(|s| s.reward_curve.len())
        .sum::<usize>()
}

impl<T: SearchObserver + ?Sized> SearchObserver for &T {
    fn on_event(&self, event: &SearchEvent) {
        (**self).on_event(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NadaConfig, RunScale};
    use crate::observer::CollectingObserver;
    use nada_llm::MockLlm;
    use nada_traces::dataset::DatasetKind;

    fn tiny_nada(seed: u64) -> Nada {
        Nada::new(NadaConfig::new(DatasetKind::Fcc, RunScale::Tiny, seed))
    }

    #[test]
    fn stages_run_in_order_and_reject_disorder() {
        let nada = tiny_nada(21);
        let mut llm = MockLlm::perfect(21);
        let mut session = SearchSession::new(&nada, DesignKind::State);
        assert_eq!(session.stage(), Stage::Generate);
        // Out-of-order invocations are typed errors, not panics.
        assert!(session.precheck().is_err());
        assert!(session.probe().is_err());
        assert!(session.finalize().is_err());

        let n = session.generate(&mut llm).unwrap();
        assert_eq!(n, nada.config().n_candidates);
        assert!(session.generate(&mut llm).is_err());
        let stats = session.precheck().unwrap();
        assert_eq!(stats.total, n);
        session.probe().unwrap();
        session.screen().unwrap();
        let outcome = session.finalize().unwrap();
        assert_eq!(session.stage(), Stage::Done);
        assert!(outcome.best.test_score.is_finite());
        assert!(!outcome.ranked.is_empty());
    }

    #[test]
    fn session_matches_the_legacy_wrapper_bit_for_bit() {
        let nada = tiny_nada(22);
        let mut llm_a = MockLlm::gpt4(22);
        let wrapped = nada.run_state_search(&mut llm_a);

        let mut llm_b = MockLlm::gpt4(22);
        let mut session = SearchSession::new(&nada, DesignKind::State);
        let staged = session.run(&mut llm_b).unwrap();

        assert_eq!(wrapped.ranked, staged.ranked);
        assert_eq!(
            wrapped.best.test_score.to_bits(),
            staged.best.test_score.to_bits()
        );
        assert_eq!(
            wrapped.original.test_score.to_bits(),
            staged.original.test_score.to_bits()
        );
        assert_eq!(wrapped.precheck, staged.precheck);
        assert_eq!(wrapped.stats, staged.stats);
    }

    #[test]
    fn observers_see_the_whole_lifecycle() {
        let nada = tiny_nada(23);
        let mut llm = MockLlm::perfect(23);
        let collector = CollectingObserver::new();
        let mut session = SearchSession::new(&nada, DesignKind::State);
        session.observe(&collector);
        let outcome = session.run(&mut llm).unwrap();

        // Five stages, started and finished.
        assert_eq!(
            collector.count(|e| matches!(e, SearchEvent::StageStarted { .. })),
            5
        );
        assert_eq!(
            collector.count(|e| matches!(e, SearchEvent::StageFinished { .. })),
            5
        );
        // Every candidate got an accept/reject verdict.
        assert_eq!(
            collector.count(|e| matches!(
                e,
                SearchEvent::CandidateAccepted { .. } | SearchEvent::CandidateRejected { .. }
            )),
            outcome.precheck.total
        );
        // Early-stop verdicts cover the screened designs that reached the
        // classifier.
        let verdicts = collector.count(|e| matches!(e, SearchEvent::EarlyStopVerdict { .. }));
        assert!(verdicts <= outcome.precheck.normalized);
        // Finalists produced evaluation events.
        assert!(collector.count(|e| matches!(e, SearchEvent::FinalistEvaluated { .. })) >= 1);
    }

    #[test]
    fn candidate_budget_caps_the_llm_batch_itself() {
        let nada = tiny_nada(24);
        let mut llm = MockLlm::perfect(24);
        let mut session = SearchSession::new(&nada, DesignKind::State)
            .with_budget(Budget::unlimited().with_max_candidates(3));
        let n = session.generate(&mut llm).unwrap();
        assert_eq!(n, 3);
        let stats = session.precheck().unwrap();
        assert_eq!(stats.total, 3);
    }

    #[test]
    fn epoch_budget_truncates_but_still_ranks() {
        let nada = tiny_nada(25);
        let mut llm = MockLlm::perfect(25);
        let collector = CollectingObserver::new();
        // Enough for the first probe wave only.
        let mut session = SearchSession::new(&nada, DesignKind::State)
            .with_budget(Budget::unlimited().with_max_epochs(1));
        session.observe(&collector);
        let outcome = session.run(&mut llm).unwrap();
        assert!(
            !outcome.ranked.is_empty(),
            "a budgeted search must still rank the designs it trained"
        );
        assert!(outcome.best.test_score.is_finite());
        assert!(outcome.stats.skipped > 0, "{:?}", outcome.stats);
        assert!(collector.count(|e| matches!(e, SearchEvent::BudgetExhausted { .. })) >= 1);
    }

    #[test]
    fn budgeted_search_is_deterministic() {
        let run = || {
            let nada = tiny_nada(26);
            let mut llm = MockLlm::gpt4(26);
            let mut session = SearchSession::new(&nada, DesignKind::State)
                .with_budget(Budget::unlimited().with_max_epochs(40));
            let o = session.run(&mut llm).unwrap();
            (o.ranked.clone(), o.best.test_score.to_bits(), o.stats)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snapshot_resume_roundtrip_at_every_boundary() {
        let nada = tiny_nada(27);
        let reference = {
            let mut llm = MockLlm::gpt4(27);
            SearchSession::new(&nada, DesignKind::State)
                .run(&mut llm)
                .unwrap()
        };
        // Interrupt after each stage in turn; every resume must converge to
        // the identical outcome.
        for pause_after in 1..=4usize {
            let mut llm = MockLlm::gpt4(27);
            let mut session = SearchSession::new(&nada, DesignKind::State);
            for step in 0..pause_after {
                match step {
                    0 => {
                        session.generate(&mut llm).unwrap();
                    }
                    1 => {
                        session.precheck().unwrap();
                    }
                    2 => session.probe().unwrap(),
                    3 => session.screen().unwrap(),
                    _ => unreachable!(),
                }
            }
            let text = session.snapshot().encode();
            drop(session);
            let snap = SessionSnapshot::decode(&text).unwrap();
            let mut resumed = SearchSession::resume(&nada, snap).unwrap();
            let outcome = resumed.run(&mut llm).unwrap();
            assert_eq!(reference.ranked, outcome.ranked, "pause={pause_after}");
            assert_eq!(
                reference.best.test_score.to_bits(),
                outcome.best.test_score.to_bits(),
                "pause={pause_after}"
            );
            assert_eq!(reference.stats, outcome.stats, "pause={pause_after}");
        }
    }

    #[test]
    fn feedback_survives_a_pre_generate_snapshot() {
        use nada_llm::{FeedbackContext, FeedbackWinner};
        let nada = tiny_nada(31);
        let fb = FeedbackContext {
            round: 1,
            winners: vec![FeedbackWinner {
                code: nada.workload().seed_state_source().to_string(),
                score: 0.5,
            }],
            rejected_compile: 2,
            rejected_normalization: 1,
            accepted: 5,
        };
        // Direct: feedback attached, generate immediately.
        let direct = {
            let mut llm = MockLlm::gpt4(31);
            let mut session =
                SearchSession::new(&nada, DesignKind::State).with_feedback(fb.clone());
            session.generate(&mut llm).unwrap();
            session.snapshot().candidates
        };
        // Interrupted before Generate: the snapshot must carry the
        // feedback, or the resumed session would generate a different
        // (unbiased) pool.
        let text = SearchSession::new(&nada, DesignKind::State)
            .with_feedback(fb)
            .snapshot()
            .encode();
        let snap = SessionSnapshot::decode(&text).unwrap();
        let mut resumed = SearchSession::resume(&nada, snap).unwrap();
        let mut llm = MockLlm::gpt4(31);
        resumed.generate(&mut llm).unwrap();
        assert_eq!(resumed.snapshot().candidates, direct);
    }

    #[test]
    fn resume_rejects_a_different_pipeline() {
        let nada = tiny_nada(28);
        let mut llm = MockLlm::gpt4(28);
        let mut session = SearchSession::new(&nada, DesignKind::State);
        session.generate(&mut llm).unwrap();
        let snap = session.snapshot();

        let other = tiny_nada(29);
        let err = match SearchSession::resume(&other, snap) {
            Ok(_) => panic!("resume against a different pipeline must fail"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("different pipeline"));
    }

    #[test]
    fn stage_names_round_trip_exhaustively() {
        // `Stage::ALL` is the exhaustive variant list (the compiler pins
        // its length to the enum via the `Ord` ordering test below), so a
        // new stage that forgets its `from_name` arm fails here.
        for stage in Stage::ALL {
            assert_eq!(
                Stage::from_name(stage.name()),
                Some(stage),
                "`{}` does not round-trip",
                stage.name()
            );
        }
        assert_eq!(Stage::from_name("nope"), None);
        // Names are pairwise distinct (a copy-pasted name would alias two
        // stages in snapshots).
        for a in Stage::ALL {
            for b in Stage::ALL {
                assert_eq!(a.name() == b.name(), a == b);
            }
        }
    }

    #[test]
    fn stage_all_is_in_execution_order() {
        for pair in Stage::ALL.windows(2) {
            assert!(
                pair[0] < pair[1],
                "{:?} must precede {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn wrong_stage_errors_name_both_stages() {
        // Regression: the Done arm used to print "session is already
        // finalized" without naming either stage.
        for found in Stage::ALL {
            for requested in Stage::ALL {
                if found == requested {
                    continue;
                }
                let msg = WrongStage { found, requested }.to_string();
                assert!(
                    msg.contains(&format!("`{}`", found.name())),
                    "{msg:?} does not name the actual stage `{}`",
                    found.name()
                );
                assert!(
                    msg.contains(&format!("`{}`", requested.name())),
                    "{msg:?} does not name the requested stage `{}`",
                    requested.name()
                );
            }
        }
        let done = WrongStage {
            found: Stage::Done,
            requested: Stage::Generate,
        }
        .to_string();
        assert!(done.contains("already finalized"));
    }

    /// Serializes tests that observe the process-wide token meter, so a
    /// concurrently billing test never lands inside another's window.
    static METER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// A backend that bills a fixed number of tokens per completion into
    /// the process-wide meter, like the live HTTP clients do.
    struct BillingLlm {
        inner: MockLlm,
        per_call: u64,
    }

    impl LlmClient for BillingLlm {
        fn model_name(&self) -> &str {
            self.inner.model_name()
        }

        fn generate(&mut self, prompt: &nada_llm::Prompt) -> nada_llm::Completion {
            nada_llm::global_token_meter().record(nada_llm::TokenUsage {
                prompt_tokens: self.per_call / 2,
                completion_tokens: self.per_call - self.per_call / 2,
            });
            self.inner.generate(prompt)
        }
    }

    #[test]
    fn token_budget_truncates_generation_and_is_accounted() {
        let _window = METER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let nada = tiny_nada(29);
        let mut llm = BillingLlm {
            inner: MockLlm::perfect(29),
            per_call: 100,
        };
        let collector = CollectingObserver::new();
        let mut session = SearchSession::new(&nada, DesignKind::State)
            .with_budget(Budget::unlimited().with_max_token_cost(250));
        session.observe(&collector);
        // The hook checks spend before each serial completion: 0, 100,
        // 200 pass; 300 stops the batch. Three candidates out of eight.
        let n = session.generate(&mut llm).unwrap();
        assert_eq!(n, 3);
        assert_eq!(session.stats().llm_tokens_spent, 300);
        assert!(collector.count(|e| matches!(e, SearchEvent::BudgetExhausted { .. })) >= 1);
    }

    #[test]
    fn zero_billing_backends_never_trip_the_token_budget() {
        let _window = METER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let nada = tiny_nada(31);
        let mut llm = MockLlm::perfect(31);
        let mut session = SearchSession::new(&nada, DesignKind::State)
            .with_budget(Budget::unlimited().with_max_token_cost(1));
        let n = session.generate(&mut llm).unwrap();
        assert_eq!(n, nada.config().n_candidates);
        assert_eq!(session.stats().llm_tokens_spent, 0);
    }
}
