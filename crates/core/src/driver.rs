//! The multi-round feedback loop: [`SearchDriver`] runs
//! [`SearchSession`]s in sequence, feeding each round's ranked outcomes
//! back into the next round's prompt.
//!
//! The paper's pipeline is one-shot: generate, filter, train, rank. The
//! authors' follow-up work (arXiv:2508.16074) closes the loop — the LLM
//! sees what won and what got rejected before generating again. The
//! driver owns that loop and its cross-round state:
//!
//! * a [`HallOfFame`] of the top-K designs across all rounds,
//! * cumulative [`Budget`] spend (the epoch allowance is shared by every
//!   round, not reset),
//! * per-round [`RoundSummary`]s (plus the full [`SearchOutcome`]s for
//!   rounds run in this process).
//!
//! Every round boundary can persist a [`DriverCheckpoint`] through the
//! serde-shim text codec; [`SearchDriver::resume`] restarts a killed run
//! and — because each round's LLM is built fresh from the round index by
//! the caller's factory — the finished hall of fame is bit-identical to
//! an uninterrupted run's.

use crate::budget::Budget;
use crate::feedback::{feedback_for_round, DriverCheckpoint, HallEntry, HallOfFame, RoundSummary};
use crate::jobspec::JobSpec;
use crate::observer::{SearchEvent, SearchObserver};
use crate::pipeline::{Nada, SearchOutcome, SearchStats};
use crate::session::SearchSession;
use crate::snapshot::{config_fingerprint, SnapshotError};
use nada_llm::{DesignKind, LlmClient};
use std::fmt;
use std::path::{Path, PathBuf};

/// Builds the LLM for one round. Taking the *round index* (not a client)
/// is what makes interrupted runs resumable: round `k` gets an
/// identically-seeded client whether or not rounds `0..k` ran in this
/// process.
pub type LlmFactory<'f> = dyn FnMut(usize) -> Box<dyn LlmClient> + 'f;

/// Default hall-of-fame size (how many winners feed the next prompt).
pub const DEFAULT_HALL_CAPACITY: usize = 3;

/// Why a multi-round run could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// A checkpoint could not be decoded, or belongs to a different
    /// pipeline/design kind.
    Checkpoint(String),
    /// The checkpoint file could not be read or written.
    Io(String),
    /// All configured rounds have already run.
    RoundsExhausted,
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            DriverError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            DriverError::RoundsExhausted => write!(f, "all configured rounds have run"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<SnapshotError> for DriverError {
    fn from(e: SnapshotError) -> Self {
        DriverError::Checkpoint(e.0)
    }
}

/// What a finished multi-round run produced.
#[derive(Debug, Clone)]
pub struct DriverOutcome {
    /// Per-round summaries, round order.
    pub rounds: Vec<RoundSummary>,
    /// The top-K designs across all rounds, best first.
    pub hall: Vec<HallEntry>,
    /// Cumulative spend across every round.
    pub stats: SearchStats,
    /// Full outcomes for the rounds that ran in this process (resumed
    /// runs only re-run the remaining rounds, so earlier entries are
    /// absent).
    pub outcomes: Vec<(usize, SearchOutcome)>,
}

impl DriverOutcome {
    /// The best design across all rounds.
    pub fn best(&self) -> Option<&HallEntry> {
        self.hall.first()
    }

    /// Best-so-far score after each round (non-decreasing).
    pub fn best_so_far_curve(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.best_so_far).collect()
    }
}

/// An iterative, checkpointed, feedback-driven search over one [`Nada`]
/// pipeline.
pub struct SearchDriver<'a> {
    nada: &'a Nada,
    kind: DesignKind,
    rounds: usize,
    budget: Budget,
    checkpoint_path: Option<PathBuf>,
    observers: Vec<Box<dyn SearchObserver + 'a>>,
    // Cross-round state (exactly what a checkpoint carries).
    next_round: usize,
    hall: HallOfFame,
    summaries: Vec<RoundSummary>,
    stats: SearchStats,
    outcomes: Vec<(usize, SearchOutcome)>,
    /// The original design's evaluation, computed by the first round run
    /// in this process and injected into later rounds (training it is
    /// deterministic, so recomputing every round would only burn time).
    /// Not checkpointed: a resumed run re-derives it once.
    original: Option<crate::pipeline::DesignResult>,
    /// The job contract, embedded in every checkpoint so resumes can
    /// refuse mismatched flags (see [`DriverCheckpoint::verify_spec`]).
    spec: Option<JobSpec>,
}

impl<'a> SearchDriver<'a> {
    /// A fresh driver at round 0.
    pub fn new(nada: &'a Nada, kind: DesignKind) -> Self {
        Self {
            nada,
            kind,
            rounds: 1,
            budget: Budget::unlimited(),
            checkpoint_path: None,
            observers: Vec::new(),
            next_round: 0,
            hall: HallOfFame::new(DEFAULT_HALL_CAPACITY),
            summaries: Vec::new(),
            stats: SearchStats::default(),
            outcomes: Vec::new(),
            original: None,
            spec: None,
        }
    }

    /// Sets how many rounds the driver runs (builder style). On a resumed
    /// driver this can only *extend* the run — shrinking below the rounds
    /// already completed (or the checkpoint's configured total) is
    /// ignored, so forgetting `--rounds` on resume finishes the original
    /// plan instead of silently running nothing.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = self.rounds.max(rounds).max(1);
        self
    }

    /// Sets the spending limits (builder style). The *epoch* allowance is
    /// cumulative — shared by every round, never reset — while the
    /// *candidate* cap applies per round (it bounds one round's pool
    /// size, like `n_candidates` does).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets how many winners the hall of fame retains and feeds back
    /// (builder style).
    pub fn with_hall_capacity(mut self, capacity: usize) -> Self {
        self.hall = HallOfFame::new(capacity);
        self
    }

    /// Persists a checkpoint to `path` after every round (builder style).
    pub fn with_checkpoint_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Embeds the job contract in every checkpoint (builder style), so a
    /// later resume under different flags fails loudly instead of
    /// silently diverging. A resumed driver inherits the checkpoint's
    /// spec automatically.
    pub fn with_job_spec(mut self, spec: JobSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// The embedded job contract, if any.
    pub fn job_spec(&self) -> Option<&JobSpec> {
        self.spec.as_ref()
    }

    /// Registers an observer; it sees `RoundStarted`/`RoundFinished`
    /// plus every event of every round's session.
    pub fn observe(&mut self, observer: impl SearchObserver + 'a) -> &mut Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Which design kind this driver searches.
    pub fn kind(&self) -> DesignKind {
        self.kind
    }

    /// The next round the driver will run (== completed rounds).
    pub fn next_round(&self) -> usize {
        self.next_round
    }

    /// How many rounds the driver is configured to run.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The hall of fame accumulated so far, best first.
    pub fn hall(&self) -> &[HallEntry] {
        self.hall.entries()
    }

    /// Cumulative spend across completed rounds.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    // ---- checkpoint / resume ----------------------------------------------

    /// Captures all cross-round state at the current round boundary.
    pub fn checkpoint(&self) -> DriverCheckpoint {
        DriverCheckpoint {
            fingerprint: config_fingerprint(self.nada),
            kind: self.kind,
            next_round: self.next_round,
            rounds: self.rounds,
            hall_capacity: self.hall.capacity(),
            budget: self.budget,
            hall: self.hall.entries().to_vec(),
            summaries: self.summaries.clone(),
            stats: self.stats,
            spec: self.spec.clone(),
        }
    }

    /// Reconstructs a driver from a checkpoint taken against the same
    /// pipeline. The configured round count and budget are restored from
    /// the checkpoint; `with_rounds`/`with_budget` can still extend or
    /// replace them afterwards.
    pub fn resume(nada: &'a Nada, checkpoint: DriverCheckpoint) -> Result<Self, DriverError> {
        let expected = config_fingerprint(nada);
        if checkpoint.fingerprint != expected {
            return Err(DriverError::Checkpoint(format!(
                "checkpoint was taken from a different pipeline \
                 (fingerprint {:#x}, this pipeline is {:#x})",
                checkpoint.fingerprint, expected
            )));
        }
        let mut driver =
            SearchDriver::new(nada, checkpoint.kind).with_hall_capacity(checkpoint.hall_capacity);
        driver.rounds = checkpoint.rounds.max(checkpoint.next_round).max(1);
        driver.budget = checkpoint.budget;
        driver.next_round = checkpoint.next_round;
        for entry in checkpoint.hall {
            driver.hall.push_sorted(entry);
        }
        driver.summaries = checkpoint.summaries;
        driver.stats = checkpoint.stats;
        driver.spec = checkpoint.spec;
        Ok(driver)
    }

    /// Reads, decodes and resumes from a checkpoint file.
    pub fn resume_from_file(nada: &'a Nada, path: impl AsRef<Path>) -> Result<Self, DriverError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| DriverError::Io(format!("read {}: {e}", path.display())))?;
        let checkpoint = DriverCheckpoint::decode(&text)?;
        Self::resume(nada, checkpoint)
    }

    // ---- rounds -----------------------------------------------------------

    /// Runs the next round: a full [`SearchSession`] with feedback from
    /// every completed round, then hall-of-fame/summary/checkpoint
    /// updates. Returns the round's summary.
    pub fn run_round(&mut self, llm: &mut dyn LlmClient) -> Result<&RoundSummary, DriverError> {
        if self.next_round >= self.rounds {
            return Err(DriverError::RoundsExhausted);
        }
        let round = self.next_round;
        self.emit(&SearchEvent::RoundStarted {
            round,
            rounds: self.rounds,
        });

        // Each round spends from the shared allowance: the session sees
        // whatever epochs the previous rounds left over.
        let round_budget = Budget {
            max_candidates: self.budget.max_candidates,
            max_epochs: self
                .budget
                .max_epochs
                .map(|cap| cap.saturating_sub(self.stats.epochs_spent)),
            max_token_cost: self
                .budget
                .max_token_cost
                .map(|cap| cap.saturating_sub(self.stats.llm_tokens_spent)),
        };
        let outcome = {
            let mut session = SearchSession::new(self.nada, self.kind).with_budget(round_budget);
            if let Some(feedback) = feedback_for_round(round, &self.hall, &self.summaries) {
                session = session.with_feedback(feedback);
            }
            if let Some(original) = &self.original {
                session = session.with_original(original.clone());
            }
            for obs in &self.observers {
                session.observe(&**obs);
            }
            session
                .run(llm)
                .expect("a fresh session runs every stage exactly once")
        };
        if self.original.is_none() {
            self.original = Some(outcome.original.clone());
        }

        self.hall.absorb(round, &outcome);
        let best_so_far = match self.summaries.last() {
            Some(prev) if prev.best_so_far >= outcome.best.test_score => prev.best_so_far,
            _ => outcome.best.test_score,
        };
        let summary = RoundSummary {
            round,
            best_score: outcome.best.test_score,
            best_so_far,
            original_score: outcome.original.test_score,
            precheck: outcome.precheck,
            ranked: outcome.ranked.clone(),
            stats: outcome.stats,
        };
        self.accumulate(&outcome.stats);
        self.summaries.push(summary);
        self.outcomes.push((round, outcome));
        self.next_round += 1;
        self.emit(&SearchEvent::RoundFinished {
            round,
            best_score: self.summaries.last().expect("just pushed").best_score,
            best_so_far,
        });
        self.write_checkpoint()?;
        Ok(self.summaries.last().expect("just pushed"))
    }

    /// Drives every remaining round (stopping early when the cumulative
    /// epoch budget is spent) and returns the collected outcome.
    pub fn run(&mut self, make_llm: &mut LlmFactory<'_>) -> Result<DriverOutcome, DriverError> {
        while self.next_round < self.rounds {
            // Round 0 always runs; later rounds stop once the shared
            // allowance is gone (mirroring the session's own wave rule).
            if self.next_round > 0
                && (self.budget.epochs_exhausted(self.stats.epochs_spent)
                    || self.budget.tokens_exhausted(self.stats.llm_tokens_spent))
            {
                break;
            }
            let mut llm = make_llm(self.next_round);
            self.run_round(llm.as_mut())?;
        }
        Ok(DriverOutcome {
            rounds: self.summaries.clone(),
            hall: self.hall.entries().to_vec(),
            stats: self.stats,
            outcomes: std::mem::take(&mut self.outcomes),
        })
    }

    // ---- plumbing ----------------------------------------------------------

    fn accumulate(&mut self, round: &SearchStats) {
        self.stats.early_stopped += round.early_stopped;
        self.stats.fully_trained += round.fully_trained;
        self.stats.failed += round.failed;
        self.stats.skipped += round.skipped;
        self.stats.epochs_spent += round.epochs_spent;
        self.stats.epochs_saved += round.epochs_saved;
        self.stats.llm_tokens_spent += round.llm_tokens_spent;
    }

    fn write_checkpoint(&self) -> Result<(), DriverError> {
        let Some(path) = &self.checkpoint_path else {
            return Ok(());
        };
        let text = self.checkpoint().encode();
        // Write-then-rename so a crash mid-write never corrupts the only
        // copy of the previous round's checkpoint.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, text)
            .map_err(|e| DriverError::Io(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| DriverError::Io(format!("rename to {}: {e}", path.display())))?;
        Ok(())
    }

    fn emit(&self, event: &SearchEvent) {
        for obs in &self.observers {
            obs.on_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NadaConfig, RunScale};
    use crate::observer::CollectingObserver;
    use nada_llm::MockLlm;
    use nada_traces::dataset::DatasetKind;

    fn tiny_nada(seed: u64) -> Nada {
        Nada::new(NadaConfig::new(DatasetKind::Fcc, RunScale::Tiny, seed))
    }

    fn llm_factory(seed: u64) -> impl FnMut(usize) -> Box<dyn LlmClient> {
        move |round| {
            Box::new(MockLlm::gpt4(
                seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    #[test]
    fn single_round_driver_matches_a_plain_session() {
        let nada = tiny_nada(61);
        let mut factory = llm_factory(61);
        let driven = SearchDriver::new(&nada, DesignKind::State)
            .run(&mut factory)
            .unwrap();
        let mut llm = factory(0);
        let plain = nada.run_state_search(llm.as_mut());
        assert_eq!(driven.rounds.len(), 1);
        assert_eq!(
            driven.rounds[0].best_score.to_bits(),
            plain.best.test_score.to_bits()
        );
        assert_eq!(driven.rounds[0].ranked, plain.ranked);
        assert_eq!(driven.stats, plain.stats);
    }

    #[test]
    fn rounds_emit_events_and_build_a_hall() {
        let nada = tiny_nada(62);
        let collector = CollectingObserver::new();
        let mut driver = SearchDriver::new(&nada, DesignKind::State).with_rounds(2);
        driver.observe(&collector);
        let mut factory = llm_factory(62);
        let outcome = driver.run(&mut factory).unwrap();
        assert_eq!(outcome.rounds.len(), 2);
        assert!(!outcome.hall.is_empty());
        assert_eq!(
            collector.count(|e| matches!(e, SearchEvent::RoundStarted { .. })),
            2
        );
        assert_eq!(
            collector.count(|e| matches!(e, SearchEvent::RoundFinished { .. })),
            2
        );
        // Sessions ran inside: 5 stages per round.
        assert_eq!(
            collector.count(|e| matches!(e, SearchEvent::StageStarted { .. })),
            10
        );
        // Cumulative stats are the per-round sums.
        let spent: usize = outcome.rounds.iter().map(|r| r.stats.epochs_spent).sum();
        assert_eq!(outcome.stats.epochs_spent, spent);
    }

    #[test]
    fn cumulative_budget_spans_rounds() {
        let nada = tiny_nada(63);
        let mut driver = SearchDriver::new(&nada, DesignKind::State)
            .with_rounds(3)
            .with_budget(Budget::unlimited().with_max_epochs(1));
        let mut factory = llm_factory(63);
        let outcome = driver.run(&mut factory).unwrap();
        // Round 0 always runs (and overshoots the tiny allowance); later
        // rounds are skipped entirely.
        assert_eq!(outcome.rounds.len(), 1);
        assert!(outcome.stats.epochs_spent >= 1);
    }

    #[test]
    fn run_past_the_configured_rounds_errors() {
        let nada = tiny_nada(64);
        let mut driver = SearchDriver::new(&nada, DesignKind::State);
        let mut llm = MockLlm::perfect(64);
        driver.run_round(&mut llm).unwrap();
        assert!(matches!(
            driver.run_round(&mut llm),
            Err(DriverError::RoundsExhausted)
        ));
    }

    #[test]
    fn resume_restores_the_budget() {
        // Regression: the checkpoint used to drop the budget, so a
        // resumed run spent epochs its uninterrupted twin would not.
        let nada = tiny_nada(67);
        let mut factory = llm_factory(67);
        let budget = Budget::unlimited().with_max_epochs(1);
        let mut driver = SearchDriver::new(&nada, DesignKind::State)
            .with_rounds(3)
            .with_budget(budget);
        let mut llm = factory(0);
        driver.run_round(llm.as_mut()).unwrap();
        let mut resumed = SearchDriver::resume(&nada, driver.checkpoint()).unwrap();
        let outcome = resumed.run(&mut factory).unwrap();
        // The allowance was overspent in round 0, so — exactly like the
        // uninterrupted run — no further round runs.
        assert_eq!(outcome.rounds.len(), 1);
    }

    #[test]
    fn job_spec_survives_checkpoint_and_resume() {
        let nada = tiny_nada(68);
        let spec = JobSpec::new("abr", "FCC", 68);
        let driver = SearchDriver::new(&nada, DesignKind::State).with_job_spec(spec.clone());
        let ckpt = driver.checkpoint();
        assert!(ckpt.verify_spec(&spec).is_ok());
        let mut wrong = spec.clone();
        wrong.llm_model = "gpt-3.5".into();
        assert!(ckpt.verify_spec(&wrong).is_err());
        let resumed = SearchDriver::resume(&nada, ckpt).unwrap();
        assert_eq!(resumed.job_spec(), Some(&spec));
    }

    #[test]
    fn resume_rejects_a_different_pipeline() {
        let nada = tiny_nada(65);
        let driver = SearchDriver::new(&nada, DesignKind::State);
        let ckpt = driver.checkpoint();
        let other = tiny_nada(66);
        let err = match SearchDriver::resume(&other, ckpt) {
            Ok(_) => panic!("resume against a different pipeline must fail"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("different pipeline"));
    }
}
