//! Search observability: a typed event stream out of a running session.
//!
//! A [`SearchObserver`] registered on a [`crate::session::SearchSession`]
//! sees every stage transition, per-candidate verdict and budget cut as it
//! happens — this is what drives `nada-bench`'s live progress output, and
//! what a future dashboard or structured logger would hook into.
//!
//! Events are *observational only*: observers cannot influence the search,
//! and the search's results never depend on whether anyone is listening.
//! Per-candidate events are emitted from worker threads while a stage fans
//! out, so their interleaving across candidates is nondeterministic;
//! counts and per-candidate payloads are not. Stage-transition events are
//! always emitted from the session's own thread, in stage order.

use crate::session::Stage;
use std::sync::Mutex;

/// One thing that happened inside a search session.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchEvent {
    /// A stage began.
    StageStarted {
        /// The stage.
        stage: Stage,
    },
    /// A stage finished.
    StageFinished {
        /// The stage.
        stage: Stage,
    },
    /// The generation stage produced a candidate pool.
    PoolGenerated {
        /// Number of candidates generated.
        n: usize,
    },
    /// A candidate passed both pre-checks.
    CandidateAccepted {
        /// Candidate id.
        id: usize,
    },
    /// A candidate was rejected by a pre-check.
    CandidateRejected {
        /// Candidate id.
        id: usize,
        /// Human-readable rejection reason.
        reason: String,
    },
    /// A probe design finished (or failed) full training.
    ProbeTrained {
        /// Candidate id.
        id: usize,
        /// Training epochs the probe actually ran.
        epochs: usize,
        /// True when training errored mid-run.
        failed: bool,
    },
    /// The early-stopping classifier ruled on a screened design.
    EarlyStopVerdict {
        /// Candidate id.
        id: usize,
        /// True to keep training, false to stop at the early phase.
        keep: bool,
    },
    /// A screened design finished its training (early-stopped or full).
    ScreenTrained {
        /// Candidate id.
        id: usize,
        /// Training epochs the design actually ran.
        epochs: usize,
        /// True when it trained to completion (survived early stopping).
        completed: bool,
        /// True when training errored mid-run.
        failed: bool,
    },
    /// A finalist finished the full §3.1 protocol.
    FinalistEvaluated {
        /// Candidate id.
        id: usize,
        /// Final test score (`None` when training errored).
        score: Option<f64>,
    },
    /// The budget ran out mid-stage; the remainder of the stage was
    /// skipped.
    BudgetExhausted {
        /// The stage that was truncated.
        stage: Stage,
        /// Training epochs spent when the budget cut in.
        epochs_spent: usize,
        /// Work items (candidates or finalists) left unprocessed.
        skipped: usize,
    },
    /// A session was rebuilt from a snapshot, about to run `next_stage`.
    Resumed {
        /// The first stage the resumed session will run.
        next_stage: Stage,
    },
    /// A [`crate::driver::SearchDriver`] began a feedback round.
    RoundStarted {
        /// Zero-based round index.
        round: usize,
        /// Total rounds the driver is configured to run.
        rounds: usize,
    },
    /// A driver round finished (its session finalized and the hall of fame
    /// was updated).
    RoundFinished {
        /// Zero-based round index.
        round: usize,
        /// This round's best full-protocol score.
        best_score: f64,
        /// The best score across all rounds so far (non-decreasing).
        best_so_far: f64,
    },
}

/// A sink for [`SearchEvent`]s.
///
/// Implementations must be `Sync`: per-candidate events arrive
/// concurrently from the training workers. Use interior mutability
/// (atomics or a `Mutex`) to accumulate state.
pub trait SearchObserver: Sync {
    /// Called for every event the session emits.
    fn on_event(&self, event: &SearchEvent);
}

/// Shared observers: `session.observe(...)`/`driver.observe(...)` take
/// ownership, so an observer that must outlive one search (a metrics
/// bridge, a JSONL sink) is attached as an `Arc` clone.
impl<T: SearchObserver + Send + ?Sized> SearchObserver for std::sync::Arc<T> {
    fn on_event(&self, event: &SearchEvent) {
        (**self).on_event(event)
    }
}

/// Observer that invokes a closure per event.
pub struct FnObserver<F: Fn(&SearchEvent) + Sync>(pub F);

impl<F: Fn(&SearchEvent) + Sync> SearchObserver for FnObserver<F> {
    fn on_event(&self, event: &SearchEvent) {
        (self.0)(event)
    }
}

/// Observer that records every event (tests, debugging, post-hoc
/// analysis).
#[derive(Default)]
pub struct CollectingObserver {
    events: Mutex<Vec<SearchEvent>>,
}

impl CollectingObserver {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events seen so far, in arrival order.
    pub fn events(&self) -> Vec<SearchEvent> {
        self.events.lock().expect("observer lock").clone()
    }

    /// Number of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&SearchEvent) -> bool) -> usize {
        self.events
            .lock()
            .expect("observer lock")
            .iter()
            .filter(|e| pred(e))
            .count()
    }
}

impl SearchObserver for CollectingObserver {
    fn on_event(&self, event: &SearchEvent) {
        self.events
            .lock()
            .expect("observer lock")
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_records_in_order() {
        let c = CollectingObserver::new();
        c.on_event(&SearchEvent::StageStarted {
            stage: Stage::Generate,
        });
        c.on_event(&SearchEvent::PoolGenerated { n: 3 });
        assert_eq!(c.events().len(), 2);
        assert_eq!(
            c.count(|e| matches!(e, SearchEvent::PoolGenerated { .. })),
            1
        );
    }

    #[test]
    fn fn_observer_forwards() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        let obs = FnObserver(|_e: &SearchEvent| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        obs.on_event(&SearchEvent::StageFinished {
            stage: Stage::Probe,
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
