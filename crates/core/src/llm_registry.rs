//! Runtime LLM-backend selection: name → [`LlmClient`] factory.
//!
//! Mirrors [`crate::registry::WorkloadRegistry`]: the *choice* of model
//! serving is a runtime value, so every bench harness selects a backend
//! with `--llm mock|replay|http` instead of a code change. Built-ins:
//!
//! * `mock` — the Table 2-calibrated [`MockLlm`] (model names `gpt-4`,
//!   `gpt-3.5`, `perfect`), deterministic in the spec's seed;
//! * `replay` — a verified [`ReplayClient`] over an on-disk cassette
//!   (`--cassette PATH` required), the offline-CI path;
//! * `http` — the real chat-completions backend over the process-wide
//!   connection pool ([`nada_llm_http::PooledClient`]): endpoint from
//!   `NADA_API_BASE`, key from `NADA_API_KEY` only, pool width from
//!   `NADA_LLM_CONNS` (default: the scheduler-lane count), all dispatch
//!   gated by the shared rate-limit governor;
//! * `http-serial` — the same backend over a single connection
//!   ([`nada_llm_http::HttpClient`]), for debugging or strictly
//!   sequential endpoints.
//!
//! Any generating backend (`mock`, `http`) can be recorded by setting
//! `record` on the [`LlmSpec`]: the built client is wrapped in a
//! [`RecordingClient`] that appends the search's completions to the
//! cassette file, keyed by the request's *lane* (which search in the
//! harness run) and *round* (feedback-loop index). Replaying consumes the
//! same keys, which is what lets resumed multi-round runs rebuild round
//! `k`'s client and still replay bit-identically.

use nada_llm::{LlmClient, MockLlm, RecordingClient, ReplayClient};
use nada_llm_http::{HttpClient, PooledClient};
use std::fmt;
use std::path::PathBuf;
use std::sync::OnceLock;

/// Everything a harness knows about the LLM it wants, before lane/round
/// context is applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LlmSpec {
    /// Registry name of the backend (`mock`, `replay`, `http`, or a
    /// custom registration).
    pub backend: String,
    /// Model identifier (mock profile name or hosted model id).
    pub model: String,
    /// Cassette file: the replay source, or the recording target.
    pub cassette: Option<PathBuf>,
    /// Wrap the built client in a recorder appending to `cassette`.
    pub record: bool,
    /// Seed for deterministic backends. Callers pass the final, fully
    /// mixed per-search seed; the registry never remixes it, so mock
    /// results are bit-identical to constructing [`MockLlm`] directly.
    pub seed: u64,
}

impl LlmSpec {
    /// A plain mock spec (the default backend).
    pub fn mock(model: impl Into<String>, seed: u64) -> Self {
        Self {
            backend: "mock".to_string(),
            model: model.into(),
            cassette: None,
            record: false,
            seed,
        }
    }
}

/// One concrete build request: the spec plus which search (lane) and
/// feedback round the client will serve.
#[derive(Debug, Clone)]
pub struct LlmRequest<'a> {
    /// The harness-level spec.
    pub spec: &'a LlmSpec,
    /// Stable label of the search this client drives (e.g.
    /// `state/fcc/gpt-4`); keys cassette slices.
    pub lane: &'a str,
    /// Feedback-round index (0 for one-shot searches).
    pub round: usize,
}

/// Why a backend could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LlmBuildError(pub String);

impl fmt::Display for LlmBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "llm backend error: {}", self.0)
    }
}

impl std::error::Error for LlmBuildError {}

/// Constructor for a backend, given the full request.
type LlmFactory =
    Box<dyn Fn(&LlmRequest<'_>) -> Result<Box<dyn LlmClient>, LlmBuildError> + Send + Sync>;

/// A name → LLM-backend-constructor table.
pub struct LlmRegistry {
    entries: Vec<(String, LlmFactory)>,
}

impl LlmRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// The built-in backends: `mock`, `replay`, `http`.
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        r.register("mock", |req| {
            let mock = mock_for(&req.spec.model, req.spec.seed)?;
            maybe_record(Box::new(mock), req)
        });
        r.register("replay", |req| {
            if req.spec.record {
                return Err(LlmBuildError(
                    "recording needs a generating backend (`mock` or `http`), \
                     not `replay`"
                        .to_string(),
                ));
            }
            let path = req.spec.cassette.as_ref().ok_or_else(|| {
                LlmBuildError("the `replay` backend needs a cassette (--cassette PATH)".into())
            })?;
            let client = ReplayClient::from_file(path, req.lane, req.round as u64)
                .map_err(|e| LlmBuildError(format!("{}: {e}", path.display())))?;
            Ok(Box::new(client) as Box<dyn LlmClient>)
        });
        r.register("http", |req| {
            let client = PooledClient::from_env(&req.spec.model)
                .map_err(|e| LlmBuildError(e.to_string()))?;
            maybe_record(Box::new(client), req)
        });
        r.register("http-serial", |req| {
            let client =
                HttpClient::from_env(&req.spec.model).map_err(|e| LlmBuildError(e.to_string()))?;
            maybe_record(Box::new(client), req)
        });
        r
    }

    /// The process-wide built-in registry. Daemon lanes and harness
    /// turns resolve backends through this one instance instead of
    /// rebuilding a registry per turn — the underlying connection pool
    /// and rate governor are process-global either way, but sharing the
    /// registry keeps custom registrations (tests, embedders) visible to
    /// every lane.
    pub fn shared() -> &'static LlmRegistry {
        static SHARED: OnceLock<LlmRegistry> = OnceLock::new();
        SHARED.get_or_init(LlmRegistry::builtin)
    }

    /// Registers a constructor under `name`. A later registration with the
    /// same name shadows the earlier one.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&LlmRequest<'_>) -> Result<Box<dyn LlmClient>, LlmBuildError>
            + Send
            + Sync
            + 'static,
    ) {
        self.entries.push((name.into(), Box::new(factory)));
    }

    /// Builds the named backend for a request. Unknown names are an error
    /// listing what is registered.
    pub fn build(
        &self,
        name: &str,
        req: &LlmRequest<'_>,
    ) -> Result<Box<dyn LlmClient>, LlmBuildError> {
        let factory = self
            .entries
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, f)| f)
            .ok_or_else(|| {
                LlmBuildError(format!(
                    "unknown backend `{name}` (available: {})",
                    self.names().join(", ")
                ))
            })?;
        factory(req)
    }

    /// Registered names, first-registration order, shadowed duplicates
    /// omitted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for (n, _) in &self.entries {
            if !names.contains(&n.as_str()) {
                names.push(n);
            }
        }
        names
    }

    /// True when `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }
}

impl Default for LlmRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

/// The calibrated mock for a model name.
fn mock_for(model: &str, seed: u64) -> Result<MockLlm, LlmBuildError> {
    match model {
        "gpt-4" => Ok(MockLlm::gpt4(seed)),
        "gpt-3.5" => Ok(MockLlm::gpt35(seed)),
        "perfect" => Ok(MockLlm::perfect(seed)),
        other => Err(LlmBuildError(format!(
            "unknown mock model `{other}` (available: gpt-4, gpt-3.5, perfect)"
        ))),
    }
}

/// Wraps a generating backend in a persisting recorder when asked.
fn maybe_record(
    inner: Box<dyn LlmClient>,
    req: &LlmRequest<'_>,
) -> Result<Box<dyn LlmClient>, LlmBuildError> {
    if !req.spec.record {
        return Ok(inner);
    }
    let path = req.spec.cassette.as_ref().ok_or_else(|| {
        LlmBuildError("recording needs a cassette target (--cassette PATH)".into())
    })?;
    let recorder = RecordingClient::new(inner)
        .with_lane(req.lane, req.round as u64)
        .persist_to(path)
        .map_err(|e| LlmBuildError(format!("{}: {e}", path.display())))?;
    Ok(Box::new(recorder))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nada_llm::{Cassette, Prompt};

    fn req<'a>(spec: &'a LlmSpec, lane: &'a str, round: usize) -> LlmRequest<'a> {
        LlmRequest { spec, lane, round }
    }

    /// `unwrap_err` needs `T: Debug`, which trait objects lack.
    fn build_err(r: &LlmRegistry, name: &str, rq: &LlmRequest<'_>) -> LlmBuildError {
        match r.build(name, rq) {
            Ok(_) => panic!("expected `{name}` to fail"),
            Err(e) => e,
        }
    }

    #[test]
    fn builtins_resolve_to_their_names() {
        let r = LlmRegistry::builtin();
        assert_eq!(r.names(), vec!["mock", "replay", "http", "http-serial"]);
        assert!(r.contains("mock"));
        assert!(r.contains("http-serial"));
        let spec = LlmSpec::mock("gpt-4", 7);
        let err = build_err(&r, "claude", &req(&spec, "lane", 0));
        assert!(
            err.to_string().contains("mock, replay, http, http-serial"),
            "{err}"
        );
    }

    #[test]
    fn shared_registry_is_one_instance() {
        let a = LlmRegistry::shared() as *const LlmRegistry;
        let b = LlmRegistry::shared() as *const LlmRegistry;
        assert_eq!(a, b);
        assert!(LlmRegistry::shared().contains("http"));
    }

    #[test]
    fn mock_backend_matches_direct_construction_bit_for_bit() {
        let r = LlmRegistry::builtin();
        let spec = LlmSpec::mock("gpt-4", 1234);
        let mut built = r.build("mock", &req(&spec, "lane", 0)).unwrap();
        let mut direct = MockLlm::gpt4(1234);
        let prompt =
            Prompt::state("state s { input buffer_s: scalar; feature f = buffer_s / 10.0; }");
        for _ in 0..8 {
            assert_eq!(built.generate(&prompt), direct.generate(&prompt));
        }
        // Unknown mock models are a clear error, not a silent default.
        let bad = LlmSpec::mock("gpt-9", 1);
        assert!(r.build("mock", &req(&bad, "lane", 0)).is_err());
    }

    #[test]
    fn record_then_replay_flows_through_the_registry() {
        let dir = std::env::temp_dir().join(format!("nada-llmreg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reg.cassette");
        let prompt =
            Prompt::state("state s { input buffer_s: scalar; feature f = buffer_s / 10.0; }");
        let r = LlmRegistry::builtin();

        let mut spec = LlmSpec::mock("perfect", 9);
        spec.record = true;
        spec.cassette = Some(path.clone());
        let recorded: Vec<_> = {
            let mut client = r.build("mock", &req(&spec, "reg-test", 2)).unwrap();
            (0..3).map(|_| client.generate(&prompt)).collect()
        }; // recorder drops → flushes

        let mut replay_spec = LlmSpec::mock("perfect", 9);
        replay_spec.backend = "replay".into();
        replay_spec.cassette = Some(path.clone());
        let mut replayed = r
            .build("replay", &req(&replay_spec, "reg-test", 2))
            .unwrap();
        for c in &recorded {
            assert_eq!(&replayed.generate(&prompt), c);
        }
        assert_eq!(Cassette::load(&path).unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn misconfigured_specs_error_clearly() {
        let r = LlmRegistry::builtin();
        // replay without a cassette
        let mut spec = LlmSpec::mock("gpt-4", 1);
        spec.backend = "replay".into();
        let err = build_err(&r, "replay", &req(&spec, "lane", 0));
        assert!(err.to_string().contains("--cassette"), "{err}");
        // record without a cassette target
        let mut spec = LlmSpec::mock("gpt-4", 1);
        spec.record = true;
        let err = build_err(&r, "mock", &req(&spec, "lane", 0));
        assert!(err.to_string().contains("--cassette"), "{err}");
        // record over replay is contradictory
        let mut spec = LlmSpec::mock("gpt-4", 1);
        spec.backend = "replay".into();
        spec.record = true;
        spec.cassette = Some(PathBuf::from("/tmp/x.cassette"));
        let err = build_err(&r, "replay", &req(&spec, "lane", 0));
        assert!(err.to_string().contains("generating backend"), "{err}");
    }

    #[test]
    fn custom_registrations_shadow_builtins() {
        let mut r = LlmRegistry::builtin();
        r.register("mock", |req| {
            Ok(Box::new(MockLlm::perfect(req.spec.seed)) as Box<dyn LlmClient>)
        });
        let spec = LlmSpec::mock("gpt-4", 5);
        let client = r.build("mock", &req(&spec, "lane", 0)).unwrap();
        assert_eq!(client.model_name(), "perfect");
        assert_eq!(r.names(), vec!["mock", "replay", "http", "http-serial"]);
    }
}
