//! Process-wide design-fingerprint → score cache.
//!
//! The LLM proposes the same designs over and over — across rounds of one
//! search and across tenants running overlapping searches. Training is
//! fully deterministic given `(config fingerprint, design code, seed)`, so
//! a repeated evaluation is pure waste: the cache stores the *complete*
//! training result keyed by that triple and replays it bit-identically.
//!
//! Two tiers mirror the two deterministic evaluation shapes in the
//! pipeline:
//!
//! * **full** — `Nada::evaluate_design_full` (finalists, the original
//!   baseline). Its per-seed derivation is candidate-*independent*
//!   (`cfg.seed + 1000 + i`), so the key is just the design identity.
//! * **probe** — short `train_design` probes, whose seed *is*
//!   candidate-dependent (`design_seed(id)`), so the seed joins the key.
//!
//! Screening is deliberately uncached: it threads a stateful
//! `DesignTrainer` through budget accounting and early-stop decisions that
//! depend on sibling candidates, so its work is not a pure function of the
//! design alone.
//!
//! Keys are full composed strings (not hashes) — a collision would silently
//! corrupt a tenant's search, so we spend the memory and keep lookups
//! exact. [`ScoreCache`] is the shared store (one per process, or one per
//! daemon); [`CacheView`] is a per-job handle that adds hit/miss counters
//! so every tenant can see what the cache did for them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::train::TrainOutcome;

/// Process-wide cache telemetry (`nada-obs`), aggregated across every
/// view and store in the process. Purely observational — the per-view
/// counters below stay the per-job source of truth.
struct CacheMetrics {
    hits: Arc<nada_obs::Counter>,
    misses: Arc<nada_obs::Counter>,
    inserts: Arc<nada_obs::Counter>,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CacheMetrics {
        hits: nada_obs::counter("score_cache_hits_total"),
        misses: nada_obs::counter("score_cache_misses_total"),
        inserts: nada_obs::counter("score_cache_inserts_total"),
    })
}

/// Shared, thread-safe store of deterministic evaluation results.
#[derive(Default)]
pub struct ScoreCache {
    full: Mutex<HashMap<String, (Vec<TrainOutcome>, f64)>>,
    probe: Mutex<HashMap<String, TrainOutcome>>,
}

impl ScoreCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached entries across both tiers.
    pub fn len(&self) -> usize {
        self.full.lock().unwrap().len() + self.probe.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A per-job window onto a [`ScoreCache`]: same shared entries, private
/// hit/miss counters.
pub struct CacheView {
    shared: Arc<ScoreCache>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheView {
    pub fn new(shared: Arc<ScoreCache>) -> Self {
        Self {
            shared,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A view over a fresh private cache — single-tenant processes that
    /// still want within-run dedup (e.g. the original baseline across
    /// resumed rounds).
    pub fn private() -> Self {
        Self::new(Arc::new(ScoreCache::new()))
    }

    /// The store this view shares with sibling jobs.
    pub fn shared(&self) -> &Arc<ScoreCache> {
        &self.shared
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub(crate) fn lookup_full(&self, key: &str) -> Option<(Vec<TrainOutcome>, f64)> {
        let hit = self.shared.full.lock().unwrap().get(key).cloned();
        self.count(hit.is_some());
        hit
    }

    pub(crate) fn insert_full(&self, key: String, value: (Vec<TrainOutcome>, f64)) {
        cache_metrics().inserts.inc();
        self.shared.full.lock().unwrap().insert(key, value);
    }

    pub(crate) fn lookup_probe(&self, key: &str) -> Option<TrainOutcome> {
        let hit = self.shared.probe.lock().unwrap().get(key).cloned();
        self.count(hit.is_some());
        hit
    }

    pub(crate) fn insert_probe(&self, key: String, value: TrainOutcome) {
        cache_metrics().inserts.inc();
        self.shared.probe.lock().unwrap().insert(key, value);
    }

    fn count(&self, hit: bool) {
        let metrics = cache_metrics();
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            metrics.hits.inc();
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            metrics.misses.inc();
        }
    }
}

/// Cache key for a full-protocol evaluation (seeds derived from the config
/// alone). `state_identity` is the design's source text — the state program
/// for state candidates, the workload's seed state for architecture
/// candidates — and `arch_debug` the compiled architecture's canonical
/// `Debug` form.
pub fn full_key(fingerprint: u64, state_identity: &str, arch_debug: &str) -> String {
    format!("{fingerprint:016x}|full|{arch_debug}|{state_identity}")
}

/// Cache key for a single probe run at an explicit seed.
pub fn probe_key(fingerprint: u64, state_identity: &str, arch_debug: &str, seed: u64) -> String {
    format!("{fingerprint:016x}|probe|{seed:016x}|{arch_debug}|{state_identity}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_share_entries_but_not_counters() {
        let store = Arc::new(ScoreCache::new());
        let a = CacheView::new(store.clone());
        let b = CacheView::new(store.clone());

        assert!(a.lookup_probe("k").is_none());
        a.insert_probe(
            "k".into(),
            TrainOutcome {
                reward_curve: vec![1.0],
                checkpoints: vec![],
            },
        );
        let hit = b.lookup_probe("k").expect("b sees a's insert");
        assert_eq!(hit.reward_curve, vec![1.0]);

        assert_eq!((a.hits(), a.misses()), (0, 1));
        assert_eq!((b.hits(), b.misses()), (1, 0));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn keys_separate_tiers_seeds_and_designs() {
        let keys = [
            full_key(1, "state s {}", "arch"),
            full_key(2, "state s {}", "arch"),
            full_key(1, "state t {}", "arch"),
            probe_key(1, "state s {}", "arch", 7),
            probe_key(1, "state s {}", "arch", 8),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
