//! Run configuration: one struct, two scales.

use nada_dsl::FuzzConfig;
use nada_nn::A2cConfig;
use nada_traces::dataset::{DatasetKind, DatasetScale};

/// How big a run is. The paper's numbers (3 000 candidates, 40 000 epochs,
/// 5 seeds) need a cluster; `Quick` preserves every pipeline stage and all
/// relative comparisons at workstation scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RunScale {
    /// Paper-scale counts (Table 1 epochs, 3 000 candidates, 5 seeds).
    Paper,
    /// Workstation-scale: reduced candidates/epochs/seeds, width-reduced
    /// networks, quick datasets.
    Quick,
    /// Minimal settings for unit tests.
    Tiny,
}

impl RunScale {
    /// The scale's CLI/wire name.
    pub fn name(&self) -> &'static str {
        match self {
            RunScale::Paper => "paper",
            RunScale::Quick => "quick",
            RunScale::Tiny => "tiny",
        }
    }

    /// Inverse of [`RunScale::name`], case-insensitively.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "paper" => Some(RunScale::Paper),
            "quick" => Some(RunScale::Quick),
            "tiny" => Some(RunScale::Tiny),
            _ => None,
        }
    }
}

/// Complete configuration of a NADA run on one dataset.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NadaConfig {
    /// Target network environment.
    pub dataset: DatasetKind,
    /// Run scale.
    pub scale: RunScale,
    /// Number of LLM candidates to generate per design kind.
    pub n_candidates: usize,
    /// RL training epochs (one epoch = one episode batch).
    pub train_epochs: usize,
    /// Epochs between checkpoint evaluations (Table 1's "Test Interval").
    pub test_interval: usize,
    /// Episodes per A2C update batch.
    pub episodes_per_epoch: usize,
    /// Independent training sessions per design (paper: 5).
    pub n_seeds: usize,
    /// Early-phase epochs fed to the early-stopping model (paper: first
    /// 10 000 of 40 000).
    pub early_epochs: usize,
    /// Designs fully trained up-front to fit the early-stopping model.
    pub n_probe: usize,
    /// Width divisor applied to architectures (1 = paper widths).
    pub arch_scale_factor: usize,
    /// Number of test traces used per checkpoint evaluation (caps cost).
    pub eval_traces: usize,
    /// A2C hyperparameters (`a2c.entropy_coeff` is the anneal start).
    pub a2c: A2cConfig,
    /// Entropy bonus at the end of training (linear anneal).
    pub entropy_end: f32,
    /// Normalization-check fuzzing parameters (threshold T = 100).
    pub fuzz: FuzzConfig,
    /// Master seed.
    pub seed: u64,
}

impl NadaConfig {
    /// Builds the configuration for a dataset at the given scale, deriving
    /// epoch counts from the paper's Table 1.
    pub fn new(dataset: DatasetKind, scale: RunScale, seed: u64) -> Self {
        let spec = dataset.paper_spec();
        match scale {
            RunScale::Paper => Self {
                dataset,
                scale,
                n_candidates: 3_000,
                train_epochs: spec.train_epochs,
                test_interval: spec.test_interval,
                episodes_per_epoch: 4,
                n_seeds: 5,
                early_epochs: spec.train_epochs / 4,
                n_probe: 64,
                arch_scale_factor: 1,
                eval_traces: usize::MAX,
                a2c: A2cConfig {
                    lr: 1e-3,
                    entropy_coeff: 0.3,
                    ..A2cConfig::default()
                },
                entropy_end: 0.02,
                fuzz: FuzzConfig::default(),
                seed,
            },
            RunScale::Quick => Self {
                dataset,
                scale,
                n_candidates: 48,
                train_epochs: (spec.train_epochs / 50).max(400),
                test_interval: (spec.test_interval / 25).max(10),
                episodes_per_epoch: 4,
                n_seeds: 3,
                early_epochs: (spec.train_epochs / 200).max(100),
                n_probe: 10,
                arch_scale_factor: 8,
                eval_traces: 6,
                a2c: A2cConfig {
                    lr: 1e-3,
                    entropy_coeff: 0.3,
                    ..A2cConfig::default()
                },
                entropy_end: 0.02,
                fuzz: FuzzConfig::default(),
                seed,
            },
            RunScale::Tiny => Self {
                dataset,
                scale,
                n_candidates: 8,
                train_epochs: 30,
                test_interval: 10,
                episodes_per_epoch: 1,
                n_seeds: 2,
                early_epochs: 10,
                n_probe: 3,
                arch_scale_factor: 16,
                eval_traces: 2,
                a2c: A2cConfig {
                    lr: 2e-3,
                    ..A2cConfig::default()
                },
                entropy_end: 0.01,
                fuzz: FuzzConfig::default(),
                seed,
            },
        }
    }

    /// Matching dataset-synthesis scale.
    pub fn dataset_scale(&self) -> DatasetScale {
        match self.scale {
            RunScale::Paper => DatasetScale::Paper,
            RunScale::Quick => DatasetScale::Quick,
            RunScale::Tiny => DatasetScale::Tiny,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table1() {
        let cfg = NadaConfig::new(DatasetKind::Fcc, RunScale::Paper, 0);
        assert_eq!(cfg.train_epochs, 40_000);
        assert_eq!(cfg.test_interval, 500);
        assert_eq!(cfg.n_seeds, 5);
        assert_eq!(cfg.n_candidates, 3_000);
        let sl = NadaConfig::new(DatasetKind::Starlink, RunScale::Paper, 0);
        assert_eq!(sl.train_epochs, 4_000);
        assert_eq!(sl.test_interval, 100);
    }

    #[test]
    fn quick_scale_is_proportional() {
        let cfg = NadaConfig::new(DatasetKind::Fcc, RunScale::Quick, 0);
        assert!(cfg.train_epochs < 1_000);
        assert!(cfg.early_epochs < cfg.train_epochs);
        assert!(cfg.test_interval < cfg.train_epochs);
    }

    #[test]
    fn early_phase_is_a_prefix() {
        for scale in [RunScale::Paper, RunScale::Quick, RunScale::Tiny] {
            for ds in DatasetKind::ALL {
                let cfg = NadaConfig::new(ds, scale, 1);
                assert!(
                    cfg.early_epochs <= cfg.train_epochs,
                    "{ds:?}/{scale:?}: early {} > total {}",
                    cfg.early_epochs,
                    cfg.train_epochs
                );
            }
        }
    }
}
