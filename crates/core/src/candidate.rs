//! Candidate designs and their lifecycle.

use nada_dsl::{CompiledState, DslError};
use nada_llm::DesignKind;
use nada_nn::ArchConfig;

// Re-export for downstream signatures.
pub use nada_dsl::interp::CompiledState as StateDesign;

/// One LLM-generated design, as it enters the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Stable index within its generation batch.
    pub id: usize,
    /// State or architecture.
    pub kind: DesignKind,
    /// The generated code block.
    pub code: String,
    /// The model's chain-of-thought text, if any.
    pub reasoning: Option<String>,
}

/// A candidate that survived the pre-checks, compiled to its executable form.
#[derive(Debug, Clone)]
pub enum CompiledDesign {
    /// A compiled state program.
    State(Box<CompiledState>),
    /// A compiled architecture description.
    Arch(ArchConfig),
}

impl CompiledDesign {
    /// The design kind.
    pub fn kind(&self) -> DesignKind {
        match self {
            CompiledDesign::State(_) => DesignKind::State,
            CompiledDesign::Arch(_) => DesignKind::Architecture,
        }
    }
}

/// Why a candidate was filtered out before training.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// Failed the compilation check (lex/parse/check/trial-run error).
    CompileError(DslError),
    /// Failed the normalization fuzz check: a feature exceeded `T`.
    Unnormalized {
        /// Offending feature name.
        feature: String,
        /// Observed magnitude.
        value: f64,
    },
    /// The fuzzer triggered a runtime error the trial run missed.
    FuzzEvalError(DslError),
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::CompileError(e) => write!(f, "compilation check failed: {e}"),
            RejectReason::Unnormalized { feature, value } => {
                write!(
                    f,
                    "normalization check failed: `{feature}` reached {value:.3e}"
                )
            }
            RejectReason::FuzzEvalError(e) => write!(f, "fuzzing triggered runtime error: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reasons_render() {
        let r = RejectReason::Unnormalized {
            feature: "raw".into(),
            value: 2.9e7,
        };
        assert!(r.to_string().contains("raw"));
        assert!(r.to_string().contains("normalization"));
    }
}
