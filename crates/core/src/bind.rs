//! Binding simulator observations to state-program inputs.
//!
//! The DSL's [`nada_dsl::abr_schema`] declares nine inputs in a fixed
//! order; [`observation_inputs`] produces exactly that binding from a
//! simulator [`Observation`]. This is the only place where the two vocabularies
//! meet, so schema evolution is a one-file change.

use nada_dsl::Value;
use nada_sim::obs::Observation;

/// Converts an observation into the schema-ordered input binding.
pub fn observation_inputs(obs: &Observation) -> Vec<Value> {
    vec![
        Value::Vector(obs.throughput_mbps.clone()),
        Value::Vector(obs.download_time_s.clone()),
        Value::Vector(obs.buffer_history_s.clone()),
        Value::Vector(obs.next_chunk_sizes_bytes.clone()),
        Value::Scalar(obs.buffer_s),
        Value::Scalar(obs.chunks_remaining as f64),
        Value::Scalar(obs.total_chunks as f64),
        Value::Scalar(obs.last_bitrate_kbps),
        Value::Scalar(obs.max_bitrate_kbps()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nada_dsl::{abr_schema, seeds};
    use nada_sim::obs::HISTORY_LEN;

    fn sample_obs() -> Observation {
        Observation {
            throughput_mbps: vec![4.0; HISTORY_LEN],
            download_time_s: vec![1.5; HISTORY_LEN],
            buffer_history_s: vec![12.0; HISTORY_LEN],
            next_chunk_sizes_bytes: vec![500_000.0; 6],
            buffer_s: 22.0,
            chunks_remaining: 24,
            total_chunks: 48,
            last_bitrate_kbps: 1200.0,
            ladder_kbps: vec![300.0, 750.0, 1200.0, 1850.0, 2850.0, 4300.0],
        }
    }

    #[test]
    fn binding_matches_schema_order_and_shapes() {
        let inputs = observation_inputs(&sample_obs());
        let schema = abr_schema();
        assert_eq!(inputs.len(), schema.len());
        for (value, spec) in inputs.iter().zip(schema.specs()) {
            let ok = match spec.ty {
                nada_dsl::InputType::Scalar => matches!(value, Value::Scalar(_)),
                nada_dsl::InputType::Vec(n) => {
                    matches!(value, Value::Vector(v) if v.len() == n)
                }
            };
            assert!(ok, "binding shape mismatch for `{}`", spec.name);
        }
    }

    #[test]
    fn pensieve_seed_state_evaluates_on_real_binding() {
        let state = seeds::pensieve_state();
        let features = state.eval(&observation_inputs(&sample_obs())).unwrap();
        assert_eq!(features.len(), 6);
        // Spot-check Pensieve's normalization: buffer 22 s / 10 = 2.2.
        assert_eq!(features[1], Value::Scalar(2.2));
        // last quality: 1200/4300.
        assert_eq!(features[0], Value::Scalar(1200.0 / 4300.0));
    }
}
