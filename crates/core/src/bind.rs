//! Binding environment observations to state-program inputs.
//!
//! Environments emit observations as declared field values
//! ([`nada_sim::netenv::ObsValue`]) in their spec's order; state programs
//! compile against an [`nada_dsl::InputSchema`] mirroring that spec. The
//! binding is therefore purely positional — no workload field names appear
//! anywhere in the pipeline. This is the only place where the two
//! vocabularies meet, so schema evolution stays a one-file change per
//! workload.

use nada_dsl::Value;
use nada_sim::netenv::ObsValue;
use nada_sim::obs::Observation;

/// Converts declared observation values into the schema-ordered DSL
/// binding.
pub fn binding_values(obs: &[ObsValue]) -> Vec<Value> {
    obs.iter()
        .map(|v| match v {
            ObsValue::Scalar(x) => Value::Scalar(*x),
            ObsValue::Vector(xs) => Value::Vector(xs.clone()),
        })
        .collect()
}

/// ABR convenience: the binding for a typed simulator observation.
pub fn observation_inputs(obs: &Observation) -> Vec<Value> {
    binding_values(&obs.field_values())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nada_dsl::{abr_schema, seeds};
    use nada_sim::obs::HISTORY_LEN;

    fn sample_obs() -> Observation {
        Observation {
            throughput_mbps: vec![4.0; HISTORY_LEN],
            download_time_s: vec![1.5; HISTORY_LEN],
            buffer_history_s: vec![12.0; HISTORY_LEN],
            next_chunk_sizes_bytes: vec![500_000.0; 6],
            buffer_s: 22.0,
            chunks_remaining: 24,
            total_chunks: 48,
            last_bitrate_kbps: 1200.0,
            ladder_kbps: vec![300.0, 750.0, 1200.0, 1850.0, 2850.0, 4300.0],
        }
    }

    #[test]
    fn binding_matches_schema_order_and_shapes() {
        let inputs = observation_inputs(&sample_obs());
        let schema = abr_schema();
        assert_eq!(inputs.len(), schema.len());
        for (value, spec) in inputs.iter().zip(schema.specs()) {
            let ok = match spec.ty {
                nada_dsl::InputType::Scalar => matches!(value, Value::Scalar(_)),
                nada_dsl::InputType::Vec(n) => {
                    matches!(value, Value::Vector(v) if v.len() == n)
                }
            };
            assert!(ok, "binding shape mismatch for `{}`", spec.name);
        }
    }

    #[test]
    fn pensieve_seed_state_evaluates_on_real_binding() {
        let state = seeds::pensieve_state();
        let features = state.eval(&observation_inputs(&sample_obs())).unwrap();
        assert_eq!(features.len(), 6);
        // Spot-check Pensieve's normalization: buffer 22 s / 10 = 2.2.
        assert_eq!(features[1], Value::Scalar(2.2));
        // last quality: 1200/4300.
        assert_eq!(features[0], Value::Scalar(1200.0 / 4300.0));
    }

    #[test]
    fn binding_is_positional_over_declared_values() {
        let obs = vec![ObsValue::Vector(vec![1.0, 2.0]), ObsValue::Scalar(3.0)];
        let values = binding_values(&obs);
        assert_eq!(
            values,
            vec![Value::Vector(vec![1.0, 2.0]), Value::Scalar(3.0)]
        );
    }
}
