//! Binding environment observations to state-program inputs.
//!
//! Environments emit observations as declared field values
//! ([`nada_sim::netenv::ObsValue`]) in their spec's order; state programs
//! compile against an [`nada_dsl::InputSchema`] mirroring that spec. The
//! binding is therefore purely positional — no workload field names appear
//! anywhere in the pipeline. This is the only place where the two
//! vocabularies meet, so schema evolution stays a one-file change per
//! workload.

use nada_dsl::Value;
use nada_sim::netenv::{NetEnv, ObsValue, StepOutcome};
use nada_sim::obs::Observation;

/// Converts declared observation values into the schema-ordered DSL
/// binding.
///
/// Allocates a fresh binding per call; hot loops (one binding per decision
/// step) should hold a [`BindingScratch`] instead.
pub fn binding_values(obs: &[ObsValue]) -> Vec<Value> {
    obs.iter()
        .map(|v| match v {
            ObsValue::Scalar(x) => Value::Scalar(*x),
            ObsValue::Vector(xs) => Value::Vector(xs.clone()),
        })
        .collect()
}

/// [`binding_values`] writing into a reusable binding, recycling each
/// slot's existing allocation. Steady-state use (same field shapes every
/// step, as the [`NetEnv`] contract guarantees) performs no heap
/// allocation.
pub fn bind_into(obs: &[ObsValue], values: &mut Vec<Value>) {
    values.resize(obs.len(), Value::Scalar(0.0));
    for (slot, v) in values.iter_mut().zip(obs) {
        match v {
            ObsValue::Scalar(x) => match slot {
                Value::Scalar(s) => *s = *x,
                other => *other = Value::Scalar(*x),
            },
            ObsValue::Vector(xs) => match slot {
                Value::Vector(dst) => {
                    dst.clear();
                    dst.extend_from_slice(xs);
                }
                other => *other = Value::Vector(xs.clone()),
            },
        }
    }
}

/// One environment's reusable observation-to-binding pipeline: the
/// environment writes observations into the scratch in place
/// ([`NetEnv::reset_into`]/[`NetEnv::step_into`]), and the scratch rebinds
/// them positionally to DSL values — zero steady-state allocation, where
/// the old `binding_values(&env.step(a).obs)` shape allocated one
/// observation vector plus one value per field per decision step.
#[derive(Debug, Clone, Default)]
pub struct BindingScratch {
    obs: Vec<ObsValue>,
    values: Vec<Value>,
}

impl BindingScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets `env` and captures its initial observation.
    pub fn reset(&mut self, env: &mut dyn NetEnv) {
        env.reset_into(&mut self.obs);
        bind_into(&self.obs, &mut self.values);
    }

    /// Steps `env`, capturing the next observation.
    pub fn step(&mut self, env: &mut dyn NetEnv, action: usize) -> StepOutcome {
        let out = env.step_into(action, &mut self.obs);
        bind_into(&self.obs, &mut self.values);
        out
    }

    /// The current schema-ordered DSL binding.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

/// ABR convenience: the binding for a typed simulator observation.
pub fn observation_inputs(obs: &Observation) -> Vec<Value> {
    binding_values(&obs.field_values())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nada_dsl::{abr_schema, seeds};
    use nada_sim::obs::HISTORY_LEN;

    fn sample_obs() -> Observation {
        Observation {
            throughput_mbps: vec![4.0; HISTORY_LEN],
            download_time_s: vec![1.5; HISTORY_LEN],
            buffer_history_s: vec![12.0; HISTORY_LEN],
            next_chunk_sizes_bytes: vec![500_000.0; 6],
            buffer_s: 22.0,
            chunks_remaining: 24,
            total_chunks: 48,
            last_bitrate_kbps: 1200.0,
            ladder_kbps: vec![300.0, 750.0, 1200.0, 1850.0, 2850.0, 4300.0],
        }
    }

    #[test]
    fn binding_matches_schema_order_and_shapes() {
        let inputs = observation_inputs(&sample_obs());
        let schema = abr_schema();
        assert_eq!(inputs.len(), schema.len());
        for (value, spec) in inputs.iter().zip(schema.specs()) {
            let ok = match spec.ty {
                nada_dsl::InputType::Scalar => matches!(value, Value::Scalar(_)),
                nada_dsl::InputType::Vec(n) => {
                    matches!(value, Value::Vector(v) if v.len() == n)
                }
            };
            assert!(ok, "binding shape mismatch for `{}`", spec.name);
        }
    }

    #[test]
    fn pensieve_seed_state_evaluates_on_real_binding() {
        let state = seeds::pensieve_state();
        let features = state.eval(&observation_inputs(&sample_obs())).unwrap();
        assert_eq!(features.len(), 6);
        // Spot-check Pensieve's normalization: buffer 22 s / 10 = 2.2.
        assert_eq!(features[1], Value::Scalar(2.2));
        // last quality: 1200/4300.
        assert_eq!(features[0], Value::Scalar(1200.0 / 4300.0));
    }

    #[test]
    fn binding_is_positional_over_declared_values() {
        let obs = vec![ObsValue::Vector(vec![1.0, 2.0]), ObsValue::Scalar(3.0)];
        let values = binding_values(&obs);
        assert_eq!(
            values,
            vec![Value::Vector(vec![1.0, 2.0]), Value::Scalar(3.0)]
        );
    }

    #[test]
    fn bind_into_matches_binding_values_and_reuses_slots() {
        let obs = vec![
            ObsValue::Vector(vec![1.0, 2.0]),
            ObsValue::Scalar(3.0),
            ObsValue::Vector(vec![4.0]),
        ];
        // Start from mis-shaped, mis-sized contents on purpose.
        let mut reused = vec![Value::Scalar(9.0); 5];
        bind_into(&obs, &mut reused);
        assert_eq!(reused, binding_values(&obs));
        // Steady state: same shapes again — values refreshed in place.
        let obs2 = vec![
            ObsValue::Vector(vec![7.0, 8.0]),
            ObsValue::Scalar(0.5),
            ObsValue::Vector(vec![6.0]),
        ];
        bind_into(&obs2, &mut reused);
        assert_eq!(reused, binding_values(&obs2));
    }

    #[test]
    fn binding_scratch_tracks_an_environment_episode() {
        use nada_sim::cc::{CcEnv, CcReward};
        use nada_traces::Trace;
        let trace = Trace::from_uniform("flat", 1.0, &[5.0; 300]).unwrap();
        let mut a = CcEnv::new(&trace, 10, CcReward::default(), 3);
        let mut b = CcEnv::new(&trace, 10, CcReward::default(), 3);

        let mut scratch = BindingScratch::new();
        scratch.reset(&mut a);
        assert_eq!(scratch.values(), &binding_values(&b.reset())[..]);
        for step in 0..10 {
            let out = scratch.step(&mut a, step % 7);
            let reference = b.step(step % 7);
            assert_eq!(out.reward, reference.reward);
            assert_eq!(out.done, reference.done);
            assert_eq!(scratch.values(), &binding_values(&reference.obs)[..]);
        }
    }
}
