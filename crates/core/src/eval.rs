//! Checkpoint evaluation: greedy policy over held-out traces.
//!
//! Evaluations run the workload's deterministic environments (for ABR,
//! Pensieve's `fixed_env.py` semantics — trace start, no delay noise);
//! emulation evaluations (Table 4) run the same policies through the
//! workload's emulation-fidelity environments when it has them. Stressed
//! evaluations score the same policy across a distribution of perturbed
//! traces ([`nada_traces::PerturbConfig`]) so finalists are judged on
//! conditions the search never saw.

use crate::bind::BindingScratch;
use crate::train::TrainError;
use crate::workload::Workload;
use nada_dsl::CompiledState;
use nada_nn::{A2cTrainer, FeatureLayout};
use nada_sim::netenv::NetEnv;
use nada_sim::prelude::*;
use nada_traces::dataset::DatasetKind;
use nada_traces::{PerturbConfig, Trace};

/// Chunks per test video (Pensieve's 48 × 4 s ≈ 3.2 minutes).
pub const VIDEO_CHUNKS: usize = 48;

/// The shared video manifest for a dataset: broadband ladder for
/// FCC/Starlink, the elevated YouTube ladder for 4G/5G (§3.1). The
/// manifest seed is fixed per dataset so every design streams the same
/// video.
pub fn manifest_for(kind: DatasetKind) -> VideoManifest {
    let ladder = match kind {
        DatasetKind::Fcc | DatasetKind::Starlink => Ladder::broadband(),
        DatasetKind::Lte4g | DatasetKind::Nr5g => Ladder::cellular(),
    };
    VideoManifest::pensieve_like(ladder, VIDEO_CHUNKS, 0x0007_1DE0 + kind as u64)
}

/// Mean per-step reward of the greedy policy over up to `max_traces` test
/// traces in the workload's deterministic environment.
pub fn evaluate_policy(
    trainer: &mut A2cTrainer,
    state: &CompiledState,
    workload: &dyn Workload,
    traces: &[Trace],
    max_traces: usize,
) -> Result<f64, TrainError> {
    run_eval(trainer, state, traces, max_traces, |trace, i| {
        Ok(workload.eval_env(trace, i))
    })
}

/// Mean per-step reward of the greedy policy in the workload's
/// emulation-fidelity environment (the paper's dash.js-over-Mahimahi
/// stand-in; Table 4). Errors when the workload has none.
pub fn evaluate_policy_emu(
    trainer: &mut A2cTrainer,
    state: &CompiledState,
    workload: &dyn Workload,
    traces: &[Trace],
    max_traces: usize,
) -> Result<f64, TrainError> {
    run_eval(trainer, state, traces, max_traces, |trace, i| {
        workload
            .emu_env(trace, i)
            .ok_or(TrainError::EmulationUnsupported)
    })
}

/// A policy's score across a perturbation distribution: the mean and the
/// worst per-preset score, plus every `(preset name, score)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct StressScore {
    /// Mean score across all presets.
    pub mean: f64,
    /// Worst (lowest) per-preset score.
    pub worst: f64,
    /// Per-preset scores, in [`PerturbConfig::presets`] order.
    pub per_preset: Vec<(&'static str, f64)>,
}

/// Scores the greedy policy on stressed variants of the test traces, one
/// evaluation per perturbation preset. Each preset wraps up to
/// `max_traces` traces into `variants` seeded stressed copies and runs
/// them through the workload's deterministic eval environment, so the
/// result is reproducible in `(policy, traces, seed)`.
pub fn evaluate_policy_stressed(
    trainer: &mut A2cTrainer,
    state: &CompiledState,
    workload: &dyn Workload,
    traces: &[Trace],
    max_traces: usize,
    variants: usize,
    seed: u64,
) -> Result<StressScore, TrainError> {
    let base: Vec<Trace> = traces.iter().take(max_traces.max(1)).cloned().collect();
    let mut per_preset = Vec::new();
    for (name, cfg) in PerturbConfig::presets() {
        let stressed = cfg.stressed_set(&base, variants.max(1), seed);
        let score = run_eval(trainer, state, &stressed, stressed.len(), |trace, i| {
            Ok(workload.eval_env(trace, i))
        })?;
        per_preset.push((name, score));
    }
    let mean = per_preset.iter().map(|(_, s)| s).sum::<f64>() / per_preset.len().max(1) as f64;
    let worst = per_preset
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::INFINITY, f64::min);
    Ok(StressScore {
        mean,
        worst,
        per_preset,
    })
}

/// Lockstep greedy rollout over up to `max_traces` environments: one
/// batched state evaluation and one batched (inference-only) policy pass
/// per tick. Greedy acting draws no randomness, so lockstep ordering is
/// trivially safe; per-trace rewards are still accumulated separately and
/// summed in trace order, so the mean rounds exactly as a trace-at-a-time
/// loop's running sum would.
fn run_eval<'a, F>(
    trainer: &mut A2cTrainer,
    state: &CompiledState,
    traces: &'a [Trace],
    max_traces: usize,
    mut make_env: F,
) -> Result<f64, TrainError>
where
    F: FnMut(&'a Trace, usize) -> Result<Box<dyn NetEnv + 'a>, TrainError>,
{
    let n = traces.len().min(max_traces).max(1);
    let layout = FeatureLayout::new(&state.feature_shapes());
    let stride = layout.stride();
    let mut scratch = nada_dsl::EvalScratch::default();

    let mut envs = Vec::with_capacity(n);
    let mut bindings = Vec::with_capacity(n);
    let mut rewards: Vec<Vec<f64>> = Vec::with_capacity(n);
    for (i, trace) in traces.iter().take(n).enumerate() {
        let mut env = make_env(trace, i)?;
        let mut binding = BindingScratch::new();
        binding.reset(env.as_mut());
        envs.push(env);
        bindings.push(binding);
        rewards.push(Vec::new());
    }

    let mut live: Vec<usize> = (0..envs.len()).collect();
    let mut rows = Vec::new();
    let mut actions = Vec::new();
    while !live.is_empty() {
        state
            .eval_batch_with(
                live.iter().map(|&i| bindings[i].values()),
                &mut scratch,
                &mut rows,
            )
            .map_err(TrainError::StateEval)?;
        trainer.act_greedy_batch(&rows, &layout, &mut actions);
        debug_assert_eq!(actions.len() * stride, rows.len());
        let mut surviving = 0;
        for k in 0..live.len() {
            let i = live[k];
            let out = bindings[i].step(envs[i].as_mut(), actions[k]);
            rewards[i].push(out.reward);
            if !out.done {
                live[surviving] = i;
                surviving += 1;
            }
        }
        live.truncate(surviving);
    }

    let mut total_reward = 0.0;
    let mut total_steps = 0usize;
    for lane in &rewards {
        for &r in lane {
            total_reward += r;
            total_steps += 1;
        }
    }
    Ok(total_reward / total_steps.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{AbrWorkload, CcWorkload};
    use nada_dsl::seeds;
    use nada_nn::{A2cConfig, ActorCritic, ArchConfig};
    use nada_traces::dataset::{DatasetScale, TraceDataset};

    fn fresh_trainer(state: &CompiledState, workload: &dyn Workload) -> A2cTrainer {
        let arch = ArchConfig::pensieve_original().scaled_down(16);
        let net = ActorCritic::build(&arch, &state.feature_shapes(), workload.n_actions(), 1);
        A2cTrainer::new(net, A2cConfig::default(), 1)
    }

    #[test]
    fn manifests_use_paper_ladders() {
        assert_eq!(manifest_for(DatasetKind::Fcc).ladder().max_kbps(), 4300.0);
        assert_eq!(
            manifest_for(DatasetKind::Starlink).ladder().max_kbps(),
            4300.0
        );
        assert_eq!(
            manifest_for(DatasetKind::Lte4g).ladder().max_kbps(),
            53_000.0
        );
        assert_eq!(
            manifest_for(DatasetKind::Nr5g).ladder().max_kbps(),
            53_000.0
        );
    }

    #[test]
    fn same_dataset_gets_the_same_video() {
        assert_eq!(
            manifest_for(DatasetKind::Fcc),
            manifest_for(DatasetKind::Fcc)
        );
    }

    #[test]
    fn sim_eval_is_deterministic() {
        let ds = TraceDataset::synthesize(DatasetKind::Fcc, DatasetScale::Tiny, 2);
        let w = AbrWorkload::for_dataset(DatasetKind::Fcc);
        let state = seeds::pensieve_state();
        let mut t = fresh_trainer(&state, &w);
        let a = evaluate_policy(&mut t, &state, &w, &ds.test, 2).unwrap();
        let b = evaluate_policy(&mut t, &state, &w, &ds.test, 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn emulation_eval_is_finite_and_deterministic() {
        // Absolute emulation-vs-simulation ordering for *trained* policies
        // is asserted by the Table 4 harness; transport-level slowdown is
        // covered in nada-sim. Here: the emu evaluator must be stable.
        let ds = TraceDataset::synthesize(DatasetKind::Lte4g, DatasetScale::Tiny, 3);
        let w = AbrWorkload::for_dataset(DatasetKind::Lte4g);
        let state = seeds::pensieve_state();
        let mut t = fresh_trainer(&state, &w);
        let a = evaluate_policy_emu(&mut t, &state, &w, &ds.test, 2).unwrap();
        let b = evaluate_policy_emu(&mut t, &state, &w, &ds.test, 2).unwrap();
        assert!(a.is_finite());
        assert_eq!(a, b);
    }

    #[test]
    fn cc_eval_runs_and_is_deterministic() {
        let ds = TraceDataset::synthesize(DatasetKind::Fcc, DatasetScale::Tiny, 4);
        let w = CcWorkload::for_dataset(DatasetKind::Fcc);
        let state = seeds::cc_state();
        let mut t = fresh_trainer(&state, &w);
        let a = evaluate_policy(&mut t, &state, &w, &ds.test, 2).unwrap();
        let b = evaluate_policy(&mut t, &state, &w, &ds.test, 2).unwrap();
        assert!(a.is_finite());
        assert_eq!(a, b);
    }

    #[test]
    fn cc_emulation_eval_is_finite_and_deterministic() {
        // CC gained a packet-level emulation twin; the emu evaluator must
        // accept it and replay bit-identically (seeded jitter).
        let ds = TraceDataset::synthesize(DatasetKind::Fcc, DatasetScale::Tiny, 4);
        let w = CcWorkload::for_dataset(DatasetKind::Fcc);
        let state = seeds::cc_state();
        let mut t = fresh_trainer(&state, &w);
        let a = evaluate_policy_emu(&mut t, &state, &w, &ds.test, 2).unwrap();
        let b = evaluate_policy_emu(&mut t, &state, &w, &ds.test, 2).unwrap();
        assert!(a.is_finite());
        assert_eq!(a, b);
    }

    #[test]
    fn stressed_eval_covers_every_preset_and_is_deterministic() {
        let ds = TraceDataset::synthesize(DatasetKind::Fcc, DatasetScale::Tiny, 5);
        let w = AbrWorkload::for_dataset(DatasetKind::Fcc);
        let state = seeds::pensieve_state();
        let mut t = fresh_trainer(&state, &w);
        let a = evaluate_policy_stressed(&mut t, &state, &w, &ds.test, 2, 2, 17).unwrap();
        let b = evaluate_policy_stressed(&mut t, &state, &w, &ds.test, 2, 2, 17).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.per_preset.len(), PerturbConfig::presets().len());
        assert!(a.mean.is_finite());
        assert!(a.worst <= a.mean);
        for (name, score) in &a.per_preset {
            assert!(score.is_finite(), "{name}");
        }
    }
}
