//! Training one candidate design: A2C over a workload's environment.
//!
//! One "epoch" = one batch of full episodes (the paper's unit in Table 1).
//! Training uses stochastic environments — random trace, random start
//! offset, noise, stochastic policy — while checkpoint evaluations use the
//! workload's deterministic environments with a greedy policy.
//!
//! [`DesignTrainer`] is *resumable*: the early-stopping mechanism trains
//! every design for the first `K` epochs, consults the classifier, and only
//! promising designs continue — without re-running the prefix.

use crate::bind::binding_values;
use crate::config::NadaConfig;
use crate::eval::evaluate_policy;
use crate::workload::Workload;
use nada_dsl::{CompiledState, DslError, EvalScratch};
use nada_nn::{A2cConfig, A2cTrainer, ActorCritic, ArchConfig, EpisodeBuffer};
use nada_traces::dataset::TraceDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Per-run training knobs (a slice of [`NadaConfig`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainRunConfig {
    /// Total training epochs.
    pub train_epochs: usize,
    /// Epochs between checkpoint evaluations.
    pub test_interval: usize,
    /// Episodes per A2C update.
    pub episodes_per_epoch: usize,
    /// Max test traces per checkpoint evaluation.
    pub eval_traces: usize,
    /// Width divisor applied to architectures.
    pub arch_scale_factor: usize,
    /// A2C hyperparameters (`a2c.entropy_coeff` is the anneal start).
    pub a2c: A2cConfig,
    /// Entropy bonus at the end of training (linear anneal, Pensieve-style).
    pub entropy_end: f32,
}

impl From<&NadaConfig> for TrainRunConfig {
    fn from(c: &NadaConfig) -> Self {
        Self {
            train_epochs: c.train_epochs,
            test_interval: c.test_interval,
            episodes_per_epoch: c.episodes_per_epoch,
            eval_traces: c.eval_traces,
            arch_scale_factor: c.arch_scale_factor,
            a2c: c.a2c,
            entropy_end: c.entropy_end,
        }
    }
}

/// Training failure: the design behaved like generated code that throws at
/// runtime (e.g. a feature became non-finite on real inputs).
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The state program failed to evaluate during training.
    StateEval(DslError),
    /// The workload offers no emulation-fidelity environment (Table 4 is
    /// ABR-only).
    EmulationUnsupported,
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::StateEval(e) => write!(f, "state evaluation failed mid-training: {e}"),
            TrainError::EmulationUnsupported => {
                write!(f, "this workload has no emulation environment")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// One checkpoint evaluation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Checkpoint {
    /// Training epoch at which the checkpoint was taken.
    pub epoch: usize,
    /// Mean per-step reward over the evaluated test traces.
    pub test_score: f64,
}

/// Result of one training session (one seed).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOutcome {
    /// Mean per-step training reward for every epoch (the early-stopping
    /// model consumes a prefix of this curve).
    pub reward_curve: Vec<f64>,
    /// Periodic test evaluations.
    pub checkpoints: Vec<Checkpoint>,
}

impl TrainOutcome {
    /// The early-phase reward curve (first `k` epochs).
    pub fn early_curve(&self, k: usize) -> &[f64] {
        &self.reward_curve[..k.min(self.reward_curve.len())]
    }
}

/// A resumable training session for one `(state, arch)` design and seed.
pub struct DesignTrainer<'a> {
    workload: &'a dyn Workload,
    state: &'a CompiledState,
    dataset: &'a TraceDataset,
    cfg: TrainRunConfig,
    trainer: A2cTrainer,
    rng: StdRng,
    epoch: usize,
    outcome: TrainOutcome,
    /// Reused state-program evaluation buffer (one eval per decision step;
    /// a fresh environment per step was the pipeline's hottest allocation).
    scratch: EvalScratch,
    /// Learner-side reward scale (see [`Workload::reward_scale`]). Reported
    /// curves and test scores stay in raw reward units.
    reward_scale: f64,
}

impl<'a> DesignTrainer<'a> {
    /// Builds the network (width-scaled per config) and prepares a session.
    pub fn new(
        workload: &'a dyn Workload,
        state: &'a CompiledState,
        arch: &ArchConfig,
        dataset: &'a TraceDataset,
        cfg: TrainRunConfig,
        seed: u64,
    ) -> Self {
        let arch_scaled = arch.scaled_down(cfg.arch_scale_factor);
        let net = ActorCritic::build(
            &arch_scaled,
            &state.feature_shapes(),
            workload.n_actions(),
            seed,
        );
        let trainer = A2cTrainer::new(net, cfg.a2c, seed);
        Self {
            workload,
            state,
            dataset,
            cfg,
            trainer,
            rng: StdRng::seed_from_u64(seed ^ 0x7124_1000_0000_0011),
            epoch: 0,
            outcome: TrainOutcome {
                reward_curve: Vec::new(),
                checkpoints: Vec::new(),
            },
            scratch: EvalScratch::default(),
            reward_scale: workload.reward_scale(),
        }
    }

    /// Epochs completed so far.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Progress so far.
    pub fn outcome(&self) -> &TrainOutcome {
        &self.outcome
    }

    /// Finishes the session, yielding the accumulated outcome.
    pub fn into_outcome(self) -> TrainOutcome {
        self.outcome
    }

    /// The underlying policy trainer (for emulation evaluation of trained
    /// policies).
    pub fn policy_mut(&mut self) -> &mut A2cTrainer {
        &mut self.trainer
    }

    /// The compiled state this session trains.
    pub fn state(&self) -> &CompiledState {
        self.state
    }

    /// The workload this session trains on.
    pub fn workload(&self) -> &'a dyn Workload {
        self.workload
    }

    /// Trains until `target_epoch` (inclusive of checkpoint evaluations on
    /// the Table 1 cadence).
    pub fn run_until(&mut self, target_epoch: usize) -> Result<(), TrainError> {
        while self.epoch < target_epoch {
            // Linear entropy anneal over the configured horizon.
            let progress = (self.epoch as f32 / self.cfg.train_epochs.max(1) as f32).min(1.0);
            let coeff = self.cfg.a2c.entropy_coeff
                + (self.cfg.entropy_end - self.cfg.a2c.entropy_coeff) * progress;
            self.trainer.set_entropy_coeff(coeff);
            let mut episodes = Vec::with_capacity(self.cfg.episodes_per_epoch);
            let mut epoch_reward = 0.0f64;
            let mut epoch_steps = 0usize;
            for _ in 0..self.cfg.episodes_per_epoch {
                let trace = &self.dataset.train[self.rng.gen_range(0..self.dataset.train.len())];
                let mut env = self.workload.train_env(trace, self.rng.gen::<u64>());
                let mut obs = env.reset();
                let mut buf = EpisodeBuffer::new();
                loop {
                    let feats = self
                        .state
                        .eval_f32_with(&binding_values(&obs), &mut self.scratch)
                        .map_err(TrainError::StateEval)?;
                    let action = self.trainer.act_stochastic(&feats);
                    let step = env.step(action);
                    epoch_reward += step.reward;
                    epoch_steps += 1;
                    buf.push(feats, action, (step.reward * self.reward_scale) as f32);
                    obs = step.obs;
                    if step.done {
                        break;
                    }
                }
                episodes.push(buf);
            }
            self.trainer.update(&episodes);
            self.outcome
                .reward_curve
                .push(epoch_reward / epoch_steps.max(1) as f64);
            self.epoch += 1;

            if self.epoch.is_multiple_of(self.cfg.test_interval) {
                let score = evaluate_policy(
                    &mut self.trainer,
                    self.state,
                    self.workload,
                    &self.dataset.test,
                    self.cfg.eval_traces,
                )?;
                self.outcome.checkpoints.push(Checkpoint {
                    epoch: self.epoch,
                    test_score: score,
                });
            }
        }
        Ok(())
    }
}

/// Trains one `(state, arch)` design on `dataset` for one seed, to
/// completion.
pub fn train_design(
    workload: &dyn Workload,
    state: &CompiledState,
    arch: &ArchConfig,
    dataset: &TraceDataset,
    cfg: &TrainRunConfig,
    seed: u64,
) -> Result<TrainOutcome, TrainError> {
    let mut session = DesignTrainer::new(workload, state, arch, dataset, *cfg, seed);
    session.run_until(cfg.train_epochs)?;
    Ok(session.into_outcome())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{AbrWorkload, CcWorkload};
    use nada_dsl::seeds;
    use nada_traces::dataset::{DatasetKind, DatasetScale};

    fn tiny_cfg() -> TrainRunConfig {
        TrainRunConfig {
            train_epochs: 20,
            test_interval: 10,
            episodes_per_epoch: 1,
            eval_traces: 2,
            arch_scale_factor: 16,
            a2c: A2cConfig::default(),
            entropy_end: 0.01,
        }
    }

    #[test]
    fn training_produces_curves_and_checkpoints() {
        let ds = TraceDataset::synthesize(DatasetKind::Fcc, DatasetScale::Tiny, 3);
        let w = AbrWorkload::for_dataset(DatasetKind::Fcc);
        let state = seeds::pensieve_state();
        let arch = seeds::pensieve_arch();
        let out = train_design(&w, &state, &arch, &ds, &tiny_cfg(), 7).unwrap();
        assert_eq!(out.reward_curve.len(), 20);
        assert_eq!(out.checkpoints.len(), 2);
        assert!(out.reward_curve.iter().all(|r| r.is_finite()));
        assert!(out.checkpoints.iter().all(|c| c.test_score.is_finite()));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let ds = TraceDataset::synthesize(DatasetKind::Starlink, DatasetScale::Tiny, 4);
        let w = AbrWorkload::for_dataset(DatasetKind::Starlink);
        let state = seeds::pensieve_state();
        let arch = seeds::pensieve_arch();
        let a = train_design(&w, &state, &arch, &ds, &tiny_cfg(), 5).unwrap();
        let b = train_design(&w, &state, &arch, &ds, &tiny_cfg(), 5).unwrap();
        assert_eq!(a, b);
        let c = train_design(&w, &state, &arch, &ds, &tiny_cfg(), 6).unwrap();
        assert_ne!(a.reward_curve, c.reward_curve);
    }

    #[test]
    fn resumed_training_matches_uninterrupted_training() {
        // The early-stopping mechanism depends on this: pausing at K and
        // resuming must be invisible.
        let ds = TraceDataset::synthesize(DatasetKind::Fcc, DatasetScale::Tiny, 5);
        let w = AbrWorkload::for_dataset(DatasetKind::Fcc);
        let state = seeds::pensieve_state();
        let arch = seeds::pensieve_arch();
        let straight = train_design(&w, &state, &arch, &ds, &tiny_cfg(), 9).unwrap();
        let mut resumed = DesignTrainer::new(&w, &state, &arch, &ds, tiny_cfg(), 9);
        resumed.run_until(7).unwrap();
        resumed.run_until(20).unwrap();
        assert_eq!(straight, resumed.into_outcome());
    }

    #[test]
    fn early_curve_is_a_prefix() {
        let ds = TraceDataset::synthesize(DatasetKind::Fcc, DatasetScale::Tiny, 3);
        let w = AbrWorkload::for_dataset(DatasetKind::Fcc);
        let state = seeds::pensieve_state();
        let arch = seeds::pensieve_arch();
        let out = train_design(&w, &state, &arch, &ds, &tiny_cfg(), 7).unwrap();
        assert_eq!(out.early_curve(5), &out.reward_curve[..5]);
        assert_eq!(out.early_curve(999).len(), 20);
    }

    #[test]
    fn cc_designs_train_through_the_same_machinery() {
        let ds = TraceDataset::synthesize(DatasetKind::Fcc, DatasetScale::Tiny, 6);
        let w = CcWorkload::for_dataset(DatasetKind::Fcc);
        let state = seeds::cc_state();
        let arch = seeds::cc_arch();
        let out = train_design(&w, &state, &arch, &ds, &tiny_cfg(), 8).unwrap();
        assert_eq!(out.reward_curve.len(), 20);
        assert_eq!(out.checkpoints.len(), 2);
        assert!(out.reward_curve.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn cc_training_is_deterministic_per_seed() {
        let ds = TraceDataset::synthesize(DatasetKind::Starlink, DatasetScale::Tiny, 7);
        let w = CcWorkload::for_dataset(DatasetKind::Starlink);
        let state = seeds::cc_state();
        let arch = seeds::cc_arch();
        let a = train_design(&w, &state, &arch, &ds, &tiny_cfg(), 5).unwrap();
        let b = train_design(&w, &state, &arch, &ds, &tiny_cfg(), 5).unwrap();
        assert_eq!(a, b);
    }
}
